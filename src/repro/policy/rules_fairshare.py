"""Fair-share rules: per-tenant aggregate parallel-stream budgets.

Multi-tenant deployments register a :class:`TenantFact` per tenant and a
:class:`TenantWorkflowFact` binding each workflow to its owner.  The pack
then enforces an *aggregate* stream budget per tenant across every
workflow and host pair that tenant touches, mirroring the shape of the
Table II greedy pair rules:

* each admitted transfer is stamped with its owning tenant
  (``TENANT_STAMP``);
* before the pair-allocation rules run, the transfer's requested streams
  are clamped to what remains of the tenant's budget and charged against
  the tenant's in-flight ledger (``FAIRSHARE_RESERVE``) — like the greedy
  single-stream rule, an exhausted budget still grants one stream, so one
  tenant's greedy allocations can saturate neither another tenant's pair
  ledgers nor lock it out entirely;
* when the pair threshold grants *less* than was reserved, the difference
  is refunded (``FAIRSHARE_ADJUST``);
* on completion or failure the reservation is released and — for
  successful transfers — the bytes are added to the tenant's staged-byte
  ledger (``FAIRSHARE_RELEASE``, which must fire before the Table I
  completion rules retract the fact).

Because the reserve rule both reads and updates the tenant ledger at fire
time, its activations self-serialize within a batch: every firing changes
``inflight_streams``, so the next activation re-evaluates against the
budget that remains.  A whole batch can therefore never collectively
overshoot the budget by more than the deliberate one-stream floor.

The pack is always composed into the service; without tenant facts in
memory no rule activates and advice is unchanged.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.rules import Fact, Pattern, Rule

from repro.policy import salience
from repro.policy.model import TransferFact

__all__ = ["TenantFact", "TenantWorkflowFact", "fairshare_rules"]


class TenantFact(Fact):
    """A registered tenant: identity, share, and budgets.

    ``weight`` drives the ensemble manager's weighted-fair-queuing
    admission; ``priority_class`` its strict-priority policy.
    ``max_streams`` caps the tenant's *aggregate* in-flight parallel
    streams (None = unlimited); ``max_bytes`` / ``max_concurrent`` are
    admission-level quotas journaled here so recovery reproduces
    admission decisions.  ``inflight_streams`` and ``bytes_staged`` are
    the ledgers maintained by the fair-share rules.
    """

    def __init__(
        self,
        tenant: str,
        weight: float = 1.0,
        priority_class: int = 0,
        max_bytes: Optional[float] = None,
        max_streams: Optional[int] = None,
        max_concurrent: Optional[int] = None,
    ):
        if not tenant:
            raise ValueError("tenant id must be non-empty")
        if not math.isfinite(weight) or weight <= 0:
            raise ValueError("weight must be finite and > 0")
        if max_bytes is not None and (not math.isfinite(max_bytes) or max_bytes < 0):
            raise ValueError("max_bytes must be finite and >= 0")
        if max_streams is not None and max_streams < 1:
            raise ValueError("max_streams must be >= 1")
        if max_concurrent is not None and max_concurrent < 1:
            raise ValueError("max_concurrent must be >= 1")
        self.tenant = tenant
        self.weight = float(weight)
        self.priority_class = int(priority_class)
        self.max_bytes = None if max_bytes is None else float(max_bytes)
        self.max_streams = max_streams
        self.max_concurrent = max_concurrent
        self.inflight_streams = 0
        self.bytes_staged = 0.0


class TenantWorkflowFact(Fact):
    """Binds one workflow id to the tenant that submitted it."""

    def __init__(self, workflow: str, tenant: str):
        self.workflow = workflow
        self.tenant = tenant


def _tenant_keys():
    return {"tenant": lambda b: b["t"].tenant}


def _stamp_tenant(ctx):
    ctx.update(ctx.t, tenant=ctx.owner.tenant)


def _reserve(ctx):
    t, ten = ctx.t, ctx.ten
    remaining = ten.max_streams - ten.inflight_streams
    # Like the greedy single-stream rule: an exhausted budget still
    # grants one stream so late tenants are never fully starved.
    grant_cap = max(1, min(t.requested_streams, remaining))
    if grant_cap < t.requested_streams:
        ctx.update(
            t,
            requested_streams=grant_cap,
            tenant_streams_reserved=grant_cap,
            reason=(
                f"request trimmed to tenant {ten.tenant!r}'s "
                f"aggregate stream budget"
            ),
        )
    else:
        ctx.update(t, tenant_streams_reserved=grant_cap)
    ctx.update(ten, inflight_streams=ten.inflight_streams + grant_cap)


def _adjust(ctx):
    t, ten = ctx.t, ctx.ten
    refund = t.tenant_streams_reserved - t.allocated_streams
    ctx.update(t, tenant_streams_reserved=t.allocated_streams)
    ctx.update(ten, inflight_streams=max(0, ten.inflight_streams - refund))


def _release_done(ctx):
    t, ten = ctx.t, ctx.ten
    reserved = t.tenant_streams_reserved
    ctx.update(t, tenant_settled=True, tenant_streams_reserved=0)
    ctx.update(
        ten,
        inflight_streams=max(0, ten.inflight_streams - reserved),
        bytes_staged=ten.bytes_staged + t.nbytes,
    )


def _release_failed(ctx):
    t, ten = ctx.t, ctx.ten
    reserved = t.tenant_streams_reserved
    ctx.update(t, tenant_settled=True, tenant_streams_reserved=0)
    ctx.update(
        ten,
        inflight_streams=max(0, ten.inflight_streams - reserved),
    )


def fairshare_rules() -> list[Rule]:
    """The multi-tenant fair-share rule pack (no-op without tenant facts)."""
    return [
        Rule(
            "Stamp the owning tenant onto a newly admitted transfer",
            salience=salience.TENANT_STAMP,
            when=[
                Pattern(
                    TransferFact,
                    "t",
                    where=lambda t, b: t.status == "new" and t.tenant is None,
                    keys={"status": lambda b: "new"},
                ),
                Pattern(
                    TenantWorkflowFact,
                    "owner",
                    where=lambda m, b: m.workflow == b["t"].workflow,
                    keys={"workflow": lambda b: b["t"].workflow},
                ),
            ],
            then=_stamp_tenant,
        ),
        Rule(
            "Clamp a transfer's streams to its tenant's remaining aggregate "
            "budget and charge the reservation",
            salience=salience.FAIRSHARE_RESERVE,
            when=[
                Pattern(
                    TransferFact,
                    "t",
                    where=lambda t, b: t.status == "new"
                    and t.tenant is not None
                    and t.requested_streams is not None
                    and t.tenant_streams_reserved == 0,
                    keys={"status": lambda b: "new"},
                ),
                Pattern(
                    TenantFact,
                    "ten",
                    where=lambda ten, b: ten.tenant == b["t"].tenant
                    and ten.max_streams is not None,
                    keys=_tenant_keys(),
                ),
            ],
            then=_reserve,
        ),
        Rule(
            "Refund the tenant reservation beyond what the pair threshold "
            "actually granted",
            salience=salience.FAIRSHARE_ADJUST,
            when=[
                Pattern(
                    TransferFact,
                    "t",
                    where=lambda t, b: t.status == "new"
                    and t.allocated_streams is not None
                    and t.tenant_streams_reserved > t.allocated_streams,
                    keys={"status": lambda b: "new"},
                ),
                Pattern(
                    TenantFact,
                    "ten",
                    where=lambda ten, b: ten.tenant == b["t"].tenant,
                    keys=_tenant_keys(),
                ),
            ],
            then=_adjust,
        ),
        Rule(
            "Release a completed transfer's tenant reservation and account "
            "its bytes to the tenant's staged-byte ledger",
            salience=salience.FAIRSHARE_RELEASE,
            when=[
                Pattern(
                    TransferFact,
                    "t",
                    where=lambda t, b: t.status == "done"
                    and t.tenant is not None
                    and not t.tenant_settled,
                    keys={"status": lambda b: "done"},
                ),
                Pattern(
                    TenantFact,
                    "ten",
                    where=lambda ten, b: ten.tenant == b["t"].tenant,
                    keys=_tenant_keys(),
                ),
            ],
            then=_release_done,
        ),
        Rule(
            "Release a failed transfer's tenant reservation",
            salience=salience.FAIRSHARE_RELEASE,
            when=[
                Pattern(
                    TransferFact,
                    "t",
                    where=lambda t, b: t.status == "failed"
                    and t.tenant is not None
                    and not t.tenant_settled,
                    keys={"status": lambda b: "failed"},
                ),
                Pattern(
                    TenantFact,
                    "ten",
                    where=lambda ten, b: ten.tenant == b["t"].tenant,
                    keys=_tenant_keys(),
                ),
            ],
            then=_release_failed,
        ),
    ]
