"""The Policy Service: sessions of policy rules over persistent memory.

One :class:`PolicyService` instance corresponds to the paper's deployed
service: it holds the long-lived **policy memory** (pending transfers,
staged-file resources, host-pair allocations) and evaluates each incoming
request batch in a rule session against that memory.  Multiple workflows
talk to the same service instance — that is how cross-workflow
de-duplication and safe sharing of staged files happen.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Iterable, Optional, Sequence

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import as_tracer
from repro.rules import CompiledSession, Rule, Session, WorkingMemory, compile_rules

from repro.datacatalog.catalog import DataCatalog
from repro.datacatalog.model import EvictionSweepFact
from repro.datacatalog.rules_eviction import EVICTED_GLOBAL, eviction_rules
from repro.policy.adaptive import AdaptiveThresholdController
from repro.policy.journal import JournalError, PolicyJournal
from repro.policy.model import (
    CleanupAdvice,
    CleanupFact,
    ClusterAllocationFact,
    HostPairFact,
    LeaseSweepFact,
    PolicyConfig,
    StagedFileFact,
    TransferAdvice,
    TransferFact,
)
from repro.policy.provenance import (
    DecisionLog,
    FiringCollector,
    attribute_firings,
    attribute_firings_by_ref,
    cleanup_record,
    eviction_record,
    ledger_snapshot,
    transfer_record,
)
from repro.policy.rules_access import HostDenialFact, WorkflowQuotaFact, access_rules
from repro.policy.rules_balanced import balanced_rules
from repro.policy.rules_common import common_rules
from repro.policy.rules_fairshare import TenantFact, TenantWorkflowFact, fairshare_rules
from repro.policy.rules_greedy import greedy_rules
from repro.policy.rules_priority import JobPriorityFact, priority_rules

__all__ = ["PolicyService"]


class _BoundedIdSet:
    """Insertion-ordered id set that forgets its oldest members beyond a
    size cap — retention for completed/failed transfer ids."""

    __slots__ = ("_cap", "_ids")

    def __init__(self, cap: int):
        self._cap = int(cap)
        self._ids: dict[int, None] = {}

    def add(self, value: int) -> None:
        ids = self._ids
        if value in ids:
            return
        ids[value] = None
        while len(ids) > self._cap:
            del ids[next(iter(ids))]

    def ids(self) -> list[int]:
        """Retained ids, oldest first (for snapshots)."""
        return list(self._ids)

    def __contains__(self, value: int) -> bool:
        return value in self._ids

    def __len__(self) -> int:
        return len(self._ids)


class PolicyService:
    """The policy engine of paper Fig. 1.

    Parameters
    ----------
    config:
        Policy settings; selects the allocation rule pack
        (``greedy`` / ``balanced`` / ``fifo``).
    extra_rules:
        Additional rules appended to the pack (deployment customization —
        the paper stresses rules are separated from application logic).
    engine:
        ``"indexed"`` (default) uses the hash-indexed working memory and
        the incremental rule agenda; ``"seed"`` keeps the original
        scan-everything engine — same advice, used as the baseline by
        ``benchmarks/bench_rules.py`` and the equivalence tests;
        ``"compiled"`` compiles the rule pack once into a Rete/TREAT-style
        join network with memoized partial matches (see
        :mod:`repro.rules.compiler` and ``docs/engine.md``) — advice is
        byte-identical across all three engines.
    journal:
        A :class:`~repro.policy.journal.PolicyJournal` making the policy
        memory durable.  The journal directory must be empty/fresh here;
        to resume after a crash use :meth:`PolicyService.recover`.
    metrics:
        A :class:`~repro.obs.metrics.MetricsRegistry` to account into (a
        private one is created otherwise).  All service counters live
        here under the ``repro_policy_*`` namespace; the legacy
        ``stats`` dict is now a read-only alias view over it.
    tracer:
        Optional :class:`~repro.obs.tracer.Tracer`; when enabled the
        service emits one span per call (batch size, rule-fire count,
        advice census in the args) on the ``policy`` track.
    profiler:
        Optional :class:`~repro.obs.profiler.RuleProfiler` attached to
        every rule session the service opens (see
        :meth:`profile_report`).
    """

    def __init__(
        self,
        config: Optional[PolicyConfig] = None,
        extra_rules: Sequence[Rule] = (),
        clock: Optional[Callable[[], float]] = None,
        engine: str = "indexed",
        journal: Optional[PolicyJournal] = None,
        metrics: Optional[MetricsRegistry] = None,
        tracer=None,
        profiler=None,
    ):
        if engine not in ("indexed", "seed", "compiled"):
            raise ValueError(
                f"engine must be 'indexed', 'seed' or 'compiled', got {engine!r}"
            )
        self.engine = engine
        self.config = config or PolicyConfig()
        #: time source for adaptive epochs — the simulated clock inside a
        #: simulation, wall time behind the REST frontend
        self.clock = clock or time.monotonic
        self.adaptive: Optional[AdaptiveThresholdController] = None
        if self.config.adaptive:
            self.adaptive = AdaptiveThresholdController(
                self.config.max_streams, self.config.adaptive_settings
            )
        self.memory = WorkingMemory(indexed=self.engine in ("indexed", "compiled"))
        self.globals: dict = {"config": self.config, "group_counter": 1}
        #: durable staged-data catalog over this memory (None when disabled)
        self.catalog: Optional[DataCatalog] = (
            DataCatalog(self.memory, self.config.catalog)
            if self.config.catalog is not None
            else None
        )
        rules = list(common_rules()) + list(priority_rules()) + list(fairshare_rules())
        if self.config.access_control:
            rules += access_rules()
        if self.config.policy == "greedy":
            rules += greedy_rules()
        elif self.config.policy == "balanced":
            rules += balanced_rules()
        if self.catalog is not None:
            rules += eviction_rules()
        rules += list(extra_rules)
        self._rules = rules
        # One compilation pass per service: every compiled session shares
        # the (immutable) plan set; per-call state lives in its network.
        self._ruleset = compile_rules(rules) if self.engine == "compiled" else None
        # Plain integer counters (not itertools.count) so snapshots can
        # read the high-water marks and recovery can restore them.
        self._tid_last = 0
        self._cid_last = 0
        self._batch_last = 0
        retention = self.config.completed_tid_retention
        self._done_tids = _BoundedIdSet(retention)
        self._failed_tids = _BoundedIdSet(retention)
        self._next_sweep = float("-inf")
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = as_tracer(tracer)
        self.profiler = profiler
        #: decision-provenance log (None when config.decision_log is off)
        self.decisions: Optional[DecisionLog] = (
            DecisionLog(self.config.decision_log_cap)
            if self.config.decision_log
            else None
        )
        #: shard index stamped into decision records (set by the sharding
        #: backend; None on a standalone service)
        self.shard_index: Optional[int] = None
        self._init_metrics()
        self.journal: Optional[PolicyJournal] = None
        self._last_committed_counters: Optional[dict] = None
        if journal is not None:
            if journal.has_state():
                raise JournalError(
                    f"journal at {journal.dir} already holds state; "
                    "use PolicyService.recover() to resume from it"
                )
            self.attach_journal(journal)

    # ------------------------------------------------------------------ metrics
    _TRANSFER_EVENTS = (
        "requests", "submitted", "approved", "skipped", "waited", "denied", "reaped",
    )
    _CLEANUP_EVENTS = ("requests", "submitted", "approved", "skipped", "reaped")
    _CALLS = (
        "submit_transfers", "complete_transfers", "submit_cleanups",
        "complete_cleanups", "reap", "reconcile_staged",
    )

    def _init_metrics(self) -> None:
        """Register the service's metric families and pre-resolve the label
        children touched on hot paths (one attribute lookup per increment)."""
        m = self.metrics
        transfers = m.counter(
            "repro_policy_transfers_total", "Transfer requests by outcome", ("event",)
        )
        cleanups = m.counter(
            "repro_policy_cleanups_total", "Cleanup requests by outcome", ("event",)
        )
        calls = m.counter(
            "repro_policy_calls_total", "Service calls by entry point", ("call",)
        )
        call_seconds = m.histogram(
            "repro_policy_call_seconds",
            "Service call wall-clock latency", ("call",),
        )
        batch_size = m.histogram(
            "repro_policy_batch_size", "Items per submit batch", ("kind",),
            buckets=(1, 2, 5, 10, 20, 50, 100, 200, 500),
        )
        self._m_transfers = {e: transfers.labels(event=e) for e in self._TRANSFER_EVENTS}
        self._m_cleanups = {e: cleanups.labels(event=e) for e in self._CLEANUP_EVENTS}
        self._m_calls = {c: calls.labels(call=c) for c in self._CALLS}
        self._m_call_seconds = {c: call_seconds.labels(call=c) for c in self._CALLS}
        self._m_batch = {k: batch_size.labels(kind=k) for k in ("transfers", "cleanups")}
        self._m_firings = m.counter(
            "repro_policy_rule_firings_total", "Rule firings across all sessions"
        )._only_child()
        self._m_staged_reconciled = m.counter(
            "repro_policy_staged_reconciled_total",
            "Staged files adopted by reconciliation",
        )._only_child()
        self._m_lease_sweeps = m.counter(
            "repro_policy_lease_sweeps_total", "Lease sweeps executed"
        )._only_child()
        catalog_events = m.counter(
            "repro_policy_catalog_events_total",
            "Staged-data catalog events",
            ("event",),
        )
        self._m_catalog = {
            e: catalog_events.labels(event=e)
            for e in ("hits", "evictions", "selected")
        }
        self._m_journal_commits = m.counter(
            "repro_policy_journal_commits_total", "Journal transactions committed"
        )._only_child()
        self._m_journal_commit_seconds = m.histogram(
            "repro_policy_journal_commit_seconds",
            "Journal commit wall-clock latency",
        )._only_child()
        self._m_ids = m.gauge(
            "repro_policy_id_highwater", "Id counter high-water marks", ("kind",)
        )
        self._m_tenant_inflight = m.gauge(
            "repro_policy_tenant_inflight_streams",
            "Streams currently reserved against a tenant's aggregate budget",
            ("tenant",),
        )
        self._m_tenant_bytes = m.gauge(
            "repro_policy_tenant_bytes_staged",
            "Bytes successfully staged on behalf of a tenant",
            ("tenant",),
        )
        self._m_tenant_workflows = m.gauge(
            "repro_policy_tenant_workflows",
            "Workflows currently bound to a tenant",
            ("tenant",),
        )
        # Per-rule profiler families, refreshed at scrape time from the
        # attached RuleProfiler (no samples without one).
        self._m_rule_fires = m.gauge(
            "repro_policy_rule_profile_fires",
            "Rule action executions tallied by the profiler",
            ("rule",),
        )
        self._m_rule_match_seconds = m.gauge(
            "repro_policy_rule_profile_match_seconds",
            "Wall time matching a rule's conditions",
            ("rule",),
        )
        self._m_rule_action_seconds = m.gauge(
            "repro_policy_rule_profile_action_seconds",
            "Wall time executing a rule's action",
            ("rule",),
        )

    def _refresh_profiler_metrics(self) -> None:
        """Mirror the profiler's per-rule tallies into the registry."""
        if self.profiler is None:
            return
        for row in self.profiler.stats.values():
            self._m_rule_fires.set(row.fires, rule=row.name)
            self._m_rule_match_seconds.set(row.match_s, rule=row.name)
            self._m_rule_action_seconds.set(row.action_s, rule=row.name)

    def _refresh_tenant_metrics(self) -> None:
        bound: dict[str, int] = {}
        for binding in self.memory.facts_of(TenantWorkflowFact):
            bound[binding.tenant] = bound.get(binding.tenant, 0) + 1
        for fact in self.memory.facts_of(TenantFact):
            self._m_tenant_inflight.set(fact.inflight_streams, tenant=fact.tenant)
            self._m_tenant_bytes.set(fact.bytes_staged, tenant=fact.tenant)
            self._m_tenant_workflows.set(bound.get(fact.tenant, 0), tenant=fact.tenant)

    @property
    def stats(self) -> dict:
        """Legacy counter dict, now an alias view over the registry."""
        t, c = self._m_transfers, self._m_cleanups
        return {
            "transfer_requests": int(t["requests"].value),
            "transfers_submitted": int(t["submitted"].value),
            "transfers_approved": int(t["approved"].value),
            "transfers_skipped": int(t["skipped"].value),
            "transfers_waited": int(t["waited"].value),
            "transfers_denied": int(t["denied"].value),
            "transfers_reaped": int(t["reaped"].value),
            "cleanup_requests": int(c["requests"].value),
            "cleanups_submitted": int(c["submitted"].value),
            "cleanups_approved": int(c["approved"].value),
            "cleanups_skipped": int(c["skipped"].value),
            "cleanups_reaped": int(c["reaped"].value),
            "staged_reconciled": int(self._m_staged_reconciled.value),
            "rule_firings": int(self._m_firings.value),
        }

    def _begin_span(self, name: str, **args):
        if self.tracer.enabled:
            return self.tracer.begin("policy", name, track="policy", **args)
        return None

    def profile_report(self) -> Optional[str]:
        """The attached profiler's rule table (None when unprofiled)."""
        return self.profiler.report() if self.profiler is not None else None

    # ------------------------------------------------------------------ counters
    def _next_tid(self) -> int:
        self._tid_last += 1
        return self._tid_last

    def _next_cid(self) -> int:
        self._cid_last += 1
        return self._cid_last

    def _next_batch(self) -> int:
        self._batch_last += 1
        return self._batch_last

    def counters(self) -> dict:
        """Durable id high-water marks (journaled with every commit)."""
        return {
            "tid": self._tid_last,
            "cid": self._cid_last,
            "batch": self._batch_last,
            "group": self.globals["group_counter"],
        }

    def config_fingerprint(self) -> dict:
        """Advice-relevant configuration, stored in snapshots so recovery
        with a different policy is rejected instead of silently diverging."""
        c = self.config
        return {
            "policy": c.policy,
            "default_streams": c.default_streams,
            "max_streams": c.max_streams,
            "order_by": c.order_by,
            "access_control": c.access_control,
            "cluster_count": c.cluster_count,
            "cluster_threshold": c.cluster_threshold,
            "lease_seconds": c.lease_seconds,
            "catalog": None if c.catalog is None else c.catalog.fingerprint(),
        }

    # ------------------------------------------------------------------ journal
    def attach_journal(self, journal: PolicyJournal) -> None:
        """Start journaling into ``journal`` (snapshots current state first)."""
        self.journal = journal
        journal.write_snapshot(self)
        self._last_committed_counters = self.counters()
        self.memory.observer = journal.record_mutation

    @contextmanager
    def _transaction(self):
        """Scope one service call's journal records; abort them on error."""
        try:
            yield
        except BaseException:
            if self.journal is not None:
                self.journal.abort()
            raise

    def _commit_journal(self, done: Iterable[int] = (), failed: Iterable[int] = ()) -> None:
        journal = self.journal
        if journal is None:
            return
        done, failed = list(done), list(failed)
        counters = self.counters()
        if not journal._pending and not done and not failed \
                and counters == self._last_committed_counters:
            return  # nothing durable changed — queries stay free
        t0 = time.perf_counter()
        journal.commit(counters, done, failed)
        self._m_journal_commit_seconds.observe(time.perf_counter() - t0)
        self._m_journal_commits.inc()
        self._last_committed_counters = counters
        if journal.wants_snapshot:
            journal.write_snapshot(self)

    @classmethod
    def recover(
        cls,
        path,
        config: Optional[PolicyConfig] = None,
        extra_rules: Sequence[Rule] = (),
        clock: Optional[Callable[[], float]] = None,
        engine: str = "indexed",
        snapshot_interval: int = 1000,
        fsync: bool = False,
        metrics: Optional[MetricsRegistry] = None,
        tracer=None,
        profiler=None,
    ) -> "PolicyService":
        """Rebuild a service from its journal directory after a crash.

        Loads the snapshot, replays every committed journal transaction,
        restores the id counters and done/failed retention sets, writes a
        fresh compaction snapshot, and resumes journaling.  Facts re-enter
        working memory in fid order, so rule activation ordering — and
        therefore advice — is byte-identical to an uncrashed service.

        ``config`` must match what the crashed service ran with (the
        snapshot fingerprint is checked); pass ``path`` as a directory or
        an existing :class:`PolicyJournal`.
        """
        journal = path if isinstance(path, PolicyJournal) else PolicyJournal(
            path, snapshot_interval=snapshot_interval, fsync=fsync
        )
        state = journal.load()
        service = cls(
            config, extra_rules=extra_rules, clock=clock, engine=engine,
            metrics=metrics, tracer=tracer, profiler=profiler,
        )
        fingerprint = service.config_fingerprint()
        if state.fingerprint is not None and state.fingerprint != fingerprint:
            diffs = {
                key: (state.fingerprint.get(key), fingerprint.get(key))
                for key in fingerprint
                if state.fingerprint.get(key) != fingerprint.get(key)
            }
            raise JournalError(
                f"journal at {journal.dir} was written under a different "
                f"configuration: {diffs}"
            )
        for _fid, fact in state.facts_in_fid_order():
            service.memory.insert(fact)
        counters = state.counters
        service._tid_last = int(counters["tid"])
        service._cid_last = int(counters["cid"])
        service._batch_last = int(counters["batch"])
        service.globals["group_counter"] = int(counters["group"])
        for tid in state.done_tids:
            service._done_tids.add(tid)
        for tid in state.failed_tids:
            service._failed_tids.add(tid)
        if service.decisions is not None:
            # Replay in original order: the bounded log evicts exactly as
            # the live one did, so the recovered log is byte-identical.
            # Must run before attach_journal — the fresh compaction
            # snapshot it writes includes these records.
            for record in state.decisions:
                service.decisions.add(record)
        service.attach_journal(journal)
        return service

    # ------------------------------------------------------------------ session
    def _session(self) -> Session:
        if self.engine == "compiled":
            return CompiledSession(
                self._rules,
                memory=self.memory,
                globals=self.globals,
                profiler=self.profiler,
                ruleset=self._ruleset,
            )
        return Session(
            self._rules,
            memory=self.memory,
            globals=self.globals,
            incremental=self.engine == "indexed",
            profiler=self.profiler,
        )

    def _fire(self, session: Session) -> int:
        fired = session.fire_all()
        self._m_firings.inc(fired)
        return fired

    # ------------------------------------------------------------------ transfers
    def submit_transfers(
        self,
        workflow: str,
        job: str,
        transfers: Iterable[dict],
        *,
        tids: Optional[Sequence[int]] = None,
    ) -> list[TransferAdvice]:
        """Evaluate a batch of transfer requests; return per-transfer advice.

        Each request dict needs ``lfn``, ``src_url``, ``dst_url``,
        ``nbytes``; optional ``streams`` (else the configured default),
        ``priority`` and ``cluster`` (defaults to the requesting job id,
        which is the Pegasus cluster identity for clustered staging jobs).

        ``tids`` lets a router (sharded deployments) pre-assign globally
        unique transfer ids, one per request in order; the caller is then
        responsible for any priority pre-sort.  Without it the service
        allocates ids from its own counter.
        """
        transfers = list(transfers)
        self._maybe_reap()
        self._m_transfers["requests"].inc()
        self._m_calls["submit_transfers"].inc()
        self._m_batch["transfers"].observe(len(transfers))
        span = self._begin_span(
            "policy.submit_transfers", workflow=workflow, job=job,
            batch=len(transfers),
        )
        firings_before = self._m_firings.value
        t0 = time.perf_counter()
        try:
            with self._transaction():
                advice = self._submit_transfers(workflow, job, transfers, tids=tids)
        except BaseException as exc:
            if span is not None:
                self.tracer.end(span, error=type(exc).__name__)
            raise
        self._m_call_seconds["submit_transfers"].observe(time.perf_counter() - t0)
        if span is not None:
            actions: dict[str, int] = {}
            for item in advice:
                actions[item.action] = actions.get(item.action, 0) + 1
            self.tracer.end(
                span,
                rule_firings=int(self._m_firings.value - firings_before),
                advice=dict(sorted(actions.items())),
                batch_id=self._batch_last,
            )
        return advice

    def _submit_transfers(
        self,
        workflow: str,
        job: str,
        transfers: Iterable[dict],
        tids: Optional[Sequence[int]] = None,
    ) -> list[TransferAdvice]:
        batch = self._next_batch()
        session = self._session()
        collector: Optional[FiringCollector] = None
        before: Optional[dict] = None
        if self.decisions is not None:
            collector = FiringCollector()
            session.firing_listener = collector
            before = ledger_snapshot(self.memory)
        lease = (
            None
            if self.config.lease_seconds is None
            else self.clock() + self.config.lease_seconds
        )
        specs = list(transfers)
        if tids is None:
            if self.config.order_by == "priority":
                specs.sort(key=lambda s: -int(s.get("priority", 0)))
        else:
            # Externally assigned ids (a shard router allocates globally):
            # the caller pre-sorted the batch; keep the counter monotonic
            # past the highest id so local and external allocation never
            # collide.
            tids = list(tids)
            if len(tids) != len(specs):
                raise ValueError(
                    f"tids length {len(tids)} does not match batch size {len(specs)}"
                )
            if tids:
                self._tid_last = max(self._tid_last, max(tids))
        facts: list[TransferFact] = []
        selected_sources: dict[int, dict] = {}
        for index, spec in enumerate(specs):
            # Allocate the tid before touching the spec: a malformed spec
            # burns its tid (the journal already saw the counter advance).
            tid = self._next_tid() if tids is None else int(tids[index])
            src_url = spec["src_url"]
            if self.catalog is not None:
                # Replica selection happens *before* the fact exists, so
                # grouping, thresholds, and stream allocation all see the
                # true source host pair, not the requested origin's.
                chosen = self.catalog.select_source(
                    spec["lfn"], spec["dst_url"], src_url
                )
                if chosen is not None:
                    src_url = chosen.url
                    self.catalog.touch(chosen.url, self.clock())
                    self._m_catalog["selected"].inc()
            fact = TransferFact(
                tid=tid,
                workflow=workflow,
                job=job,
                lfn=spec["lfn"],
                src_url=src_url,
                dst_url=spec["dst_url"],
                nbytes=float(spec.get("nbytes", 0.0)),
                requested_streams=spec.get("streams"),
                priority=int(spec.get("priority", 0)),
                cluster=spec.get("cluster", job),
                batch=batch,
            )
            facts.append(fact)
            if src_url != spec["src_url"]:
                selected_sources[fact.tid] = {
                    "requested_src": spec["src_url"],
                    "selected_src": src_url,
                    "site": self.catalog.site_of_url(src_url),
                }
            session.insert(fact)
        self._m_transfers["submitted"].inc(len(facts))
        self._fire(session)

        advice: list[TransferAdvice] = []
        for fact in facts:
            if not self.memory.contains(fact):  # pragma: no cover - defensive
                continue
            if fact.status == "new":
                streams = fact.allocated_streams or fact.requested_streams or 1
                advice.append(
                    TransferAdvice(
                        tid=fact.tid,
                        lfn=fact.lfn,
                        src_url=fact.src_url,
                        dst_url=fact.dst_url,
                        nbytes=fact.nbytes,
                        action="transfer",
                        streams=streams,
                        group_id=fact.group_id or 0,
                        priority=fact.priority,
                        reason=fact.reason,
                        lease_deadline=lease,
                    )
                )
                self.memory.update(fact, status="in_progress", lease_deadline=lease)
                self._m_transfers["approved"].inc()
                if self.adaptive is not None:
                    # Open the pair's measurement epoch at first submission
                    # so the first completion has a meaningful elapsed time.
                    self.adaptive.threshold_for(
                        fact.src_host, fact.dst_host, self.clock()
                    )
            elif fact.status == "wait":
                advice.append(
                    TransferAdvice(
                        tid=fact.tid,
                        lfn=fact.lfn,
                        src_url=fact.src_url,
                        dst_url=fact.dst_url,
                        nbytes=fact.nbytes,
                        action="wait",
                        wait_for=fact.wait_for,
                        reason=fact.reason,
                    )
                )
                self.memory.retract(fact)
                self._m_transfers["waited"].inc()
            elif fact.status == "denied":
                advice.append(
                    TransferAdvice(
                        tid=fact.tid,
                        lfn=fact.lfn,
                        src_url=fact.src_url,
                        dst_url=fact.dst_url,
                        nbytes=fact.nbytes,
                        action="deny",
                        reason=fact.reason,
                    )
                )
                self.memory.retract(fact)
                self._m_transfers["denied"].inc()
            else:  # skip_duplicate / skip_staged
                advice.append(
                    TransferAdvice(
                        tid=fact.tid,
                        lfn=fact.lfn,
                        src_url=fact.src_url,
                        dst_url=fact.dst_url,
                        nbytes=fact.nbytes,
                        action="skip",
                        reason=fact.reason,
                    )
                )
                self.memory.retract(fact)
                self._m_transfers["skipped"].inc()
                if self.catalog is not None and fact.status == "skip_staged":
                    # A catalog hit: the dedup rules skipped a re-stage of a
                    # file the catalog still advertises — refresh its LRU
                    # clock so eviction prefers genuinely cold replicas.
                    if self.catalog.touch(fact.dst_url, self.clock()):
                        self._m_catalog["hits"].inc()

        if collector is not None:
            after = ledger_snapshot(self.memory)
            by_tid = {item.tid: item for item in advice}
            for fact in facts:
                item = by_tid.get(fact.tid)
                if item is None:  # pragma: no cover - defensive
                    continue
                record = transfer_record(
                    fact,
                    item,
                    attribute_firings(
                        collector.firings, tids=frozenset((fact.tid,))
                    ),
                    before,
                    after,
                    batch=batch,
                    engine=self.engine,
                    shard=self.shard_index,
                )
                if self.catalog is not None:
                    # Cite catalog hits and replica selection in meta:
                    # meta is excluded from the digest, so records stay
                    # digest-comparable whether or not it is enabled.
                    info: dict = {}
                    if fact.status == "skip_staged":
                        hit = self.catalog.replica_at(fact.dst_url)
                        info["hit"] = hit is not None
                        info["site"] = None if hit is None else hit.site
                    if fact.tid in selected_sources:
                        info["selected"] = selected_sources[fact.tid]
                    if info:
                        record["meta"]["catalog"] = info
                self._record_decision(record)
        self._commit_journal()
        return self._order_advice(advice)

    def _record_decision(self, record: dict) -> None:
        """Retain a decision record and journal it with this transaction."""
        self.decisions.add(record)
        if self.journal is not None:
            self.journal.record_decision(record)

    def _order_advice(self, advice: list[TransferAdvice]) -> list[TransferAdvice]:
        """Order: executable transfers first ("Sort the list of transfers by
        the source and destination URLs", optionally by priority), then
        waits, then skips."""
        rank = {"transfer": 0, "wait": 1, "skip": 2, "deny": 3}

        def key(a: TransferAdvice):
            if self.config.order_by == "priority":
                return (rank[a.action], -a.priority, a.src_url, a.dst_url, a.tid)
            return (rank[a.action], a.src_url, a.dst_url, a.tid)

        return sorted(advice, key=key)

    def complete_transfers(
        self, done: Iterable[int] = (), failed: Iterable[int] = ()
    ) -> dict:
        """Report transfer outcomes; frees streams and updates resources."""
        self._maybe_reap()
        done, failed = list(done), list(failed)
        self._m_calls["complete_transfers"].inc()
        span = self._begin_span(
            "policy.complete_transfers", done=len(done), failed=len(failed)
        )
        t0 = time.perf_counter()
        with self._transaction():
            session = self._session()
            matched = 0
            done_matched: list[int] = []
            failed_matched: list[int] = []

            def in_progress(tid: int) -> Optional[TransferFact]:
                for f in self.memory.lookup(TransferFact, tid=tid):
                    if f.status == "in_progress":
                        return f
                return None

            completed_pairs: list[tuple[str, str, float]] = []
            staged_done: list[tuple[str, str, float]] = []
            for tid in done:
                fact = in_progress(tid)
                if fact is not None:
                    completed_pairs.append(
                        (fact.src_host, fact.dst_host, fact.nbytes)
                    )
                    staged_done.append((fact.lfn, fact.dst_url, fact.nbytes))
                    session.update(fact, status="done")
                    self._done_tids.add(tid)
                    done_matched.append(tid)
                    matched += 1
            for tid in failed:
                fact = in_progress(tid)
                if fact is not None:
                    session.update(fact, status="failed")
                    self._failed_tids.add(tid)
                    failed_matched.append(tid)
                    matched += 1
            fired = self._fire(session)
            if self.adaptive is not None and completed_pairs:
                self._adapt_thresholds(completed_pairs)
            evicted: list[dict] = []
            if self.catalog is not None:
                now = self.clock()
                for lfn, dst_url, nbytes in staged_done:
                    self.catalog.register(lfn, dst_url, nbytes, now)
                evicted = self._run_eviction_sweep(now)
            self._commit_journal(done=done_matched, failed=failed_matched)
            self._m_call_seconds["complete_transfers"].observe(
                time.perf_counter() - t0
            )
            if span is not None:
                self.tracer.end(span, acknowledged=matched, rule_firings=fired)
            result = {"acknowledged": matched}
            if self.catalog is not None:
                # The caller (transfer tool / shard router) owns the disk:
                # it must delete evicted replicas from its simulated storage.
                result["evicted"] = evicted
            return result

    def _run_eviction_sweep(self, now: float) -> list[dict]:
        """Drive the eviction pack once and drain the selected victims.

        Mirrors ``_reap``: time enters as a transient
        :class:`~repro.datacatalog.model.EvictionSweepFact`, the pack
        selects and retracts victims, and the sweep retires itself.
        Runs only when some site is actually over budget, so the common
        under-budget completion pays nothing.  One provenance record is
        minted per victim, attributed by the replica/resource refs the
        sweep's firings touched (victims carry no tid/cid).
        """
        assert self.catalog is not None
        if not self.catalog.over_budget_sites():
            return []
        session = self._session()
        collector: Optional[FiringCollector] = None
        if self.decisions is not None:
            collector = FiringCollector()
            session.firing_listener = collector
        session.insert(EvictionSweepFact(now))
        self._fire(session)
        evicted = [dict(v) for v in self.globals.pop(EVICTED_GLOBAL, [])]
        if evicted:
            self._m_catalog["evictions"].inc(len(evicted))
        if collector is not None:
            for victim in evicted:
                refs = frozenset((
                    f"replica:{victim['lfn']}@{victim['url']}",
                    f"staged:{victim['lfn']}@{victim['url']}",
                ))
                self._record_decision(
                    eviction_record(
                        victim,
                        attribute_firings_by_ref(collector.firings, refs),
                        engine=self.engine,
                        shard=self.shard_index,
                    )
                )
        return evicted

    def _adapt_thresholds(self, completed: list[tuple[str, str, float]]) -> None:
        """Feed completions to the adaptive controller; apply decisions to
        the host-pair facts the greedy rules enforce."""
        now = self.clock()
        for src_host, dst_host, nbytes in completed:
            decided = self.adaptive.observe(src_host, dst_host, nbytes, now)
            if decided is None:
                continue
            for pair in self.memory.lookup(
                HostPairFact, src_host=src_host, dst_host=dst_host
            ):
                self.memory.update(pair, threshold=decided)

    # ------------------------------------------------------------------ cleanups
    def submit_cleanups(
        self,
        workflow: str,
        job: str,
        files: Iterable[tuple[str, str]],
        *,
        cids: Optional[Sequence[int]] = None,
    ) -> list[CleanupAdvice]:
        """Evaluate cleanup (deletion) requests for (lfn, url) pairs.

        ``cids`` mirrors ``submit_transfers(tids=...)``: a shard router
        may pre-assign globally unique cleanup ids, one per file in order.
        """
        files = list(files)
        if cids is not None:
            cids = list(cids)
            if len(cids) != len(files):
                raise ValueError(
                    f"cids length {len(cids)} does not match batch size {len(files)}"
                )
            if cids:
                self._cid_last = max(self._cid_last, max(cids))
        self._maybe_reap()
        self._m_cleanups["requests"].inc()
        self._m_calls["submit_cleanups"].inc()
        self._m_batch["cleanups"].observe(len(files))
        span = self._begin_span(
            "policy.submit_cleanups", workflow=workflow, job=job, batch=len(files)
        )
        t0 = time.perf_counter()
        with self._transaction():
            batch = self._next_batch()
            session = self._session()
            collector: Optional[FiringCollector] = None
            before: Optional[dict] = None
            if self.decisions is not None:
                collector = FiringCollector()
                session.firing_listener = collector
                before = ledger_snapshot(self.memory)
            lease = (
                None
                if self.config.lease_seconds is None
                else self.clock() + self.config.lease_seconds
            )
            facts = []
            for index, (lfn, url) in enumerate(files):
                fact = CleanupFact(
                    cid=self._next_cid() if cids is None else int(cids[index]),
                    workflow=workflow, job=job, lfn=lfn,
                    url=url, batch=batch,
                )
                facts.append(fact)
                session.insert(fact)
            self._m_cleanups["submitted"].inc(len(facts))
            fired = self._fire(session)

            advice = []
            approved = 0
            for fact in facts:
                if fact.status == "approved":
                    advice.append(
                        CleanupAdvice(cid=fact.cid, lfn=fact.lfn, url=fact.url,
                                      action="delete", reason=fact.reason,
                                      lease_deadline=lease)
                    )
                    self.memory.update(
                        fact, status="in_progress", lease_deadline=lease
                    )
                    self._m_cleanups["approved"].inc()
                    approved += 1
                else:
                    advice.append(
                        CleanupAdvice(cid=fact.cid, lfn=fact.lfn, url=fact.url,
                                      action="skip", reason=fact.reason)
                    )
                    self.memory.retract(fact)
                    self._m_cleanups["skipped"].inc()
            if collector is not None:
                after = ledger_snapshot(self.memory)
                by_cid = {item.cid: item for item in advice}
                for fact in facts:
                    self._record_decision(
                        cleanup_record(
                            fact,
                            by_cid[fact.cid],
                            attribute_firings(
                                collector.firings, cids=frozenset((fact.cid,))
                            ),
                            before,
                            after,
                            batch=batch,
                            engine=self.engine,
                            shard=self.shard_index,
                        )
                    )
            self._commit_journal()
            self._m_call_seconds["submit_cleanups"].observe(time.perf_counter() - t0)
            if span is not None:
                self.tracer.end(
                    span, rule_firings=fired, approved=approved,
                    skipped=len(facts) - approved, batch_id=batch,
                )
            return advice

    def complete_cleanups(self, ids: Iterable[int]) -> dict:
        """Report finished deletions; drops resource state for those files."""
        self._maybe_reap()
        ids = set(ids)
        self._m_calls["complete_cleanups"].inc()
        span = self._begin_span("policy.complete_cleanups", ids=len(ids))
        t0 = time.perf_counter()
        with self._transaction():
            matched = 0
            for fact in list(self.memory.facts_of(CleanupFact)):
                if fact.cid in ids and fact.status == "in_progress":
                    for resource in list(
                        self.memory.lookup(StagedFileFact, dst_url=fact.url)
                    ):
                        self.memory.retract(resource)
                    if self.catalog is not None:
                        # The file is gone from disk; the catalog must stop
                        # advertising it (and release its site bytes).
                        self.catalog.unregister(fact.url)
                    self.memory.retract(fact)
                    matched += 1
            self._commit_journal()
            self._m_call_seconds["complete_cleanups"].observe(
                time.perf_counter() - t0
            )
            if span is not None:
                self.tracer.end(span, acknowledged=matched)
            return {"acknowledged": matched}

    # ------------------------------------------------------------------ leases
    def _maybe_reap(self) -> None:
        """Throttled lease sweep piggy-backed on ordinary service calls."""
        if self.config.lease_seconds is None:
            return
        now = self.clock()
        if now < self._next_sweep:
            return
        self._next_sweep = now + self.config.sweep_interval()
        self._reap(now)

    def reap_expired(self, now: Optional[float] = None) -> dict:
        """Reap every in-progress grant whose lease deadline has passed.

        Expired transfers are marked failed — which releases their stream
        allocations on both the host-pair and cluster ledgers via the
        ordinary failure rules — and their ids enter the failed retention
        set so ``transfer_state`` answers ``"failed"``.  Expired cleanups
        are simply dropped.  Ignores the sweep-interval throttle.
        """
        if now is None:
            now = self.clock()
        return self._reap(float(now))

    def _reap(self, now: float) -> dict:
        self._m_calls["reap"].inc()
        self._m_lease_sweeps.inc()
        t0 = time.perf_counter()
        with self._transaction():
            session = self._session()
            session.insert(LeaseSweepFact(now))
            self._fire(session)
            reaped_tids = self.globals.pop("lease_reaped_transfers", [])
            reaped_cids = self.globals.pop("lease_reaped_cleanups", [])
            for tid in reaped_tids:
                self._failed_tids.add(tid)
            self._m_transfers["reaped"].inc(len(reaped_tids))
            self._m_cleanups["reaped"].inc(len(reaped_cids))
            self._commit_journal(failed=reaped_tids)
            self._m_call_seconds["reap"].observe(time.perf_counter() - t0)
            if self.tracer.enabled and (reaped_tids or reaped_cids):
                # Only sweeps that actually reclaim something are traced;
                # the throttled no-op sweeps would drown the timeline.
                self.tracer.instant(
                    "policy", "policy.lease_reap", track="policy",
                    transfers=len(reaped_tids), cleanups=len(reaped_cids),
                )
            return {"transfers": list(reaped_tids), "cleanups": list(reaped_cids)}

    # ------------------------------------------------------------------ reconcile
    def reconcile_staged(
        self, workflow: str, files: Iterable[tuple]
    ) -> dict:
        """Adopt files a client staged while the service was unreachable.

        A transfer tool running in degraded (policy-free) mode stages
        files without the service knowing; once the service is back the
        tool reports them here so the shared policy memory regains its
        resource facts — otherwise later workflows would re-transfer files
        that already exist, and cleanup could never delete them.

        ``files`` holds ``(lfn, url)`` or ``(lfn, url, nbytes)`` tuples;
        with the catalog enabled each adopted file is also registered as
        a replica (size 0 when the caller did not report one, so an
        unsized adoption can never push a site over budget).
        """
        self._m_calls["reconcile_staged"].inc()
        span = self._begin_span("policy.reconcile_staged", workflow=workflow)
        t0 = time.perf_counter()
        with self._transaction():
            registered = joined = 0
            for lfn, url, *rest in files:
                existing = None
                for r in self.memory.lookup(StagedFileFact, lfn=lfn, dst_url=url):
                    existing = r
                    break
                if existing is not None:
                    changes: dict = {}
                    if existing.status != "staged":
                        changes["status"] = "staged"
                    if workflow not in existing.users:
                        changes["users"] = existing.users | {workflow}
                    if changes:
                        self.memory.update(existing, **changes)
                    joined += 1
                else:
                    resource = StagedFileFact(
                        lfn=lfn, dst_url=url, owner_tid=0, workflow=workflow
                    )
                    self.memory.insert(resource)
                    self.memory.update(resource, status="staged")
                    registered += 1
                if self.catalog is not None:
                    self.catalog.register(
                        lfn, url, float(rest[0]) if rest else 0.0, self.clock()
                    )
            self._m_staged_reconciled.inc(registered + joined)
            self._commit_journal()
            self._m_call_seconds["reconcile_staged"].observe(
                time.perf_counter() - t0
            )
            if span is not None:
                self.tracer.end(span, registered=registered, joined=joined)
            return {"registered": registered, "joined": joined}

    # ------------------------------------------------------------------ queries
    def staging_state(self, lfn: str, dst_url: str) -> str:
        """``"staged"`` / ``"staging"`` / ``"unknown"`` for a file at a URL."""
        self._maybe_reap()
        for r in self.memory.lookup(StagedFileFact, lfn=lfn, dst_url=dst_url):
            return r.status
        return "unknown"

    def transfer_state(self, tid: int) -> str:
        """``"in_progress"`` / ``"done"`` / ``"failed"`` / ``"unknown"``."""
        self._maybe_reap()
        for f in self.memory.lookup(TransferFact, tid=tid):
            return f.status
        if tid in self._done_tids:
            return "done"
        if tid in self._failed_tids:
            return "failed"
        return "unknown"

    def explain(self, tid: int) -> Optional[dict]:
        """The decision-provenance record for a transfer id.

        None when the decision log is disabled, the id was never decided
        here, or the record aged out of the bounded log.
        """
        if self.decisions is None:
            return None
        record = self.decisions.transfer(int(tid))
        return dict(record) if record is not None else None

    def explain_cleanup(self, cid: int) -> Optional[dict]:
        """The decision-provenance record for a cleanup id (or None)."""
        if self.decisions is None:
            return None
        record = self.decisions.cleanup(int(cid))
        return dict(record) if record is not None else None

    def decision_records(self) -> list[dict]:
        """All retained decision records, oldest first (empty when off)."""
        if self.decisions is None:
            return []
        return [dict(record) for record in self.decisions.records()]

    # ------------------------------------------------------------------ catalog
    def _require_catalog(self) -> DataCatalog:
        if self.catalog is None:
            raise RuntimeError(
                "the staged-data catalog is not enabled on this service"
            )
        return self.catalog

    def catalog_census(self) -> dict:
        """Canonical staged-data catalog state (replicas + site budgets).

        Sorted and JSON-able — the byte-identity witness for crash
        recovery and engine-equivalence checks.  Raises ``RuntimeError``
        when the catalog is disabled.
        """
        return self._require_catalog().census()

    def catalog_replicas(self, lfn: str) -> list[dict]:
        """Known replicas of ``lfn``, deterministically by (site, url)."""
        return [
            {
                "lfn": r.lfn,
                "site": r.site,
                "url": r.url,
                "nbytes": r.nbytes,
                "checksum": r.checksum,
                "pin_count": r.pin_count,
                "last_used": r.last_used,
            }
            for r in self._require_catalog().lookup(lfn)
        ]

    def set_site_capacity(
        self, site: str, capacity_bytes: Optional[float]
    ) -> dict:
        """Set (or lift, with ``None``) a site byte budget at runtime.

        Journaled like any admin mutation; an over-budget site is acted
        on by the next eviction sweep (the next transfer completion).
        """
        catalog = self._require_catalog()
        with self._transaction():
            catalog.set_site_capacity(site, capacity_bytes)
            self._commit_journal()
        fact = catalog.site_fact(site)
        return {
            "site": site,
            "capacity_bytes": None if fact is None else fact.capacity_bytes,
            "used_bytes": 0.0 if fact is None else fact.used_bytes,
        }

    def catalog_pin(self, url: str, pinned: bool = True) -> dict:
        """Pin (or unpin) the replica at ``url`` against eviction.

        Pins nest: each pin increments the replica's pin count, each
        unpin decrements it (never below zero), and the eviction pack
        only considers replicas at zero.  Journaled; raises ``KeyError``
        for an unknown url so a caller cannot silently "protect" a
        replica the catalog never registered.
        """
        catalog = self._require_catalog()
        with self._transaction():
            changed = catalog.pin(url) if pinned else catalog.unpin(url)
            if not changed:
                raise KeyError(f"no catalog replica at {url!r}")
            self._commit_journal()
        replica = catalog.replica_at(url)
        return {"url": url, "pin_count": replica.pin_count}

    # ------------------------------------------------------------------ admin
    def deny_host(self, host: str, direction: str = "any", reason: str = "") -> None:
        """Administratively ban transfers involving ``host`` (access pack)."""
        if not self.config.access_control:
            raise RuntimeError("access control is not enabled on this service")
        with self._transaction():
            self.memory.insert(HostDenialFact(host, direction, reason))
            self._commit_journal()

    def allow_host(self, host: str) -> int:
        """Lift all denials of ``host``; returns how many were removed."""
        with self._transaction():
            removed = 0
            for fact in list(self.memory.facts_of(HostDenialFact)):
                if fact.host == host:
                    self.memory.retract(fact)
                    removed += 1
            self._commit_journal()
            return removed

    def set_quota(self, workflow: str, max_bytes: float) -> None:
        """Set (or replace) a workflow's staging byte quota (access pack)."""
        if not self.config.access_control:
            raise RuntimeError("access control is not enabled on this service")
        with self._transaction():
            for fact in list(self.memory.facts_of(WorkflowQuotaFact)):
                if fact.workflow == workflow:
                    self.memory.retract(fact)
            self.memory.insert(WorkflowQuotaFact(workflow, max_bytes))
            self._commit_journal()

    # ------------------------------------------------------------------ tenants
    def register_tenant(
        self,
        tenant: str,
        weight: float = 1.0,
        priority_class: int = 0,
        max_bytes: Optional[float] = None,
        max_streams: Optional[int] = None,
        max_concurrent: Optional[int] = None,
    ) -> None:
        """Register (or replace) a tenant; ledgers survive a replacement.

        The tenant fact is journaled like any other policy memory, so a
        recovered service reproduces the same budgets — and therefore the
        same admission decisions — as the crashed one.
        """
        with self._transaction():
            fact = TenantFact(
                tenant,
                weight=weight,
                priority_class=priority_class,
                max_bytes=max_bytes,
                max_streams=max_streams,
                max_concurrent=max_concurrent,
            )
            for existing in self.memory.lookup(TenantFact, tenant=tenant):
                fact.inflight_streams = existing.inflight_streams
                fact.bytes_staged = existing.bytes_staged
                self.memory.retract(existing)
            self.memory.insert(fact)
            self._commit_journal()

    def unregister_tenant(self, tenant: str) -> int:
        """Remove a tenant and its workflow bindings; returns removals."""
        with self._transaction():
            removed = 0
            for fact in self.memory.lookup(TenantFact, tenant=tenant):
                self.memory.retract(fact)
                removed += 1
            for binding in list(self.memory.facts_of(TenantWorkflowFact)):
                if binding.tenant == tenant:
                    self.memory.retract(binding)
                    removed += 1
            self._commit_journal()
            return removed

    def bind_workflow(self, workflow: str, tenant: str) -> None:
        """Bind a workflow to a registered tenant (replaces any binding)."""
        if not self.memory.lookup(TenantFact, tenant=tenant):
            raise RuntimeError(f"tenant {tenant!r} is not registered")
        with self._transaction():
            for binding in self.memory.lookup(TenantWorkflowFact, workflow=workflow):
                self.memory.retract(binding)
            self.memory.insert(TenantWorkflowFact(workflow, tenant))
            self._commit_journal()

    def tenants(self) -> list[dict]:
        """Census of registered tenants (sorted by id), ledgers included."""
        bound: dict[str, list[str]] = {}
        for binding in self.memory.facts_of(TenantWorkflowFact):
            bound.setdefault(binding.tenant, []).append(binding.workflow)
        return [
            {
                "tenant": fact.tenant,
                "weight": fact.weight,
                "priority_class": fact.priority_class,
                "max_bytes": fact.max_bytes,
                "max_streams": fact.max_streams,
                "max_concurrent": fact.max_concurrent,
                "inflight_streams": fact.inflight_streams,
                "bytes_staged": fact.bytes_staged,
                "workflows": sorted(bound.get(fact.tenant, [])),
            }
            for fact in sorted(
                self.memory.facts_of(TenantFact), key=lambda f: f.tenant
            )
        ]

    # ------------------------------------------------------------------ workflows
    def register_priorities(self, workflow: str, priorities: dict) -> int:
        """Register structure-based job priorities for a workflow."""
        with self._transaction():
            count = 0
            for job, priority in priorities.items():
                self.memory.insert(JobPriorityFact(workflow, job, priority))
                count += 1
            self._commit_journal()
            return count

    def unregister_workflow(self, workflow: str, retain_staged: bool = False) -> None:
        """Drop a finished workflow's interest in staged files/priorities.

        A staged file whose last user departs is an orphaned resource: no
        workflow can ever detach or delete it again, so by default it is
        retracted instead of lingering in policy memory forever.  Pass
        ``retain_staged=True`` when the files deliberately stay on disk
        (e.g. an ensemble without cleanup whose later members re-use them);
        retained facts keep their empty ``users`` set until a cleanup or
        a later sharing workflow picks them up.

        Files the staged-data catalog tracks as replicas are always
        retained: the catalog deliberately kept them on disk (retained
        cleanups), so later workflows must still find the resource fact
        and dedup against it.  Their deletion path is eviction, which
        retracts replica and resource facts together.
        """
        with self._transaction():
            for r in list(self.memory.facts_of(StagedFileFact)):
                if workflow in r.users:
                    remaining = r.users - {workflow}
                    retain = retain_staged or (
                        self.catalog is not None
                        and self.catalog.replica_at(r.dst_url) is not None
                    )
                    if remaining or retain:
                        self.memory.update(r, users=remaining)
                    else:
                        self.memory.retract(r)
            for p in list(self.memory.facts_of(JobPriorityFact)):
                if p.workflow == workflow:
                    self.memory.retract(p)
            for binding in list(self.memory.lookup(TenantWorkflowFact, workflow=workflow)):
                self.memory.retract(binding)
            # Host-pair grouping state is demand-created per (src, dst);
            # once nothing references a pair it can never release streams
            # or regain users on its own, so an idle pair left behind is a
            # permanent leak (one fact per distinct pair, forever).  Drop
            # pairs with zero allocation and no transfer still in flight
            # on them; a later transfer simply re-creates the pair (the
            # adaptive controller keeps per-pair threshold state itself).
            live_pairs = {
                (t.src_host, t.dst_host)
                for t in self.memory.facts_of(TransferFact)
            }
            for pair in list(self.memory.facts_of(HostPairFact)):
                if (
                    pair.allocated == 0
                    and (pair.src_host, pair.dst_host) not in live_pairs
                ):
                    self.memory.retract(pair)
            for alloc in list(self.memory.facts_of(ClusterAllocationFact)):
                if (
                    alloc.allocated == 0
                    and (alloc.src_host, alloc.dst_host) not in live_pairs
                ):
                    self.memory.retract(alloc)
            self._commit_journal()

    # ------------------------------------------------------------------ status
    def snapshot(self) -> dict:
        """Service status: config, memory census, counters, allocations.

        ``metrics`` is the authoritative counter namespace
        (``repro_policy_*``, rendered from the registry); ``stats`` keeps
        the legacy flat keys as aliases for one release.
        """
        pairs = {
            f"{p.src_host}->{p.dst_host}": {
                "group_id": p.group_id,
                "allocated": p.allocated,
                "threshold": p.threshold,
            }
            for p in self.memory.facts_of(HostPairFact)
        }
        for kind, value in self.counters().items():
            self._m_ids.set(value, kind=kind)
        self._refresh_tenant_metrics()
        return {
            "policy": self.config.policy,
            "default_streams": self.config.default_streams,
            "max_streams": self.config.max_streams,
            "memory": self.memory.snapshot(),
            "host_pairs": pairs,
            "tenants": self.tenants(),
            "catalog": None if self.catalog is None else self.catalog.census(),
            "stats": dict(self.stats),
            "metrics": self.metrics.to_dict(),
        }

    def metrics_text(self) -> str:
        """The registry rendered in Prometheus text exposition format."""
        for kind, value in self.counters().items():
            self._m_ids.set(value, kind=kind)
        self._refresh_tenant_metrics()
        self._refresh_profiler_metrics()
        return self.metrics.render()
