"""The Policy Service: sessions of policy rules over persistent memory.

One :class:`PolicyService` instance corresponds to the paper's deployed
service: it holds the long-lived **policy memory** (pending transfers,
staged-file resources, host-pair allocations) and evaluates each incoming
request batch in a rule session against that memory.  Multiple workflows
talk to the same service instance — that is how cross-workflow
de-duplication and safe sharing of staged files happen.
"""

from __future__ import annotations

import itertools
import time
from typing import Callable, Iterable, Optional, Sequence

from repro.rules import Rule, Session, WorkingMemory

from repro.policy.adaptive import AdaptiveThresholdController
from repro.policy.model import (
    CleanupAdvice,
    CleanupFact,
    HostPairFact,
    PolicyConfig,
    StagedFileFact,
    TransferAdvice,
    TransferFact,
)
from repro.policy.rules_access import HostDenialFact, WorkflowQuotaFact, access_rules
from repro.policy.rules_balanced import balanced_rules
from repro.policy.rules_common import common_rules
from repro.policy.rules_greedy import greedy_rules
from repro.policy.rules_priority import JobPriorityFact, priority_rules

__all__ = ["PolicyService"]


class _BoundedIdSet:
    """Insertion-ordered id set that forgets its oldest members beyond a
    size cap — retention for completed/failed transfer ids."""

    __slots__ = ("_cap", "_ids")

    def __init__(self, cap: int):
        self._cap = int(cap)
        self._ids: dict[int, None] = {}

    def add(self, value: int) -> None:
        ids = self._ids
        if value in ids:
            return
        ids[value] = None
        while len(ids) > self._cap:
            del ids[next(iter(ids))]

    def __contains__(self, value: int) -> bool:
        return value in self._ids

    def __len__(self) -> int:
        return len(self._ids)


class PolicyService:
    """The policy engine of paper Fig. 1.

    Parameters
    ----------
    config:
        Policy settings; selects the allocation rule pack
        (``greedy`` / ``balanced`` / ``fifo``).
    extra_rules:
        Additional rules appended to the pack (deployment customization —
        the paper stresses rules are separated from application logic).
    engine:
        ``"indexed"`` (default) uses the hash-indexed working memory and
        the incremental rule agenda; ``"seed"`` keeps the original
        scan-everything engine — same advice, used as the baseline by
        ``benchmarks/bench_rules.py`` and the equivalence tests.
    """

    def __init__(
        self,
        config: Optional[PolicyConfig] = None,
        extra_rules: Sequence[Rule] = (),
        clock: Optional[Callable[[], float]] = None,
        engine: str = "indexed",
    ):
        if engine not in ("indexed", "seed"):
            raise ValueError(f"engine must be 'indexed' or 'seed', got {engine!r}")
        self.engine = engine
        self.config = config or PolicyConfig()
        #: time source for adaptive epochs — the simulated clock inside a
        #: simulation, wall time behind the REST frontend
        self.clock = clock or time.monotonic
        self.adaptive: Optional[AdaptiveThresholdController] = None
        if self.config.adaptive:
            self.adaptive = AdaptiveThresholdController(
                self.config.max_streams, self.config.adaptive_settings
            )
        self.memory = WorkingMemory(indexed=self.engine == "indexed")
        self.globals: dict = {"config": self.config, "group_counter": 1}
        rules = list(common_rules()) + list(priority_rules())
        if self.config.access_control:
            rules += access_rules()
        if self.config.policy == "greedy":
            rules += greedy_rules()
        elif self.config.policy == "balanced":
            rules += balanced_rules()
        rules += list(extra_rules)
        self._rules = rules
        self._tid = itertools.count(1)
        self._cid = itertools.count(1)
        self._batch = itertools.count(1)
        retention = self.config.completed_tid_retention
        self._done_tids = _BoundedIdSet(retention)
        self._failed_tids = _BoundedIdSet(retention)
        self.stats = {
            "transfer_requests": 0,
            "transfers_submitted": 0,
            "transfers_approved": 0,
            "transfers_skipped": 0,
            "transfers_waited": 0,
            "transfers_denied": 0,
            "cleanup_requests": 0,
            "cleanups_submitted": 0,
            "cleanups_approved": 0,
            "cleanups_skipped": 0,
            "rule_firings": 0,
        }

    # ------------------------------------------------------------------ session
    def _session(self) -> Session:
        return Session(
            self._rules,
            memory=self.memory,
            globals=self.globals,
            incremental=self.engine == "indexed",
        )

    def _fire(self, session: Session) -> None:
        self.stats["rule_firings"] += session.fire_all()

    # ------------------------------------------------------------------ transfers
    def submit_transfers(
        self, workflow: str, job: str, transfers: Iterable[dict]
    ) -> list[TransferAdvice]:
        """Evaluate a batch of transfer requests; return per-transfer advice.

        Each request dict needs ``lfn``, ``src_url``, ``dst_url``,
        ``nbytes``; optional ``streams`` (else the configured default),
        ``priority`` and ``cluster`` (defaults to the requesting job id,
        which is the Pegasus cluster identity for clustered staging jobs).
        """
        self.stats["transfer_requests"] += 1
        batch = next(self._batch)
        session = self._session()
        specs = list(transfers)
        if self.config.order_by == "priority":
            specs.sort(key=lambda s: -int(s.get("priority", 0)))
        facts: list[TransferFact] = []
        for spec in specs:
            fact = TransferFact(
                tid=next(self._tid),
                workflow=workflow,
                job=job,
                lfn=spec["lfn"],
                src_url=spec["src_url"],
                dst_url=spec["dst_url"],
                nbytes=float(spec.get("nbytes", 0.0)),
                requested_streams=spec.get("streams"),
                priority=int(spec.get("priority", 0)),
                cluster=spec.get("cluster", job),
                batch=batch,
            )
            facts.append(fact)
            session.insert(fact)
        self.stats["transfers_submitted"] += len(facts)
        self._fire(session)

        advice: list[TransferAdvice] = []
        for fact in facts:
            if not self.memory.contains(fact):  # pragma: no cover - defensive
                continue
            if fact.status == "new":
                streams = fact.allocated_streams or fact.requested_streams or 1
                advice.append(
                    TransferAdvice(
                        tid=fact.tid,
                        lfn=fact.lfn,
                        src_url=fact.src_url,
                        dst_url=fact.dst_url,
                        nbytes=fact.nbytes,
                        action="transfer",
                        streams=streams,
                        group_id=fact.group_id or 0,
                        priority=fact.priority,
                        reason=fact.reason,
                    )
                )
                self.memory.update(fact, status="in_progress")
                self.stats["transfers_approved"] += 1
                if self.adaptive is not None:
                    # Open the pair's measurement epoch at first submission
                    # so the first completion has a meaningful elapsed time.
                    self.adaptive.threshold_for(
                        fact.src_host, fact.dst_host, self.clock()
                    )
            elif fact.status == "wait":
                advice.append(
                    TransferAdvice(
                        tid=fact.tid,
                        lfn=fact.lfn,
                        src_url=fact.src_url,
                        dst_url=fact.dst_url,
                        nbytes=fact.nbytes,
                        action="wait",
                        wait_for=fact.wait_for,
                        reason=fact.reason,
                    )
                )
                self.memory.retract(fact)
                self.stats["transfers_waited"] += 1
            elif fact.status == "denied":
                advice.append(
                    TransferAdvice(
                        tid=fact.tid,
                        lfn=fact.lfn,
                        src_url=fact.src_url,
                        dst_url=fact.dst_url,
                        nbytes=fact.nbytes,
                        action="deny",
                        reason=fact.reason,
                    )
                )
                self.memory.retract(fact)
                self.stats["transfers_denied"] += 1
            else:  # skip_duplicate / skip_staged
                advice.append(
                    TransferAdvice(
                        tid=fact.tid,
                        lfn=fact.lfn,
                        src_url=fact.src_url,
                        dst_url=fact.dst_url,
                        nbytes=fact.nbytes,
                        action="skip",
                        reason=fact.reason,
                    )
                )
                self.memory.retract(fact)
                self.stats["transfers_skipped"] += 1

        return self._order_advice(advice)

    def _order_advice(self, advice: list[TransferAdvice]) -> list[TransferAdvice]:
        """Order: executable transfers first ("Sort the list of transfers by
        the source and destination URLs", optionally by priority), then
        waits, then skips."""
        rank = {"transfer": 0, "wait": 1, "skip": 2, "deny": 3}

        def key(a: TransferAdvice):
            if self.config.order_by == "priority":
                return (rank[a.action], -a.priority, a.src_url, a.dst_url, a.tid)
            return (rank[a.action], a.src_url, a.dst_url, a.tid)

        return sorted(advice, key=key)

    def complete_transfers(
        self, done: Iterable[int] = (), failed: Iterable[int] = ()
    ) -> dict:
        """Report transfer outcomes; frees streams and updates resources."""
        done, failed = list(done), list(failed)
        session = self._session()
        matched = 0

        def in_progress(tid: int) -> Optional[TransferFact]:
            for f in self.memory.lookup(TransferFact, tid=tid):
                if f.status == "in_progress":
                    return f
            return None

        completed_pairs: list[tuple[str, str, float]] = []
        for tid in done:
            fact = in_progress(tid)
            if fact is not None:
                completed_pairs.append((fact.src_host, fact.dst_host, fact.nbytes))
                session.update(fact, status="done")
                self._done_tids.add(tid)
                matched += 1
        for tid in failed:
            fact = in_progress(tid)
            if fact is not None:
                session.update(fact, status="failed")
                self._failed_tids.add(tid)
                matched += 1
        self._fire(session)
        if self.adaptive is not None and completed_pairs:
            self._adapt_thresholds(completed_pairs)
        return {"acknowledged": matched}

    def _adapt_thresholds(self, completed: list[tuple[str, str, float]]) -> None:
        """Feed completions to the adaptive controller; apply decisions to
        the host-pair facts the greedy rules enforce."""
        now = self.clock()
        for src_host, dst_host, nbytes in completed:
            decided = self.adaptive.observe(src_host, dst_host, nbytes, now)
            if decided is None:
                continue
            for pair in self.memory.lookup(
                HostPairFact, src_host=src_host, dst_host=dst_host
            ):
                self.memory.update(pair, threshold=decided)

    # ------------------------------------------------------------------ cleanups
    def submit_cleanups(
        self, workflow: str, job: str, files: Iterable[tuple[str, str]]
    ) -> list[CleanupAdvice]:
        """Evaluate cleanup (deletion) requests for (lfn, url) pairs."""
        self.stats["cleanup_requests"] += 1
        batch = next(self._batch)
        session = self._session()
        facts = []
        for lfn, url in files:
            fact = CleanupFact(
                cid=next(self._cid), workflow=workflow, job=job, lfn=lfn, url=url,
                batch=batch,
            )
            facts.append(fact)
            session.insert(fact)
        self.stats["cleanups_submitted"] += len(facts)
        self._fire(session)

        advice = []
        for fact in facts:
            if fact.status == "approved":
                advice.append(
                    CleanupAdvice(cid=fact.cid, lfn=fact.lfn, url=fact.url,
                                  action="delete", reason=fact.reason)
                )
                self.memory.update(fact, status="in_progress")
                self.stats["cleanups_approved"] += 1
            else:
                advice.append(
                    CleanupAdvice(cid=fact.cid, lfn=fact.lfn, url=fact.url,
                                  action="skip", reason=fact.reason)
                )
                self.memory.retract(fact)
                self.stats["cleanups_skipped"] += 1
        return advice

    def complete_cleanups(self, ids: Iterable[int]) -> dict:
        """Report finished deletions; drops resource state for those files."""
        ids = set(ids)
        matched = 0
        for fact in list(self.memory.facts_of(CleanupFact)):
            if fact.cid in ids and fact.status == "in_progress":
                for resource in list(
                    self.memory.lookup(StagedFileFact, dst_url=fact.url)
                ):
                    self.memory.retract(resource)
                self.memory.retract(fact)
                matched += 1
        return {"acknowledged": matched}

    # ------------------------------------------------------------------ queries
    def staging_state(self, lfn: str, dst_url: str) -> str:
        """``"staged"`` / ``"staging"`` / ``"unknown"`` for a file at a URL."""
        for r in self.memory.lookup(StagedFileFact, lfn=lfn, dst_url=dst_url):
            return r.status
        return "unknown"

    def transfer_state(self, tid: int) -> str:
        """``"in_progress"`` / ``"done"`` / ``"failed"`` / ``"unknown"``."""
        for f in self.memory.lookup(TransferFact, tid=tid):
            return f.status
        if tid in self._done_tids:
            return "done"
        if tid in self._failed_tids:
            return "failed"
        return "unknown"

    # ------------------------------------------------------------------ admin
    def deny_host(self, host: str, direction: str = "any", reason: str = "") -> None:
        """Administratively ban transfers involving ``host`` (access pack)."""
        if not self.config.access_control:
            raise RuntimeError("access control is not enabled on this service")
        self.memory.insert(HostDenialFact(host, direction, reason))

    def allow_host(self, host: str) -> int:
        """Lift all denials of ``host``; returns how many were removed."""
        removed = 0
        for fact in list(self.memory.facts_of(HostDenialFact)):
            if fact.host == host:
                self.memory.retract(fact)
                removed += 1
        return removed

    def set_quota(self, workflow: str, max_bytes: float) -> None:
        """Set (or replace) a workflow's staging byte quota (access pack)."""
        if not self.config.access_control:
            raise RuntimeError("access control is not enabled on this service")
        for fact in list(self.memory.facts_of(WorkflowQuotaFact)):
            if fact.workflow == workflow:
                self.memory.retract(fact)
        self.memory.insert(WorkflowQuotaFact(workflow, max_bytes))

    # ------------------------------------------------------------------ workflows
    def register_priorities(self, workflow: str, priorities: dict) -> int:
        """Register structure-based job priorities for a workflow."""
        count = 0
        for job, priority in priorities.items():
            self.memory.insert(JobPriorityFact(workflow, job, priority))
            count += 1
        return count

    def unregister_workflow(self, workflow: str, retain_staged: bool = False) -> None:
        """Drop a finished workflow's interest in staged files/priorities.

        A staged file whose last user departs is an orphaned resource: no
        workflow can ever detach or delete it again, so by default it is
        retracted instead of lingering in policy memory forever.  Pass
        ``retain_staged=True`` when the files deliberately stay on disk
        (e.g. an ensemble without cleanup whose later members re-use them);
        retained facts keep their empty ``users`` set until a cleanup or
        a later sharing workflow picks them up.
        """
        for r in list(self.memory.facts_of(StagedFileFact)):
            if workflow in r.users:
                remaining = r.users - {workflow}
                if remaining or retain_staged:
                    self.memory.update(r, users=remaining)
                else:
                    self.memory.retract(r)
        for p in list(self.memory.facts_of(JobPriorityFact)):
            if p.workflow == workflow:
                self.memory.retract(p)

    # ------------------------------------------------------------------ status
    def snapshot(self) -> dict:
        """Service status: config, memory census, counters, allocations."""
        pairs = {
            f"{p.src_host}->{p.dst_host}": {
                "group_id": p.group_id,
                "allocated": p.allocated,
                "threshold": p.threshold,
            }
            for p in self.memory.facts_of(HostPairFact)
        }
        return {
            "policy": self.config.policy,
            "default_streams": self.config.default_streams,
            "max_streams": self.config.max_streams,
            "memory": self.memory.snapshot(),
            "host_pairs": pairs,
            "stats": dict(self.stats),
        }
