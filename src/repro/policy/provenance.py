"""Decision provenance: per-advice "why" records.

Every piece of advice the Policy Service emits can carry a compact
*decision record*: the rule firings that produced it (rule name, salience
tier, and the working-memory operations each firing performed, via the
attribute-level change log), the ledger values that gated it (host-pair /
cluster / tenant budgets before and after the batch), and the group ids
and lease deadlines it minted.  Records are linked to the request by
tid/cid and batch id, journaled alongside policy memory so recovery
reproduces them byte-identically, and surfaced by
``PolicyService.explain``, ``GET /policy/explain/<tid>``, and the
``repro explain`` CLI.

Determinism
-----------
A record is built entirely from simulation-derived state: fact
attributes, rule names, salience tiers, and change-log operations.  No
wall clocks, object ids, or raw fact ids (fids are engine bookkeeping;
records reference facts by :func:`stable_ref`).  The three rule engines
fire the same rules in the same order on the same memory, so they
produce **byte-identical** records — :func:`decision_digest` is the
equality witness used by the tests and the acceptance criteria.

Shard invariance
----------------
Transfers of one (src_host, dst_host) pair are routed to one shard, so
pair and cluster ledger values match the single-service run.  The only
shard-local value in a record is the advice's group id; the router
rewrites it to the canonical id it stamped on the merged advice and
recomputes the digest, making ``explain`` output independent of the
shard count.  Shard identity and batch numbers live in the record's
``meta`` section, which the digest deliberately excludes.
"""

from __future__ import annotations

import hashlib
import json
from collections import OrderedDict
from typing import Iterable, Optional

from repro.datacatalog.model import (
    EvictionSweepFact,
    ReplicaRecordFact,
    SiteCapacityFact,
)
from repro.policy.model import (
    CleanupFact,
    ClusterAllocationFact,
    HostPairFact,
    LeaseSweepFact,
    StagedFileFact,
    TransferFact,
)
from repro.policy.salience import TIERS
from repro.rules import Fact

__all__ = [
    "DecisionLog",
    "FiringCollector",
    "stable_ref",
    "tier_name",
    "canonical_json",
    "decision_digest",
    "ledger_snapshot",
    "transfer_record",
    "cleanup_record",
    "eviction_record",
    "attribute_firings_by_ref",
    "degraded_record",
    "degraded_cleanup_record",
    "rewrite_group_id",
    "link_decisions_to_trace",
    "render_narrative",
]


#: salience value -> first-declared tier name (RESOURCE_CREATE wins 70,
#: GROUP_CREATE wins 60 — declaration order in ``salience.TIERS``).
_TIER_NAMES: dict[int, str] = {}
for _name, _value in TIERS.items():
    _TIER_NAMES.setdefault(_value, _name)


def tier_name(salience: int) -> str:
    """Name of a salience tier (the bare integer when unnamed)."""
    return _TIER_NAMES.get(salience, str(salience))


def stable_ref(fact: Fact) -> str:
    """A deterministic, engine- and shard-independent reference to a fact.

    Raw fact ids are allocation-order bookkeeping and differ across
    shards; records reference facts by their domain identity instead.
    """
    if isinstance(fact, TransferFact):
        return f"transfer:{fact.tid}"
    if isinstance(fact, CleanupFact):
        return f"cleanup:{fact.cid}"
    if isinstance(fact, StagedFileFact):
        return f"staged:{fact.lfn}@{fact.dst_url}"
    if isinstance(fact, HostPairFact):
        return f"pair:{fact.src_host}->{fact.dst_host}"
    if isinstance(fact, ClusterAllocationFact):
        return f"cluster:{fact.src_host}->{fact.dst_host}/{fact.cluster}"
    if isinstance(fact, LeaseSweepFact):
        return "sweep"
    if isinstance(fact, ReplicaRecordFact):
        return f"replica:{fact.lfn}@{fact.url}"
    if isinstance(fact, SiteCapacityFact):
        return f"site:{fact.site}"
    if isinstance(fact, EvictionSweepFact):
        return "eviction-sweep"
    # Extension facts (access control, fair share, priorities) are
    # identified by class name plus their most distinguishing attributes.
    name = type(fact).__name__.removesuffix("Fact").lower()
    for attrs in (("tenant",), ("workflow", "job"), ("workflow",), ("host",)):
        if all(hasattr(fact, a) for a in attrs):
            return f"{name}:" + "/".join(str(getattr(fact, a)) for a in attrs)
    return name


def canonical_json(doc) -> str:
    """The one JSON encoding used for digests and journaled records."""
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


def decision_digest(record: dict) -> str:
    """sha256 over the record's canonical content.

    ``meta`` (batch number, engine, shard, span linkage) and any existing
    ``digest`` are excluded: they describe *where* the decision was made,
    not *what* was decided — the digest must match across engines, shard
    counts, and crash recovery.
    """
    core = {k: v for k, v in record.items() if k not in ("digest", "meta")}
    return hashlib.sha256(canonical_json(core).encode("utf-8")).hexdigest()


class FiringCollector:
    """Session ``firing_listener``: captures every firing with its ops.

    Each entry is ``(rule, bindings, ops)`` where ``ops`` is the
    oldest-first slice of the working-memory change log the firing
    produced (``(fid, fact, op, changed)`` tuples).
    """

    __slots__ = ("firings",)

    def __init__(self) -> None:
        self.firings: list[tuple] = []

    def __call__(self, rule, bindings, ops) -> None:
        self.firings.append((rule, bindings, ops))


def _bound_ids(bindings: dict) -> tuple[set, set]:
    """Transfer tids / cleanup cids appearing in a firing's bindings."""
    tids: set[int] = set()
    cids: set[int] = set()
    for value in bindings.values():
        items = value if isinstance(value, (list, tuple, set)) else (value,)
        for item in items:
            if isinstance(item, TransferFact):
                tids.add(item.tid)
            elif isinstance(item, CleanupFact):
                cids.add(item.cid)
    return tids, cids


def _encode_ops(ops: Iterable) -> list[dict]:
    encoded = []
    for _fid, fact, op, changed in ops:
        encoded.append({
            "op": op,
            "fact": stable_ref(fact),
            "changed": sorted(changed) if changed else None,
        })
    return encoded


def attribute_firings(
    firings: Iterable[tuple],
    *,
    tids: frozenset = frozenset(),
    cids: frozenset = frozenset(),
) -> list[dict]:
    """Encode the firings attributable to the given transfer/cleanup ids.

    Attribution is by *bindings*: a firing belongs to a record when it
    bound one of the record's facts, whether or not it mutated it (the
    group-creation rule, for instance, binds the transfer but only
    asserts a host-pair fact).  One firing may belong to several records
    (batch de-duplication binds both twins).
    """
    attributed = []
    for rule, bindings, ops in firings:
        bound_tids, bound_cids = _bound_ids(bindings)
        if bound_tids & tids or bound_cids & cids:
            attributed.append({
                "rule": rule.name,
                "salience": rule.salience,
                "tier": tier_name(rule.salience),
                "ops": _encode_ops(ops),
            })
    return attributed


def attribute_firings_by_ref(firings: Iterable[tuple], refs: frozenset) -> list[dict]:
    """Encode the firings whose ops touched any of the given stable refs.

    Eviction victims carry no tid/cid, so binding-based attribution
    cannot find them; instead a firing belongs to a victim's record when
    it mutated or retracted the victim's replica or staged-file fact.
    One eviction-sweep firing may evict several replicas and therefore
    belong to several records.
    """
    attributed = []
    for rule, bindings, ops in firings:
        encoded = _encode_ops(ops)
        if any(op["fact"] in refs for op in encoded):
            attributed.append({
                "rule": rule.name,
                "salience": rule.salience,
                "tier": tier_name(rule.salience),
                "ops": encoded,
            })
    return attributed


# --------------------------------------------------------------------------
# Ledger snapshots
# --------------------------------------------------------------------------
def ledger_snapshot(memory) -> dict:
    """Budget/ledger state relevant to gating decisions, by stable key."""
    pairs = {}
    for f in memory.facts_of(HostPairFact):
        pairs[f"{f.src_host}->{f.dst_host}"] = {
            "allocated": f.allocated,
            "threshold": f.threshold,
        }
    clusters = {}
    for f in memory.facts_of(ClusterAllocationFact):
        clusters[f"{f.src_host}->{f.dst_host}/{f.cluster}"] = {
            "allocated": f.allocated,
        }
    tenants = {}
    staged = {}
    for f in memory:
        cls = type(f).__name__
        if cls == "TenantFact":
            tenants[f.tenant] = {
                "inflight_streams": f.inflight_streams,
                "bytes_staged": f.bytes_staged,
            }
        elif isinstance(f, StagedFileFact):
            staged[f"{f.lfn}@{f.dst_url}"] = {
                "status": f.status,
                "users": sorted(f.users),
            }
    return {"pairs": pairs, "clusters": clusters, "tenants": tenants,
            "staged": staged}


def _pair_entry(key: str, before: dict, after: dict) -> Optional[dict]:
    b, a = before.get(key), after.get(key)
    if b is None and a is None:
        return None
    return {"before": b, "after": a}


def _transfer_ledger(fact: TransferFact, before: dict, after: dict) -> dict:
    """The slice of the before/after snapshots this transfer consulted."""
    ledger: dict = {}
    pair_key = f"{fact.src_host}->{fact.dst_host}"
    entry = _pair_entry(pair_key, before["pairs"], after["pairs"])
    if entry is not None:
        ledger["pair"] = {"key": pair_key, **entry}
    if fact.cluster is not None:
        cluster_key = f"{pair_key}/{fact.cluster}"
        entry = _pair_entry(cluster_key, before["clusters"], after["clusters"])
        if entry is not None:
            ledger["cluster"] = {"key": cluster_key, **entry}
    if fact.tenant:
        entry = _pair_entry(fact.tenant, before["tenants"], after["tenants"])
        if entry is not None:
            ledger["tenant"] = {"key": fact.tenant, **entry}
    return ledger


def _cleanup_ledger(fact: CleanupFact, before: dict, after: dict) -> dict:
    ledger: dict = {}
    staged_key = f"{fact.lfn}@{fact.url}"
    entry = _pair_entry(staged_key, before["staged"], after["staged"])
    if entry is not None:
        ledger["staged"] = {"key": staged_key, **entry}
    return ledger


# --------------------------------------------------------------------------
# Record builders
# --------------------------------------------------------------------------
def transfer_record(
    fact: TransferFact,
    advice,
    firings: list[dict],
    before: dict,
    after: dict,
    *,
    batch: int,
    engine: str,
    shard: Optional[int] = None,
) -> dict:
    record = {
        "kind": "transfer",
        "tid": fact.tid,
        "workflow": fact.workflow,
        "job": fact.job,
        "lfn": fact.lfn,
        "src_url": fact.src_url,
        "dst_url": fact.dst_url,
        "nbytes": fact.nbytes,
        "policy_free": False,
        "advice": {
            "action": advice.action,
            "streams": advice.streams,
            "group_id": advice.group_id,
            "priority": advice.priority,
            "reason": advice.reason,
            "wait_for": advice.wait_for,
            "lease_deadline": advice.lease_deadline,
        },
        "firings": firings,
        "ledger": _transfer_ledger(fact, before, after),
        "meta": {"batch": batch, "engine": engine, "shard": shard},
    }
    record["digest"] = decision_digest(record)
    return record


def cleanup_record(
    fact: CleanupFact,
    advice,
    firings: list[dict],
    before: dict,
    after: dict,
    *,
    batch: int,
    engine: str,
    shard: Optional[int] = None,
) -> dict:
    record = {
        "kind": "cleanup",
        "cid": fact.cid,
        "workflow": fact.workflow,
        "job": fact.job,
        "lfn": fact.lfn,
        "url": fact.url,
        "policy_free": False,
        "advice": {
            "action": advice.action,
            "reason": advice.reason,
            "lease_deadline": advice.lease_deadline,
        },
        "firings": firings,
        "ledger": _cleanup_ledger(fact, before, after),
        "meta": {"batch": batch, "engine": engine, "shard": shard},
    }
    record["digest"] = decision_digest(record)
    return record


def eviction_record(
    victim: dict,
    firings: list[dict],
    *,
    engine: str,
    shard: Optional[int] = None,
) -> dict:
    """Provenance for one catalog eviction.

    ``victim`` is the document the eviction rule appended to
    ``catalog_evicted`` (lfn, site, url, nbytes, policy, reason, now —
    all simulation-derived, so the digest matches across engines and
    crash replay).  The eviction is keyed by (url, sweep time): the
    same URL may be evicted again after a later re-staging.
    """
    record = {
        "kind": "eviction",
        "lfn": victim["lfn"],
        "site": victim["site"],
        "url": victim["url"],
        "nbytes": victim["nbytes"],
        "now": victim["now"],
        "policy_free": False,
        "advice": {
            "action": "evict",
            "policy": victim["policy"],
            "reason": victim["reason"],
        },
        "firings": firings,
        "ledger": {},
        "meta": {"batch": None, "engine": engine, "shard": shard},
    }
    record["digest"] = decision_digest(record)
    return record


def degraded_record(
    tid: int,
    workflow: str,
    lfn: str,
    dst_url: str,
    *,
    shard: Optional[int] = None,
    reason: str = "shard unavailable; policy-free advice",
) -> dict:
    """Synthetic record for advice the router served while a shard was down.

    No rules fired and no ledgers gated the decision — the record says so
    explicitly rather than pretending the advice was policy-derived.
    """
    record = {
        "kind": "transfer",
        "tid": tid,
        "workflow": workflow,
        "lfn": lfn,
        "dst_url": dst_url,
        "policy_free": True,
        "advice": {"action": "transfer", "reason": reason},
        "firings": [],
        "ledger": {},
        "meta": {"batch": None, "engine": None, "shard": shard},
    }
    record["digest"] = decision_digest(record)
    return record


def degraded_cleanup_record(
    cid: int,
    workflow: str,
    lfn: str,
    url: str,
    *,
    shard: Optional[int] = None,
    reason: str = "shard unavailable; cleanup deferred",
) -> dict:
    """Synthetic record for a cleanup the router answered conservatively.

    Minted when the owning shard was unavailable, or when a degraded
    transfer was still in flight to the URL — either way no shard held
    the refcounts, so the only safe answer was "keep the file".
    """
    record = {
        "kind": "cleanup",
        "cid": cid,
        "workflow": workflow,
        "lfn": lfn,
        "url": url,
        "policy_free": True,
        "advice": {"action": "skip", "reason": reason},
        "firings": [],
        "ledger": {},
        "meta": {"batch": None, "engine": None, "shard": shard},
    }
    record["digest"] = decision_digest(record)
    return record


def rewrite_group_id(record: dict, group_id: int) -> dict:
    """Router-side canonicalisation: replace a shard-local group id.

    Returns a new record with the advice's group id replaced and the
    digest recomputed; everything else is preserved.
    """
    rewritten = json.loads(json.dumps(record))
    advice = rewritten.get("advice", {})
    if advice.get("group_id") is not None:
        advice["group_id"] = group_id
    rewritten["digest"] = decision_digest(rewritten)
    return rewritten


# --------------------------------------------------------------------------
# The bounded decision log
# --------------------------------------------------------------------------
class DecisionLog:
    """Bounded, insertion-ordered store of decision records.

    Keys are ``("t", tid)`` / ``("c", cid)``; the oldest records are
    evicted first.  Eviction order is part of the replay contract: the
    journal replays records in their original order, so a recovered log
    holds exactly the records an uninterrupted run would hold.
    """

    def __init__(self, cap: int = 4096):
        if cap < 1:
            raise ValueError("decision log cap must be >= 1")
        self.cap = int(cap)
        self._records: OrderedDict[tuple, dict] = OrderedDict()

    def __len__(self) -> int:
        return len(self._records)

    @staticmethod
    def key_of(record: dict) -> tuple:
        if record.get("kind") == "cleanup":
            return ("c", record["cid"])
        if record.get("kind") == "eviction":
            return ("e", record["url"], record["now"])
        return ("t", record["tid"])

    def add(self, record: dict) -> None:
        key = self.key_of(record)
        if key in self._records:
            self._records.pop(key)
        self._records[key] = record
        while len(self._records) > self.cap:
            self._records.popitem(last=False)

    def transfer(self, tid: int) -> Optional[dict]:
        return self._records.get(("t", tid))

    def cleanup(self, cid: int) -> Optional[dict]:
        return self._records.get(("c", cid))

    def records(self) -> list[dict]:
        """All records, oldest first."""
        return list(self._records.values())


# --------------------------------------------------------------------------
# Narrative rendering (the CLI's --format text)
# --------------------------------------------------------------------------
def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float) and value == int(value):
        return str(int(value))
    return str(value)


def render_narrative(record: dict) -> str:
    """A human-readable causal story for one decision record."""
    lines: list[str] = []
    kind = record.get("kind", "transfer")
    if kind == "transfer":
        rid = record.get("tid")
    elif kind == "eviction":
        rid = record.get("url")
    else:
        rid = record.get("cid")
    advice = record.get("advice", {})
    head = f"{kind} {rid}: {advice.get('action', '?')}"
    if advice.get("reason"):
        head += f" ({advice['reason']})"
    lines.append(head)
    if kind == "transfer":
        lines.append(
            f"  {record.get('lfn')}: {record.get('src_url')} -> "
            f"{record.get('dst_url')} [{_fmt(record.get('nbytes'))} bytes]"
        )
    else:
        lines.append(f"  {record.get('lfn')} at {record.get('url')}")
    if kind == "eviction":
        lines.append(
            f"  evicted from site {record.get('site')} at t={_fmt(record.get('now'))} "
            f"[{_fmt(record.get('nbytes'))} bytes, policy {advice.get('policy')}]"
        )
    else:
        lines.append(
            f"  workflow {record.get('workflow')}"
            + (f", job {record['job']}" if record.get("job") else "")
        )
    if record.get("policy_free"):
        lines.append("  POLICY-FREE: no rules fired (degraded advice)")
    if kind == "transfer" and advice.get("action") == "transfer":
        lines.append(
            f"  granted {_fmt(advice.get('streams'))} stream(s) in group "
            f"{_fmt(advice.get('group_id'))}, priority {_fmt(advice.get('priority'))}"
        )
    if advice.get("wait_for") is not None:
        lines.append(f"  waiting on transfer {advice['wait_for']}")
    if advice.get("lease_deadline") is not None:
        lines.append(f"  lease expires at t={_fmt(advice['lease_deadline'])}")
    ledger = record.get("ledger", {})
    for section in ("pair", "cluster", "tenant", "staged"):
        entry = ledger.get(section)
        if not entry:
            continue
        lines.append(
            f"  {section} ledger {entry.get('key')}: "
            f"{_fmt(entry.get('before'))} -> {_fmt(entry.get('after'))}"
        )
    firings = record.get("firings", [])
    lines.append(f"  causal chain ({len(firings)} firing(s)):")
    for firing in firings:
        lines.append(
            f"    [{firing.get('tier')}/{_fmt(firing.get('salience'))}] "
            f"{firing.get('rule')}"
        )
        for op in firing.get("ops", []):
            verb = {"i": "assert", "u": "update", "r": "retract"}.get(
                op.get("op"), op.get("op")
            )
            changed = op.get("changed")
            suffix = f" ({', '.join(changed)})" if changed else ""
            lines.append(f"      {verb} {op.get('fact')}{suffix}")
    meta = record.get("meta", {})
    meta_bits = [
        f"batch {_fmt(meta.get('batch'))}",
        f"engine {_fmt(meta.get('engine'))}",
    ]
    if meta.get("shard") is not None:
        meta_bits.append(f"shard {meta['shard']}")
    if meta.get("span_seq") is not None:
        meta_bits.append(f"trace span #{meta['span_seq']}")
    lines.append("  " + ", ".join(meta_bits))
    lines.append(f"  digest {record.get('digest', '?')[:16]}…")
    return "\n".join(lines)


def link_decisions_to_trace(records: list[dict], tracer) -> list[dict]:
    """Cross-reference records with a tracer's submit spans by batch id.

    Each ``policy.submit_transfers`` / ``policy.submit_cleanups`` span
    carries the batch counter in its args; a record whose batch matches
    exactly one such span gains that span's sequence number in
    ``meta.span_seq``.  Mutates and returns ``records``.
    """
    if tracer is None:
        return records
    by_batch: dict[int, list[int]] = {}
    for event in getattr(tracer, "events", []):
        if event.get("ph") != "X":
            continue
        args = event.get("args", {})
        batch = args.get("batch_id")
        if batch is None and isinstance(args.get("args"), dict):
            batch = args["args"].get("batch_id")
        if batch is not None:
            by_batch.setdefault(batch, []).append(event["seq"])
    for record in records:
        batch = record.get("meta", {}).get("batch")
        seqs = by_batch.get(batch, [])
        record.setdefault("meta", {})["span_seq"] = (
            seqs[0] if len(seqs) == 1 else None
        )
    return records
