"""Access-control rules: permit/deny decisions and staging quotas.

The paper positions its service as "a general policy service that can be
tailored to specific purposes" and cites permit/denial systems
(MyProxy-style data-movement policies) as related work.  This optional
rule pack adds that class of policy on top of the Table I rules:

* **host denials** — a VO administrator bans transfers that read from or
  write to specific hosts;
* **per-workflow staging quotas** — each workflow may move at most a
  configured number of bytes through the service; transfers beyond the
  quota are denied.

Denied transfers are returned to the transfer tool with action
``"deny"``; unlike a ``skip`` (the file is already there) a denial means
the data will *not* appear, so the tool fails the staging job.
"""

from __future__ import annotations

from repro.rules import Fact, Pattern, Rule

from repro.policy import salience
from repro.policy.model import TransferFact

__all__ = ["HostDenialFact", "WorkflowQuotaFact", "access_rules"]


class HostDenialFact(Fact):
    """An administrator ban on a host.

    ``direction``: ``"src"`` (no reads from the host), ``"dst"`` (no
    writes to it), or ``"any"``.
    """

    def __init__(self, host: str, direction: str = "any", reason: str = ""):
        if direction not in ("src", "dst", "any"):
            raise ValueError(f"direction must be src/dst/any, got {direction!r}")
        self.host = host
        self.direction = direction
        self.reason = reason or f"host {host!r} is denied by policy"


class WorkflowQuotaFact(Fact):
    """A per-workflow byte budget for staging through the service."""

    def __init__(self, workflow: str, max_bytes: float):
        if max_bytes < 0:
            raise ValueError("max_bytes must be >= 0")
        self.workflow = workflow
        self.max_bytes = float(max_bytes)
        self.used_bytes = 0.0


def _denied_transfer(t, bindings) -> bool:
    denial = bindings["deny"]
    if t.status != "new":
        return False
    if denial.direction in ("src", "any") and t.src_host == denial.host:
        return True
    if denial.direction in ("dst", "any") and t.dst_host == denial.host:
        return True
    return False


def _deny_host(ctx):
    ctx.update(ctx.t, status="denied", reason=ctx.deny.reason)


def _deny_quota(ctx):
    ctx.update(
        ctx.t,
        status="denied",
        reason=(
            f"workflow {ctx.t.workflow!r} staging quota exceeded "
            f"({ctx.quota.used_bytes + ctx.t.nbytes:.0f} > {ctx.quota.max_bytes:.0f} bytes)"
        ),
    )


def _charge_quota(ctx):
    ctx.update(ctx.quota, used_bytes=ctx.quota.used_bytes + ctx.t.nbytes)
    ctx.update(ctx.t, quota_charged=True)


def _refund_quota(ctx):
    ctx.update(
        ctx.quota,
        used_bytes=max(0.0, ctx.quota.used_bytes - ctx.t.nbytes),
    )
    ctx.update(ctx.t, quota_charged=False)


def access_rules() -> list[Rule]:
    """The access-control rule pack (enable with
    ``PolicyConfig(access_control=True)``)."""
    return [
        Rule(
            "Refund a failed transfer's quota charge",
            salience=salience.QUOTA_REFUND,
            when=[
                Pattern(
                    TransferFact,
                    "t",
                    where=lambda t, b: t.status == "failed" and t.quota_charged,
                    keys={"status": lambda b: "failed"},
                ),
                Pattern(
                    WorkflowQuotaFact,
                    "quota",
                    where=lambda q, b: q.workflow == b["t"].workflow,
                    keys={"workflow": lambda b: b["t"].workflow},
                ),
            ],
            then=_refund_quota,
        ),
        Rule(
            "Deny transfers that involve an administratively denied host",
            salience=salience.ACCESS_DENY_HOST,
            when=[
                # The handful of admin bans drive the join; the hot, keyed
                # TransferFact pattern sits at the probed last position so
                # the compiled engine walks one status bucket, not the
                # whole frontier (rulelint R009).
                Pattern(HostDenialFact, "deny"),
                Pattern(
                    TransferFact,
                    "t",
                    where=_denied_transfer,
                    keys={"status": lambda b: "new"},
                ),
            ],
            then=_deny_host,
        ),
        Rule(
            "Deny transfers that would exceed their workflow's staging quota",
            salience=salience.ACCESS_DENY_QUOTA,
            when=[
                Pattern(
                    TransferFact,
                    "t",
                    where=lambda t, b: t.status == "new",
                    keys={"status": lambda b: "new"},
                ),
                Pattern(
                    WorkflowQuotaFact,
                    "quota",
                    # A charged transfer's bytes are already inside
                    # used_bytes — never re-judge it against the budget.
                    where=lambda q, b: q.workflow == b["t"].workflow
                    and not b["t"].quota_charged
                    and q.used_bytes + b["t"].nbytes > q.max_bytes,
                    keys={"workflow": lambda b: b["t"].workflow},
                ),
            ],
            then=_deny_quota,
        ),
        Rule(
            "Charge an admitted transfer against its workflow's quota",
            salience=salience.ACCESS_CHARGE_QUOTA,
            when=[
                Pattern(
                    TransferFact,
                    "t",
                    where=lambda t, b: t.status == "new"
                    and not getattr(t, "quota_charged", False),
                    keys={"status": lambda b: "new"},
                ),
                Pattern(
                    WorkflowQuotaFact,
                    "quota",
                    where=lambda q, b: q.workflow == b["t"].workflow
                    and q.used_bytes + b["t"].nbytes <= q.max_bytes,
                    keys={"workflow": lambda b: b["t"].workflow},
                ),
            ],
            then=_charge_quota,
        ),
    ]
