"""Named salience tiers for the policy rule packs.

Firing order across the rule files used to be encoded as bare integers
("96 fires before the Table I failure-removal rule at 95") whose meaning
lived in comments.  This module gives every tier a name and asserts the
ordering invariants those comments promised, so a refactor that renumbers
one file cannot silently invert the cascade.  The rule-set linter
(:mod:`repro.analysis.rulelint`) re-checks the same invariants and flags
any rule whose salience is not one of these named tiers.

Tier map (higher fires first)::

    97  LEASE_EXPIRY        reaper sweeps mark stale in_progress work failed
    96  QUOTA_REFUND        refund quota before the failure-removal rule
    95  FAIRSHARE_RELEASE   settle tenant ledgers before Table I retracts facts
    94  COMPLETION          completion/failure processing frees streams
    90  ACK                 acknowledge newly inserted transfers/cleanups
    88  ACCESS_DENY_HOST    host denials, after ack, before dedup
    87  ACCESS_DENY_QUOTA   quota denials
    86  ACCESS_CHARGE_QUOTA quota charging for admitted transfers
    85  DEDUP_BATCH         de-dup within the request batch (also cleanups)
    84  DEDUP_STAGED        de-dup against already-staged files
    83  DEDUP_IN_FLIGHT     de-dup against in-flight transfers
    80  CLEANUP_DETACH      detach a cleanup's workflow from its resource
    70  RESOURCE_CREATE     create staged-file resources
    70  CLEANUP_SKIP_IN_USE skip cleanups for files still in use
    65  RESOURCE_ASSOCIATE  associate transfers with existing resources
    61  CLEANUP_RETAIN      retain evictable replicas while the site has room
    60  GROUP_CREATE        mint host-pair group ids
    60  CLEANUP_APPROVE     approve cleanups with no remaining users
    55  GROUP_ASSIGN        stamp group ids onto transfers
    52  PRIORITY_STAMP      stamp structure-based priorities
    50  STREAMS_DEFAULT     default parallel-stream level
    49  STREAMS_MINIMUM     clamp requests below one stream
    46  TENANT_STAMP        stamp the owning tenant onto new transfers
    44  FAIRSHARE_RESERVE   clamp + charge the tenant's aggregate stream budget
    41  THRESHOLD_RETRIEVE  lazily stamp host-pair thresholds
    40  ALLOCATION          greedy / balanced stream grants
    39  FAIRSHARE_ADJUST    refund tenant over-reservation after allocation
    20  EVICTION_SELECT     pick eviction victims on over-budget sites
     2  EVICTION_RETIRE     retire the transient eviction-sweep fact
     1  SWEEP_RETIRE        retire the transient lease-sweep fact last
"""

from __future__ import annotations

__all__ = [
    "LEASE_EXPIRY",
    "QUOTA_REFUND",
    "FAIRSHARE_RELEASE",
    "COMPLETION",
    "ACK",
    "ACCESS_DENY_HOST",
    "ACCESS_DENY_QUOTA",
    "ACCESS_CHARGE_QUOTA",
    "DEDUP_BATCH",
    "DEDUP_STAGED",
    "DEDUP_IN_FLIGHT",
    "CLEANUP_DETACH",
    "RESOURCE_CREATE",
    "CLEANUP_SKIP_IN_USE",
    "RESOURCE_ASSOCIATE",
    "CLEANUP_RETAIN",
    "GROUP_CREATE",
    "CLEANUP_APPROVE",
    "GROUP_ASSIGN",
    "PRIORITY_STAMP",
    "STREAMS_DEFAULT",
    "STREAMS_MINIMUM",
    "TENANT_STAMP",
    "FAIRSHARE_RESERVE",
    "THRESHOLD_RETRIEVE",
    "ALLOCATION",
    "FAIRSHARE_ADJUST",
    "EVICTION_SELECT",
    "EVICTION_RETIRE",
    "SWEEP_RETIRE",
    "TIERS",
    "ORDERING_INVARIANTS",
    "validate_ordering",
]

LEASE_EXPIRY = 97
QUOTA_REFUND = 96
FAIRSHARE_RELEASE = 95
COMPLETION = 94
ACK = 90
ACCESS_DENY_HOST = 88
ACCESS_DENY_QUOTA = 87
ACCESS_CHARGE_QUOTA = 86
DEDUP_BATCH = 85
DEDUP_STAGED = 84
DEDUP_IN_FLIGHT = 83
CLEANUP_DETACH = 80
RESOURCE_CREATE = 70
CLEANUP_SKIP_IN_USE = 70
RESOURCE_ASSOCIATE = 65
CLEANUP_RETAIN = 61
GROUP_CREATE = 60
CLEANUP_APPROVE = 60
GROUP_ASSIGN = 55
PRIORITY_STAMP = 52
STREAMS_DEFAULT = 50
STREAMS_MINIMUM = 49
TENANT_STAMP = 46
FAIRSHARE_RESERVE = 44
THRESHOLD_RETRIEVE = 41
ALLOCATION = 40
FAIRSHARE_ADJUST = 39
EVICTION_SELECT = 20
EVICTION_RETIRE = 2
SWEEP_RETIRE = 1

#: name -> value for every named tier (what the linter accepts as
#: non-magic salience values).
TIERS: dict[str, int] = {
    "LEASE_EXPIRY": LEASE_EXPIRY,
    "QUOTA_REFUND": QUOTA_REFUND,
    "FAIRSHARE_RELEASE": FAIRSHARE_RELEASE,
    "COMPLETION": COMPLETION,
    "ACK": ACK,
    "ACCESS_DENY_HOST": ACCESS_DENY_HOST,
    "ACCESS_DENY_QUOTA": ACCESS_DENY_QUOTA,
    "ACCESS_CHARGE_QUOTA": ACCESS_CHARGE_QUOTA,
    "DEDUP_BATCH": DEDUP_BATCH,
    "DEDUP_STAGED": DEDUP_STAGED,
    "DEDUP_IN_FLIGHT": DEDUP_IN_FLIGHT,
    "CLEANUP_DETACH": CLEANUP_DETACH,
    "RESOURCE_CREATE": RESOURCE_CREATE,
    "CLEANUP_SKIP_IN_USE": CLEANUP_SKIP_IN_USE,
    "RESOURCE_ASSOCIATE": RESOURCE_ASSOCIATE,
    "CLEANUP_RETAIN": CLEANUP_RETAIN,
    "GROUP_CREATE": GROUP_CREATE,
    "CLEANUP_APPROVE": CLEANUP_APPROVE,
    "GROUP_ASSIGN": GROUP_ASSIGN,
    "PRIORITY_STAMP": PRIORITY_STAMP,
    "STREAMS_DEFAULT": STREAMS_DEFAULT,
    "STREAMS_MINIMUM": STREAMS_MINIMUM,
    "TENANT_STAMP": TENANT_STAMP,
    "FAIRSHARE_RESERVE": FAIRSHARE_RESERVE,
    "THRESHOLD_RETRIEVE": THRESHOLD_RETRIEVE,
    "ALLOCATION": ALLOCATION,
    "FAIRSHARE_ADJUST": FAIRSHARE_ADJUST,
    "EVICTION_SELECT": EVICTION_SELECT,
    "EVICTION_RETIRE": EVICTION_RETIRE,
    "SWEEP_RETIRE": SWEEP_RETIRE,
}

#: ``(higher, lower, why)`` — every cross-file firing-order promise the
#: comments used to carry.  ``validate_ordering`` enforces strict order.
ORDERING_INVARIANTS: list[tuple[str, str, str]] = [
    ("LEASE_EXPIRY", "COMPLETION",
     "a reaped transfer must be marked failed before completion processing"),
    ("QUOTA_REFUND", "COMPLETION",
     "the quota refund must see the failed fact before Table I retracts it"),
    ("LEASE_EXPIRY", "FAIRSHARE_RELEASE",
     "reaped transfers must be failed before tenant ledgers are settled"),
    ("FAIRSHARE_RELEASE", "COMPLETION",
     "tenant stream/byte ledgers must be settled before Table I retracts "
     "the done/failed fact"),
    ("COMPLETION", "ACK",
     "completions free streams before new transfers are acknowledged"),
    ("ACK", "ACCESS_DENY_HOST",
     "access control judges acknowledged (status=new) transfers"),
    ("ACCESS_DENY_HOST", "ACCESS_DENY_QUOTA",
     "host bans take precedence over quota denials"),
    ("ACCESS_DENY_QUOTA", "ACCESS_CHARGE_QUOTA",
     "a transfer over budget must be denied before it can be charged"),
    ("ACCESS_CHARGE_QUOTA", "DEDUP_BATCH",
     "denied transfers never reach de-duplication or claim resources"),
    ("DEDUP_BATCH", "DEDUP_STAGED",
     "in-batch duplicates resolve before the staged-file check"),
    ("DEDUP_STAGED", "DEDUP_IN_FLIGHT",
     "already-staged beats waiting on an in-flight twin"),
    ("DEDUP_IN_FLIGHT", "RESOURCE_CREATE",
     "surviving transfers create resources only after de-duplication"),
    ("RESOURCE_CREATE", "RESOURCE_ASSOCIATE",
     "a resource must exist before other transfers associate with it"),
    ("RESOURCE_ASSOCIATE", "GROUP_CREATE",
     "resource bookkeeping precedes host-pair grouping"),
    ("GROUP_CREATE", "GROUP_ASSIGN",
     "the host-pair fact must exist before its group id is stamped"),
    ("GROUP_ASSIGN", "PRIORITY_STAMP",
     "grouping completes before priority stamping"),
    ("PRIORITY_STAMP", "STREAMS_DEFAULT",
     "priorities are stamped before stream defaults"),
    ("STREAMS_DEFAULT", "STREAMS_MINIMUM",
     "the default level is assigned before the >=1 clamp runs"),
    ("STREAMS_MINIMUM", "TENANT_STAMP",
     "stream requests are final before tenant budgets are applied"),
    ("TENANT_STAMP", "FAIRSHARE_RESERVE",
     "the owning tenant must be stamped before its budget is charged"),
    ("FAIRSHARE_RESERVE", "THRESHOLD_RETRIEVE",
     "tenant-budget clamping precedes host-pair threshold handling"),
    ("STREAMS_MINIMUM", "THRESHOLD_RETRIEVE",
     "stream requests are final before thresholds are retrieved"),
    ("THRESHOLD_RETRIEVE", "ALLOCATION",
     "the threshold must be stamped before any grant rule fires"),
    ("FAIRSHARE_RESERVE", "ALLOCATION",
     "the tenant budget clamps requested streams before any grant rule "
     "reads them"),
    ("ALLOCATION", "FAIRSHARE_ADJUST",
     "over-reservation can only be refunded once the grant is known"),
    ("FAIRSHARE_ADJUST", "SWEEP_RETIRE",
     "tenant ledgers are settled before the lease sweep retires"),
    ("ACK", "DEDUP_BATCH",
     "cleanups are acknowledged before duplicate-cleanup removal"),
    ("DEDUP_BATCH", "CLEANUP_DETACH",
     "duplicate cleanups are removed before detaching workflows"),
    ("CLEANUP_DETACH", "CLEANUP_SKIP_IN_USE",
     "the requester detaches before the in-use check counts users"),
    ("CLEANUP_SKIP_IN_USE", "CLEANUP_RETAIN",
     "a file still in use is never judged by the capacity-retention rule"),
    ("CLEANUP_RETAIN", "CLEANUP_APPROVE",
     "retention on under-budget sites must veto cleanup approval"),
    ("ALLOCATION", "EVICTION_SELECT",
     "stream grants settle before eviction victims are chosen"),
    ("EVICTION_SELECT", "EVICTION_RETIRE",
     "victims are selected before the eviction sweep retires"),
    ("EVICTION_RETIRE", "SWEEP_RETIRE",
     "the eviction sweep retires before the lease sweep"),
    ("ALLOCATION", "SWEEP_RETIRE",
     "the lease sweep retires only after every other tier is quiescent"),
]


def validate_ordering(tiers: dict[str, int] | None = None) -> None:
    """Raise ``ValueError`` if any documented ordering invariant is broken."""
    values = TIERS if tiers is None else tiers
    broken = []
    for higher, lower, why in ORDERING_INVARIANTS:
        if values[higher] <= values[lower]:
            broken.append(
                f"{higher} ({values[higher]}) must fire before "
                f"{lower} ({values[lower]}): {why}"
            )
    if broken:
        raise ValueError("salience ordering invariants violated:\n  " + "\n  ".join(broken))


validate_ordering()
