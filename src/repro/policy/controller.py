"""The Policy Controller: request validation and translation.

In the paper's architecture the Policy Controller "manages communication
between the web interface and the policy engine".  Here it is the layer
that accepts JSON-able dict payloads (from the REST frontend or any other
transport), validates them, delegates to :class:`PolicyService`, and
returns JSON-able dict responses.
"""

from __future__ import annotations

import math
from typing import Any, Optional

from repro.policy.service import PolicyService

__all__ = ["PolicyController", "PolicyRequestError"]


class PolicyRequestError(ValueError):
    """A malformed request payload (maps to HTTP 400)."""


def _require(payload: dict, key: str, types: tuple = (str,)) -> Any:
    if not isinstance(payload, dict):
        raise PolicyRequestError(f"payload must be an object, got {type(payload).__name__}")
    if key not in payload:
        raise PolicyRequestError(f"missing required field {key!r}")
    value = payload[key]
    if not isinstance(value, types):
        raise PolicyRequestError(
            f"field {key!r} must be {'/'.join(t.__name__ for t in types)}, "
            f"got {type(value).__name__}"
        )
    return value


def _finite_nonneg(value: float, name: str) -> float:
    """Reject NaN/inf byte counts: ``json.loads`` happily parses ``NaN`` and
    ``Infinity``, and ``NaN < 0`` is False — so a plain ``< 0`` guard lets
    a poisoned quota into policy memory."""
    if isinstance(value, bool) or not math.isfinite(value) or value < 0:
        raise PolicyRequestError(f"{name} must be a finite number >= 0")
    return float(value)


class PolicyController:
    """Dict-in / dict-out facade over a :class:`PolicyService`."""

    def __init__(self, service: PolicyService):
        self.service = service

    # -- transfers ---------------------------------------------------------
    def submit_transfers(self, payload: dict) -> dict:
        workflow = _require(payload, "workflow")
        job = _require(payload, "job")
        transfers = _require(payload, "transfers", (list,))
        specs = []
        for idx, item in enumerate(transfers):
            if not isinstance(item, dict):
                raise PolicyRequestError(f"transfers[{idx}] must be an object")
            for field in ("lfn", "src_url", "dst_url"):
                _require(item, field)
            nbytes = item.get("nbytes", 0)
            if not isinstance(nbytes, (int, float)) or nbytes < 0:
                raise PolicyRequestError(f"transfers[{idx}].nbytes must be >= 0")
            streams = item.get("streams")
            if streams is not None and (not isinstance(streams, int) or streams < 1):
                raise PolicyRequestError(f"transfers[{idx}].streams must be int >= 1")
            specs.append(item)
        advice = self.service.submit_transfers(workflow, job, specs)
        return {"workflow": workflow, "job": job, "advice": [a.to_dict() for a in advice]}

    def complete_transfers(self, payload: dict) -> dict:
        done = payload.get("done", [])
        failed = payload.get("failed", [])
        for name, ids in (("done", done), ("failed", failed)):
            if not isinstance(ids, list) or not all(isinstance(i, int) for i in ids):
                raise PolicyRequestError(f"field {name!r} must be a list of transfer ids")
        return self.service.complete_transfers(done=done, failed=failed)

    def transfer_state(self, tid: int) -> dict:
        if not isinstance(tid, int):
            raise PolicyRequestError("transfer id must be an integer")
        return {"tid": tid, "state": self.service.transfer_state(tid)}

    def explain(self, tid: int) -> Optional[dict]:
        """The decision-provenance record for a transfer (None = unknown)."""
        if not isinstance(tid, int):
            raise PolicyRequestError("transfer id must be an integer")
        return self.service.explain(tid)

    def staging_state(self, payload: dict) -> dict:
        lfn = _require(payload, "lfn")
        url = _require(payload, "url")
        return {"lfn": lfn, "url": url, "state": self.service.staging_state(lfn, url)}

    # -- cleanups ------------------------------------------------------------
    def submit_cleanups(self, payload: dict) -> dict:
        workflow = _require(payload, "workflow")
        job = _require(payload, "job")
        files = _require(payload, "files", (list,))
        pairs = []
        for idx, item in enumerate(files):
            if not isinstance(item, dict):
                raise PolicyRequestError(f"files[{idx}] must be an object")
            pairs.append((_require(item, "lfn"), _require(item, "url")))
        advice = self.service.submit_cleanups(workflow, job, pairs)
        return {"workflow": workflow, "job": job, "advice": [a.to_dict() for a in advice]}

    def complete_cleanups(self, payload: dict) -> dict:
        ids = _require(payload, "ids", (list,))
        if not all(isinstance(i, int) for i in ids):
            raise PolicyRequestError("field 'ids' must be a list of cleanup ids")
        return self.service.complete_cleanups(ids)

    # -- reconciliation -------------------------------------------------------
    def reconcile_staged(self, payload: dict) -> dict:
        """Adopt files staged while the service was down (degraded clients)."""
        workflow = _require(payload, "workflow")
        files = _require(payload, "files", (list,))
        entries = []
        for idx, item in enumerate(files):
            if not isinstance(item, dict):
                raise PolicyRequestError(f"files[{idx}] must be an object")
            entry = [_require(item, "lfn"), _require(item, "url")]
            nbytes = item.get("nbytes")
            if nbytes is not None:
                if not isinstance(nbytes, (int, float)):
                    raise PolicyRequestError(
                        f"files[{idx}].nbytes must be a number"
                    )
                entry.append(_finite_nonneg(nbytes, f"files[{idx}].nbytes"))
            entries.append(tuple(entry))
        return self.service.reconcile_staged(workflow, entries)

    # -- staged-data catalog --------------------------------------------------
    def catalog(self) -> dict:
        """The staged-data catalog census (replicas + site budgets)."""
        try:
            return self.service.catalog_census()
        except RuntimeError as exc:
            raise PolicyRequestError(str(exc)) from exc

    def catalog_replicas(self, lfn: str) -> dict:
        """Known replicas of one dataset, sorted by (site, url)."""
        if not isinstance(lfn, str) or not lfn:
            raise PolicyRequestError("lfn must be a non-empty string")
        try:
            return {"lfn": lfn, "replicas": self.service.catalog_replicas(lfn)}
        except RuntimeError as exc:
            raise PolicyRequestError(str(exc)) from exc

    def set_site_capacity(self, payload: dict) -> dict:
        """Set (or lift, with null) one site's byte budget at runtime."""
        site = _require(payload, "site")
        if not site:
            raise PolicyRequestError("site must be a non-empty string")
        capacity = payload.get("capacity_bytes")
        if capacity is not None:
            if not isinstance(capacity, (int, float)):
                raise PolicyRequestError("capacity_bytes must be a number or null")
            capacity = _finite_nonneg(capacity, "capacity_bytes")
        try:
            return self.service.set_site_capacity(site, capacity)
        except RuntimeError as exc:
            raise PolicyRequestError(str(exc)) from exc

    def catalog_pin(self, payload: dict) -> dict:
        """Pin (pinned=true, the default) or unpin a replica by url."""
        url = _require(payload, "url")
        pinned = payload.get("pinned", True)
        if not isinstance(pinned, bool):
            raise PolicyRequestError("pinned must be a boolean")
        try:
            return self.service.catalog_pin(url, pinned)
        except (RuntimeError, KeyError) as exc:
            message = exc.args[0] if exc.args else str(exc)
            raise PolicyRequestError(str(message)) from exc

    # -- access control -------------------------------------------------------
    def deny_host(self, payload: dict) -> dict:
        host = _require(payload, "host")
        direction = payload.get("direction", "any")
        if direction not in ("src", "dst", "any"):
            raise PolicyRequestError("direction must be src/dst/any")
        try:
            self.service.deny_host(host, direction, payload.get("reason", ""))
        except RuntimeError as exc:
            raise PolicyRequestError(str(exc)) from exc
        return {"host": host, "direction": direction, "denied": True}

    def allow_host(self, payload: dict) -> dict:
        host = _require(payload, "host")
        return {"host": host, "removed": self.service.allow_host(host)}

    def set_quota(self, payload: dict) -> dict:
        workflow = _require(payload, "workflow")
        max_bytes = _finite_nonneg(
            _require(payload, "max_bytes", (int, float)), "max_bytes"
        )
        try:
            self.service.set_quota(workflow, max_bytes)
        except RuntimeError as exc:
            raise PolicyRequestError(str(exc)) from exc
        return {"workflow": workflow, "max_bytes": max_bytes}

    # -- tenants -------------------------------------------------------------
    def register_tenant(self, payload: dict) -> dict:
        tenant = _require(payload, "tenant")
        if not tenant:
            raise PolicyRequestError("tenant must be a non-empty string")
        weight = payload.get("weight", 1.0)
        if not isinstance(weight, (int, float)) or isinstance(weight, bool) \
                or not math.isfinite(weight) or weight <= 0:
            raise PolicyRequestError("weight must be a finite number > 0")
        priority_class = payload.get("priority_class", 0)
        if not isinstance(priority_class, int) or isinstance(priority_class, bool):
            raise PolicyRequestError("priority_class must be an integer")
        max_bytes: Optional[float] = payload.get("max_bytes")
        if max_bytes is not None:
            if not isinstance(max_bytes, (int, float)):
                raise PolicyRequestError("max_bytes must be a number or null")
            max_bytes = _finite_nonneg(max_bytes, "max_bytes")
        caps: dict[str, Optional[int]] = {}
        for name in ("max_streams", "max_concurrent"):
            value = payload.get(name)
            if value is not None and (
                not isinstance(value, int) or isinstance(value, bool) or value < 1
            ):
                raise PolicyRequestError(f"{name} must be an integer >= 1 or null")
            caps[name] = value
        self.service.register_tenant(
            tenant,
            weight=float(weight),
            priority_class=priority_class,
            max_bytes=max_bytes,
            max_streams=caps["max_streams"],
            max_concurrent=caps["max_concurrent"],
        )
        return {"tenant": tenant, "registered": True}

    def unregister_tenant(self, payload: dict) -> dict:
        tenant = _require(payload, "tenant")
        return {"tenant": tenant, "removed": self.service.unregister_tenant(tenant)}

    def bind_workflow(self, payload: dict) -> dict:
        workflow = _require(payload, "workflow")
        tenant = _require(payload, "tenant")
        try:
            self.service.bind_workflow(workflow, tenant)
        except RuntimeError as exc:
            raise PolicyRequestError(str(exc)) from exc
        return {"workflow": workflow, "tenant": tenant, "bound": True}

    def tenants(self) -> dict:
        return {"tenants": self.service.tenants()}

    # -- workflows ----------------------------------------------------------
    def register_priorities(self, payload: dict) -> dict:
        workflow = _require(payload, "workflow")
        priorities = _require(payload, "priorities", (dict,))
        for job, value in priorities.items():
            if not isinstance(value, int):
                raise PolicyRequestError(f"priority for {job!r} must be an integer")
        count = self.service.register_priorities(workflow, priorities)
        return {"workflow": workflow, "registered": count}

    def unregister_workflow(self, payload: dict) -> dict:
        workflow = _require(payload, "workflow")
        retain = payload.get("retain_staged", False)
        if not isinstance(retain, bool):
            raise PolicyRequestError("retain_staged must be a boolean")
        self.service.unregister_workflow(workflow, retain_staged=retain)
        return {"workflow": workflow, "unregistered": True}

    # -- status ---------------------------------------------------------------
    def status(self) -> dict:
        return self.service.snapshot()

    def metrics_text(self) -> str:
        """Prometheus text exposition of the service's metrics registry."""
        return self.service.metrics_text()
