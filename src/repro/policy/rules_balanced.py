"""Table III — balanced (per-cluster) stream-allocation rules.

The balanced algorithm divides the host-pair stream budget evenly across
the workflow's transfer clusters (the Pegasus clustering factor equals the
number of concurrent transfer operations).  Each cluster's transfers are
granted their requested streams until that *cluster's* threshold is
exceeded; later transfers on the same cluster get a single stream.
Because every cluster has a reserved share, a cluster whose requests
arrive late is not starved by earlier clusters (unlike greedy).

The per-cluster threshold ("Retrieve the parallel streams threshold
defined for a single cluster between a source and destination host" /
"Retrieve the number of clusters used in the system") comes from
:meth:`~repro.policy.model.PolicyConfig.per_cluster_threshold` via the
session globals.
"""

from __future__ import annotations

from repro.rules import Absent, Pattern, Rule

from repro.policy import salience
from repro.policy.model import ClusterAllocationFact, TransferFact

__all__ = ["balanced_rules"]


def _needs_allocation(t, bindings) -> bool:
    return (
        t.status == "new"
        and t.allocated_streams is None
        and t.requested_streams is not None
        and t.group_id is not None
        and t.cluster is not None
    )


_NEW_KEYS = {"status": lambda b: "new"}


def _cluster_keys():
    return {
        "src_host": lambda b: b["t"].src_host,
        "dst_host": lambda b: b["t"].dst_host,
        "cluster": lambda b: b["t"].cluster,
    }


def _cluster_of(c, bindings) -> bool:
    t = bindings["t"]
    return (
        c.src_host == t.src_host
        and c.dst_host == t.dst_host
        and c.cluster == t.cluster
    )


def _threshold(bindings) -> int:
    return bindings["_globals"]["config"].per_cluster_threshold()


def _create_cluster_allocation(ctx):
    t = ctx.t
    ctx.insert(ClusterAllocationFact(t.src_host, t.dst_host, t.cluster))


def _grant_full(ctx):
    grant = ctx.t.requested_streams
    ctx.update(ctx.t, allocated_streams=grant)
    ctx.update(ctx.alloc, allocated=ctx.alloc.allocated + grant)


def _grant_partial(ctx):
    grant = ctx.globals["config"].per_cluster_threshold() - ctx.alloc.allocated
    ctx.update(ctx.t, allocated_streams=grant,
               reason="request trimmed to the cluster's stream share")
    ctx.update(ctx.alloc, allocated=ctx.alloc.allocated + grant)


def _grant_single(ctx):
    ctx.update(ctx.t, allocated_streams=1,
               reason="cluster stream share exhausted; allocated a single stream")
    ctx.update(ctx.alloc, allocated=ctx.alloc.allocated + 1)


def balanced_rules() -> list[Rule]:
    """The Table III rule pack."""
    return [
        Rule(
            "Retrieve the parallel streams threshold defined for a single "
            "cluster between a source and destination host",
            salience=salience.THRESHOLD_RETRIEVE,
            when=[
                Pattern(TransferFact, "t", where=_needs_allocation, keys=_NEW_KEYS),
                Absent(
                    ClusterAllocationFact,
                    where=_cluster_of,
                    keys=_cluster_keys(),
                    # The per-cluster counter churns on every firing; only
                    # the (immutable) pair + cluster identity decide this.
                    reads=("src_host", "dst_host", "cluster"),
                ),
            ],
            then=_create_cluster_allocation,
        ),
        Rule(
            "Enforce the max number of parallel streams on a transfer that "
            "fits within its cluster's share",
            salience=salience.ALLOCATION,
            when=[
                Pattern(TransferFact, "t", where=_needs_allocation, keys=_NEW_KEYS),
                Pattern(
                    ClusterAllocationFact,
                    "alloc",
                    where=lambda a, b: _cluster_of(a, b)
                    and a.allocated + b["t"].requested_streams <= _threshold(b),
                    keys=_cluster_keys(),
                ),
            ],
            then=_grant_full,
        ),
        Rule(
            "Enforce the max number of parallel streams on a transfer that "
            "violates the number of available streams below the threshold on "
            "its cluster",
            salience=salience.ALLOCATION,
            when=[
                Pattern(TransferFact, "t", where=_needs_allocation, keys=_NEW_KEYS),
                Pattern(
                    ClusterAllocationFact,
                    "alloc",
                    where=lambda a, b: _cluster_of(a, b)
                    and a.allocated < _threshold(b)
                    and a.allocated + b["t"].requested_streams > _threshold(b),
                    keys=_cluster_keys(),
                ),
            ],
            then=_grant_partial,
        ),
        Rule(
            "Record the number of parallel streams used by a transfer against "
            "the defined cluster threshold (share exhausted: single stream)",
            salience=salience.ALLOCATION,
            when=[
                Pattern(TransferFact, "t", where=_needs_allocation, keys=_NEW_KEYS),
                Pattern(
                    ClusterAllocationFact,
                    "alloc",
                    where=lambda a, b: _cluster_of(a, b)
                    and a.allocated >= _threshold(b),
                    keys=_cluster_keys(),
                ),
            ],
            then=_grant_single,
        ),
    ]
