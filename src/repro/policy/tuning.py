"""Threshold auto-tuning (paper future work, implemented).

The paper closes by proposing "machine learning algorithms to identify the
data transfer settings (such as the threshold number of streams) that are
the most beneficial".  We implement that as an epsilon-greedy multi-armed
bandit over candidate thresholds: each observed workflow run is a reward
sample (negative execution time) for the threshold it used; the tuner
exploits the best-known arm while still exploring.

Used by ``benchmarks/test_ablation_tuning.py`` and
``examples/threshold_tuning.py``.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

__all__ = ["ThresholdTuner"]


class ThresholdTuner:
    """Epsilon-greedy bandit over candidate stream thresholds.

    Parameters
    ----------
    candidates:
        Thresholds to choose among (e.g. ``(25, 50, 100, 200)``).
    epsilon:
        Exploration probability per suggestion.
    rng:
        numpy Generator (deterministic tuning runs).
    """

    def __init__(
        self,
        candidates: Sequence[int],
        epsilon: float = 0.2,
        rng: Optional[np.random.Generator] = None,
    ):
        candidates = list(dict.fromkeys(int(c) for c in candidates))
        if not candidates:
            raise ValueError("need at least one candidate threshold")
        if any(c < 1 for c in candidates):
            raise ValueError("thresholds must be >= 1")
        if not 0 <= epsilon <= 1:
            raise ValueError("epsilon must be in [0, 1]")
        self.candidates = candidates
        self.epsilon = epsilon
        self.rng = rng or np.random.default_rng(0)
        self._times: dict[int, list[float]] = {c: [] for c in candidates}

    # -- bandit API -----------------------------------------------------------
    def suggest(self) -> int:
        """Next threshold to try."""
        untried = [c for c in self.candidates if not self._times[c]]
        if untried:
            return untried[0]
        if self.rng.random() < self.epsilon:
            return int(self.rng.choice(self.candidates))
        return self.best()

    def observe(self, threshold: int, execution_time: float) -> None:
        """Record a run's execution time for a threshold."""
        if threshold not in self._times:
            raise ValueError(f"unknown threshold {threshold}")
        if execution_time <= 0:
            raise ValueError("execution_time must be positive")
        self._times[threshold].append(float(execution_time))

    def best(self) -> int:
        """Threshold with the lowest mean observed time (tried arms only)."""
        tried = {c: times for c, times in self._times.items() if times}
        if not tried:
            return self.candidates[0]
        return min(tried, key=lambda c: float(np.mean(tried[c])))

    def mean_time(self, threshold: int) -> Optional[float]:
        times = self._times.get(threshold)
        return float(np.mean(times)) if times else None

    def observations(self) -> dict[int, int]:
        """Sample count per arm."""
        return {c: len(t) for c, t in self._times.items()}
