"""Policy Service clients.

Two clients with matching vocabularies:

* :class:`HTTPPolicyClient` — a blocking client for the real REST frontend
  (:mod:`repro.policy.rest`), used by deployments and the REST tests.
* :class:`InProcessPolicyClient` — the client used *inside simulations*:
  it calls the service directly but charges a configurable service-call
  latency on the simulation clock (the paper notes that consulting an
  external service "incurs overheads for the service calls").  Its methods
  are DES process generators, invoked with ``yield from``.
"""

from __future__ import annotations

import json
import urllib.request
from typing import Iterable, Optional

from repro.des.core import Environment
from repro.policy.model import CleanupAdvice, TransferAdvice
from repro.policy.service import PolicyService

__all__ = ["HTTPPolicyClient", "InProcessPolicyClient"]


class HTTPPolicyClient:
    """Blocking JSON/HTTP client for :class:`PolicyRestServer`."""

    def __init__(self, base_url: str, timeout: float = 10.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    def _post(self, path: str, payload: dict) -> dict:
        data = json.dumps(payload).encode()
        request = urllib.request.Request(
            f"{self.base_url}{path}",
            data=data,
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=self.timeout) as response:
            return json.loads(response.read())

    def _get(self, path: str) -> dict:
        with urllib.request.urlopen(
            f"{self.base_url}{path}", timeout=self.timeout
        ) as response:
            return json.loads(response.read())

    # -- API ----------------------------------------------------------------
    def submit_transfers(self, workflow: str, job: str, transfers: list[dict]) -> list[TransferAdvice]:
        doc = self._post(
            "/policy/transfers",
            {"workflow": workflow, "job": job, "transfers": transfers},
        )
        return [TransferAdvice.from_dict(a) for a in doc["advice"]]

    def complete_transfers(self, done: Iterable[int] = (), failed: Iterable[int] = ()) -> dict:
        return self._post(
            "/policy/transfers/complete", {"done": list(done), "failed": list(failed)}
        )

    def submit_cleanups(self, workflow: str, job: str, files: list[tuple[str, str]]) -> list[CleanupAdvice]:
        doc = self._post(
            "/policy/cleanups",
            {
                "workflow": workflow,
                "job": job,
                "files": [{"lfn": lfn, "url": url} for lfn, url in files],
            },
        )
        return [CleanupAdvice.from_dict(a) for a in doc["advice"]]

    def complete_cleanups(self, ids: Iterable[int]) -> dict:
        return self._post("/policy/cleanups/complete", {"ids": list(ids)})

    def staging_state(self, lfn: str, url: str) -> str:
        return self._post("/policy/staging", {"lfn": lfn, "url": url})["state"]

    def transfer_state(self, tid: int) -> str:
        return self._get(f"/policy/transfers/{tid}")["state"]

    def register_priorities(self, workflow: str, priorities: dict) -> dict:
        return self._post(
            "/policy/priorities", {"workflow": workflow, "priorities": priorities}
        )

    def unregister_workflow(self, workflow: str) -> dict:
        return self._post("/policy/workflows/unregister", {"workflow": workflow})

    def deny_host(self, host: str, direction: str = "any", reason: str = "") -> dict:
        return self._post(
            "/policy/denials", {"host": host, "direction": direction, "reason": reason}
        )

    def allow_host(self, host: str) -> dict:
        return self._post("/policy/denials/remove", {"host": host})

    def set_quota(self, workflow: str, max_bytes: float) -> dict:
        return self._post(
            "/policy/quotas", {"workflow": workflow, "max_bytes": max_bytes}
        )

    def status(self) -> dict:
        return self._get("/policy/status")


class InProcessPolicyClient:
    """Simulation-side client: direct service calls + simulated latency.

    Every method is a generator to be driven with ``yield from`` inside a
    DES process; each call costs ``latency`` seconds of simulated time
    (HTTP round trip + rule evaluation, the paper's service-call overhead).
    """

    def __init__(
        self,
        service: PolicyService,
        env: Environment,
        latency: float = 0.05,
    ):
        if latency < 0:
            raise ValueError("latency must be >= 0")
        self.service = service
        self.env = env
        self.latency = latency
        self.calls = 0
        self.time_in_calls = 0.0

    def _charge(self):
        self.calls += 1
        self.time_in_calls += self.latency
        if self.latency > 0:
            yield self.env.timeout(self.latency)

    def submit_transfers(self, workflow: str, job: str, transfers: list[dict]):
        yield from self._charge()
        return self.service.submit_transfers(workflow, job, transfers)

    def complete_transfers(self, done=(), failed=()):
        yield from self._charge()
        return self.service.complete_transfers(done=done, failed=failed)

    def submit_cleanups(self, workflow: str, job: str, files):
        yield from self._charge()
        return self.service.submit_cleanups(workflow, job, files)

    def complete_cleanups(self, ids):
        yield from self._charge()
        return self.service.complete_cleanups(ids)

    def staging_state(self, lfn: str, url: str):
        yield from self._charge()
        return self.service.staging_state(lfn, url)

    def transfer_state(self, tid: int):
        yield from self._charge()
        return self.service.transfer_state(tid)

    def register_priorities(self, workflow: str, priorities: dict):
        yield from self._charge()
        return self.service.register_priorities(workflow, priorities)

    def unregister_workflow(self, workflow: str):
        yield from self._charge()
        return self.service.unregister_workflow(workflow)
