"""Policy Service clients.

Two clients with matching vocabularies:

* :class:`HTTPPolicyClient` — a blocking client for the real REST frontend
  (:mod:`repro.policy.rest`), used by deployments and the REST tests.
* :class:`InProcessPolicyClient` — the client used *inside simulations*:
  it calls the service directly but charges a configurable service-call
  latency on the simulation clock (the paper notes that consulting an
  external service "incurs overheads for the service calls").  Its methods
  are DES process generators, invoked with ``yield from``.

Both clients share one resilience vocabulary: bounded retries with
exponential backoff and jitter (:class:`RetryPolicy`) and a
:class:`CircuitBreaker` that stops hammering a dead service.  When the
retries are exhausted — or the circuit is open — the call raises
:class:`PolicyUnavailableError`; the transfer tool catches it and degrades
to policy-free staging rather than wedging the workflow.
"""

from __future__ import annotations

import json
import random
import threading
import time
import urllib.error
import urllib.request
from dataclasses import dataclass
from typing import Callable, Iterable, Optional

from repro.des.core import Environment
from repro.policy.model import CleanupAdvice, TransferAdvice
from repro.policy.service import PolicyService

__all__ = [
    "HTTPPolicyClient",
    "InProcessPolicyClient",
    "PolicyUnavailableError",
    "CircuitOpenError",
    "RetryPolicy",
    "CircuitBreaker",
]


class PolicyUnavailableError(RuntimeError):
    """The Policy Service could not be reached (after retries)."""


class CircuitOpenError(PolicyUnavailableError):
    """The circuit breaker is open — the call was not even attempted."""


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff and jitter.

    ``retries`` is the number of *re*-attempts after the first call; the
    delay before retry ``n`` (0-based) is
    ``min(base_delay * multiplier**n, max_delay)``, inflated by up to
    ``jitter`` fraction so synchronized clients do not stampede a
    recovering service.
    """

    retries: int = 3
    base_delay: float = 0.1
    multiplier: float = 2.0
    max_delay: float = 5.0
    jitter: float = 0.1

    def __post_init__(self):
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be >= 0")
        if self.multiplier < 1:
            raise ValueError("multiplier must be >= 1")
        if not 0 <= self.jitter <= 1:
            raise ValueError("jitter must be in [0, 1]")

    def delay_for(self, attempt: int, rng: Optional[random.Random] = None) -> float:
        delay = min(self.base_delay * self.multiplier**attempt, self.max_delay)
        if self.jitter and rng is not None:
            delay *= 1.0 + self.jitter * rng.random()
        return delay


class CircuitBreaker:
    """Classic three-state breaker guarding calls to the service.

    ``closed`` — calls flow; ``failure_threshold`` *consecutive* failures
    trip it ``open``.  While open, :meth:`allow` refuses immediately until
    ``reset_timeout`` has elapsed, then one probe call is let through
    (``half_open``): success closes the breaker, failure re-opens it.
    Thread-safe so the blocking HTTP client can share one instance.

    Every state change is counted in ``transitions`` (keys like
    ``"closed->open"``), and :meth:`state_code` maps the state to the
    gauge value exported as ``repro_policy_client_breaker_state``
    (0 = closed, 1 = half_open, 2 = open).
    """

    #: state -> metric gauge value (higher = less available)
    STATE_CODES = {"closed": 0, "half_open": 1, "open": 2}

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_timeout: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_timeout < 0:
            raise ValueError("reset_timeout must be >= 0")
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.clock = clock
        self.state = "closed"
        self.failures = 0
        self.opened_at: Optional[float] = None
        self.transitions: dict[str, int] = {}
        self._lock = threading.Lock()

    def _transition(self, new_state: str) -> None:
        """Move to ``new_state`` (under ``_lock``), counting the edge."""
        if new_state == self.state:
            return
        key = f"{self.state}->{new_state}"
        self.transitions[key] = self.transitions.get(key, 0) + 1
        self.state = new_state

    def allow(self) -> bool:
        """May a call proceed right now?  (May transition open -> half_open.)"""
        with self._lock:
            if self.state == "closed":
                return True
            if self.state == "open":
                if self.clock() - self.opened_at >= self.reset_timeout:
                    self._transition("half_open")
                    return True
                return False
            # half_open: one probe is already in flight — hold the rest back
            return False

    def record_success(self) -> None:
        with self._lock:
            self._transition("closed")
            self.failures = 0
            self.opened_at = None

    def record_failure(self) -> None:
        with self._lock:
            self.failures += 1
            if self.state == "half_open" or self.failures >= self.failure_threshold:
                self._transition("open")
                self.opened_at = self.clock()

    def state_code(self) -> int:
        """Numeric gauge value for the current state."""
        return self.STATE_CODES[self.state]

    def snapshot(self) -> dict:
        """JSON-able health view (state, failures, transition counts)."""
        with self._lock:
            return {
                "state": self.state,
                "state_code": self.STATE_CODES[self.state],
                "failures": self.failures,
                "opened_at": self.opened_at,
                "transitions": dict(self.transitions),
            }


class HTTPPolicyClient:
    """Blocking JSON/HTTP client for :class:`PolicyRestServer`.

    Transport errors and 5xx responses are retried per ``retry`` (4xx
    responses are the caller's bug and surface immediately); exhausted
    retries raise :class:`PolicyUnavailableError`.  An optional shared
    ``breaker`` short-circuits calls while the service is known-dead.
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 10.0,
        retry: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        sleep: Callable[[float], None] = time.sleep,
        rng: Optional[random.Random] = None,
    ):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retry = retry or RetryPolicy(retries=0)
        self.breaker = breaker
        self._sleep = sleep
        self._rng = rng if rng is not None else random.Random()
        self._request_seq = 0
        self._request_lock = threading.Lock()

    def _next_request_id(self) -> str:
        """Client-generated request id, echoed back by the server (the
        ``X-Repro-Request-Id`` propagation of the REST spans)."""
        with self._request_lock:
            self._request_seq += 1
            return f"cli-{id(self) & 0xFFFF:04x}-{self._request_seq}"

    def _call(self, request_fn: Callable[[], dict]) -> dict:
        breaker = self.breaker
        if breaker is not None and not breaker.allow():
            raise CircuitOpenError("policy service circuit is open")
        last_error: Optional[Exception] = None
        for attempt in range(self.retry.retries + 1):
            if attempt > 0:
                self._sleep(self.retry.delay_for(attempt - 1, self._rng))
            try:
                result = request_fn()
            except urllib.error.HTTPError as exc:
                if exc.code < 500:
                    raise  # client error: retrying cannot help
                last_error = exc
            except (urllib.error.URLError, OSError) as exc:
                last_error = exc
            else:
                if breaker is not None:
                    breaker.record_success()
                return result
            if breaker is not None:
                breaker.record_failure()
                if not breaker.allow():
                    break  # tripped open mid-retry: stop hammering
        raise PolicyUnavailableError(
            f"policy service unreachable at {self.base_url}: {last_error}"
        ) from last_error

    def _post(self, path: str, payload: dict) -> dict:
        data = json.dumps(payload).encode()

        def request_fn() -> dict:
            request = urllib.request.Request(
                f"{self.base_url}{path}",
                data=data,
                headers={
                    "Content-Type": "application/json",
                    "X-Repro-Request-Id": self._next_request_id(),
                },
                method="POST",
            )
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read())

        return self._call(request_fn)

    def _get(self, path: str) -> dict:
        def request_fn() -> dict:
            request = urllib.request.Request(
                f"{self.base_url}{path}",
                headers={"X-Repro-Request-Id": self._next_request_id()},
            )
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read())

        return self._call(request_fn)

    # -- API ----------------------------------------------------------------
    def submit_transfers(self, workflow: str, job: str, transfers: list[dict]) -> list[TransferAdvice]:
        doc = self._post(
            "/policy/transfers",
            {"workflow": workflow, "job": job, "transfers": transfers},
        )
        return [TransferAdvice.from_dict(a) for a in doc["advice"]]

    def complete_transfers(self, done: Iterable[int] = (), failed: Iterable[int] = ()) -> dict:
        return self._post(
            "/policy/transfers/complete", {"done": list(done), "failed": list(failed)}
        )

    def submit_cleanups(self, workflow: str, job: str, files: list[tuple[str, str]]) -> list[CleanupAdvice]:
        doc = self._post(
            "/policy/cleanups",
            {
                "workflow": workflow,
                "job": job,
                "files": [{"lfn": lfn, "url": url} for lfn, url in files],
            },
        )
        return [CleanupAdvice.from_dict(a) for a in doc["advice"]]

    def complete_cleanups(self, ids: Iterable[int]) -> dict:
        return self._post("/policy/cleanups/complete", {"ids": list(ids)})

    def staging_state(self, lfn: str, url: str) -> str:
        return self._post("/policy/staging", {"lfn": lfn, "url": url})["state"]

    def transfer_state(self, tid: int) -> str:
        return self._get(f"/policy/transfers/{tid}")["state"]

    def register_priorities(self, workflow: str, priorities: dict) -> dict:
        return self._post(
            "/policy/priorities", {"workflow": workflow, "priorities": priorities}
        )

    def unregister_workflow(self, workflow: str) -> dict:
        return self._post("/policy/workflows/unregister", {"workflow": workflow})

    def reconcile_staged(self, workflow: str, files: Iterable[tuple]) -> dict:
        docs = []
        for lfn, url, *rest in files:
            doc = {"lfn": lfn, "url": url}
            if rest:
                doc["nbytes"] = rest[0]
            docs.append(doc)
        return self._post(
            "/policy/staged/reconcile", {"workflow": workflow, "files": docs}
        )

    def deny_host(self, host: str, direction: str = "any", reason: str = "") -> dict:
        return self._post(
            "/policy/denials", {"host": host, "direction": direction, "reason": reason}
        )

    def allow_host(self, host: str) -> dict:
        return self._post("/policy/denials/remove", {"host": host})

    def set_quota(self, workflow: str, max_bytes: float) -> dict:
        return self._post(
            "/policy/quotas", {"workflow": workflow, "max_bytes": max_bytes}
        )

    def register_tenant(self, tenant: str, **spec) -> dict:
        """``spec``: weight, priority_class, max_bytes, max_streams,
        max_concurrent (all optional)."""
        return self._post("/policy/tenants", {"tenant": tenant, **spec})

    def unregister_tenant(self, tenant: str) -> dict:
        return self._post("/policy/tenants/remove", {"tenant": tenant})

    def bind_workflow(self, workflow: str, tenant: str) -> dict:
        return self._post(
            "/policy/tenants/bind", {"workflow": workflow, "tenant": tenant}
        )

    def tenants(self) -> list[dict]:
        return self._get("/policy/tenants")["tenants"]

    def catalog_census(self) -> dict:
        return self._get("/policy/catalog")

    def catalog_replicas(self, lfn: str) -> list[dict]:
        from urllib.parse import quote

        return self._get(f"/policy/catalog/replicas/{quote(lfn, safe='')}")[
            "replicas"
        ]

    def set_site_capacity(self, site: str, capacity_bytes) -> dict:
        return self._post(
            "/policy/catalog/sites",
            {"site": site, "capacity_bytes": capacity_bytes},
        )

    def catalog_pin(self, url: str, pinned: bool = True) -> dict:
        return self._post(
            "/policy/catalog/pins", {"url": url, "pinned": pinned}
        )

    def status(self) -> dict:
        return self._get("/policy/status")


class InProcessPolicyClient:
    """Simulation-side client: direct service calls + simulated latency.

    Every method is a generator to be driven with ``yield from`` inside a
    DES process; each call costs ``latency`` seconds of simulated time
    (HTTP round trip + rule evaluation, the paper's service-call overhead).

    Fault injection hooks in through ``fault_gate``: a callable invoked
    with the method name *after* the latency is charged, raising
    :exc:`PolicyUnavailableError` to simulate a dead service or a dropped
    RPC.  Retries per ``retry`` cost simulated backoff time; exhausted
    retries (or an open ``breaker``) surface the error to the caller.
    """

    def __init__(
        self,
        service: PolicyService,
        env: Environment,
        latency: float = 0.05,
        retry: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        fault_gate: Optional[Callable[[str], None]] = None,
        rng: Optional[random.Random] = None,
    ):
        if latency < 0:
            raise ValueError("latency must be >= 0")
        self.service = service
        self.env = env
        self.latency = latency
        self.retry = retry or RetryPolicy(retries=0)
        self.breaker = breaker
        self.fault_gate = fault_gate
        self._rng = rng
        self.calls = 0
        self.failed_calls = 0
        self.time_in_calls = 0.0

    def _charge(self):
        self.calls += 1
        self.time_in_calls += self.latency
        if self.latency > 0:
            yield self.env.timeout(self.latency)

    def _invoke(self, name: str, call: Callable[[], object]):
        tracer = self.env.tracer
        span = None
        if tracer is not None and tracer.enabled:
            # Client-side view of the rpc: covers the simulated latency
            # charge plus any retry backoff, unlike the service's span.
            span = tracer.begin("rpc", f"rpc:{name}", track="policy-client")
        breaker = self.breaker
        if breaker is not None and not breaker.allow():
            if tracer is not None:
                tracer.end(span, outcome="circuit_open")
            raise CircuitOpenError("policy service circuit is open")
        last_error: Optional[Exception] = None
        attempt = 0
        for attempt in range(self.retry.retries + 1):
            if attempt > 0:
                delay = self.retry.delay_for(attempt - 1, self._rng)
                if delay > 0:
                    yield self.env.timeout(delay)
            yield from self._charge()
            try:
                if self.fault_gate is not None:
                    self.fault_gate(name)
                result = call()
            except PolicyUnavailableError as exc:
                self.failed_calls += 1
                last_error = exc
            else:
                if breaker is not None:
                    breaker.record_success()
                if tracer is not None:
                    tracer.end(span, outcome="ok", attempts=attempt + 1)
                return result
            if breaker is not None:
                breaker.record_failure()
                if not breaker.allow():
                    break  # tripped open mid-retry: stop hammering
        if tracer is not None:
            tracer.end(span, outcome="unavailable", attempts=attempt + 1)
        raise PolicyUnavailableError(
            f"policy service unreachable ({name}): {last_error}"
        ) from last_error

    def submit_transfers(self, workflow: str, job: str, transfers: list[dict]):
        return (
            yield from self._invoke(
                "submit_transfers",
                lambda: self.service.submit_transfers(workflow, job, transfers),
            )
        )

    def complete_transfers(self, done=(), failed=()):
        done, failed = list(done), list(failed)
        return (
            yield from self._invoke(
                "complete_transfers",
                lambda: self.service.complete_transfers(done=done, failed=failed),
            )
        )

    def submit_cleanups(self, workflow: str, job: str, files):
        files = list(files)
        return (
            yield from self._invoke(
                "submit_cleanups",
                lambda: self.service.submit_cleanups(workflow, job, files),
            )
        )

    def complete_cleanups(self, ids):
        ids = list(ids)
        return (
            yield from self._invoke(
                "complete_cleanups", lambda: self.service.complete_cleanups(ids)
            )
        )

    def staging_state(self, lfn: str, url: str):
        return (
            yield from self._invoke(
                "staging_state", lambda: self.service.staging_state(lfn, url)
            )
        )

    def transfer_state(self, tid: int):
        return (
            yield from self._invoke(
                "transfer_state", lambda: self.service.transfer_state(tid)
            )
        )

    def register_priorities(self, workflow: str, priorities: dict):
        return (
            yield from self._invoke(
                "register_priorities",
                lambda: self.service.register_priorities(workflow, priorities),
            )
        )

    def unregister_workflow(self, workflow: str, retain_staged: bool = False):
        return (
            yield from self._invoke(
                "unregister_workflow",
                lambda: self.service.unregister_workflow(
                    workflow, retain_staged=retain_staged
                ),
            )
        )

    def reconcile_staged(self, workflow: str, files):
        files = list(files)
        return (
            yield from self._invoke(
                "reconcile_staged",
                lambda: self.service.reconcile_staged(workflow, files),
            )
        )

    def register_tenant(self, tenant: str, **spec):
        return (
            yield from self._invoke(
                "register_tenant",
                lambda: self.service.register_tenant(tenant, **spec),
            )
        )

    def unregister_tenant(self, tenant: str):
        return (
            yield from self._invoke(
                "unregister_tenant", lambda: self.service.unregister_tenant(tenant)
            )
        )

    def bind_workflow(self, workflow: str, tenant: str):
        return (
            yield from self._invoke(
                "bind_workflow", lambda: self.service.bind_workflow(workflow, tenant)
            )
        )

    def tenants(self):
        return (yield from self._invoke("tenants", lambda: self.service.tenants()))

    def catalog_census(self):
        return (
            yield from self._invoke(
                "catalog_census", lambda: self.service.catalog_census()
            )
        )

    def catalog_replicas(self, lfn: str):
        return (
            yield from self._invoke(
                "catalog_replicas", lambda: self.service.catalog_replicas(lfn)
            )
        )

    def set_site_capacity(self, site: str, capacity_bytes):
        return (
            yield from self._invoke(
                "set_site_capacity",
                lambda: self.service.set_site_capacity(site, capacity_bytes),
            )
        )

    def catalog_pin(self, url: str, pinned: bool = True):
        return (
            yield from self._invoke(
                "catalog_pin", lambda: self.service.catalog_pin(url, pinned)
            )
        )
