"""Analytic stream-allocation math (drives the paper's Table IV).

These pure functions mirror what the rule packs do operationally, so the
expected allocations can be computed (and tested) without running the rule
engine.  ``max_streams_table`` regenerates Table IV: the maximum number of
simultaneous streams between a host pair when 20 data staging jobs run
concurrently (the paper's local job limit).
"""

from __future__ import annotations

__all__ = [
    "greedy_allocate",
    "balanced_allocate",
    "greedy_allocation_trace",
    "max_streams_table",
    "TABLE4_DEFAULTS",
    "TABLE4_THRESHOLDS",
    "NO_POLICY_DEFAULT_STREAMS",
]

#: Default-streams-per-transfer values reported in Table IV.
TABLE4_DEFAULTS = (4, 6, 8, 10, 12)
#: Greedy thresholds reported in Table IV.
TABLE4_THRESHOLDS = (50, 100, 200)
#: Default Pegasus (no policy) uses 4 streams per transfer (Fig. 6 caption).
NO_POLICY_DEFAULT_STREAMS = 4
#: The paper's local job limit: at most 20 staging jobs run at once.
PAPER_JOB_LIMIT = 20


def greedy_allocate(requested: int, allocated: int, threshold: int) -> int:
    """Streams the greedy policy grants one transfer.

    ``allocated`` is the pair's current total; grants never push a pair
    below one stream per transfer (no starvation).
    """
    if requested < 1:
        raise ValueError("requested must be >= 1")
    if allocated < 0 or threshold < 1:
        raise ValueError("allocated >= 0 and threshold >= 1 required")
    if allocated >= threshold:
        return 1
    if allocated + requested > threshold:
        return threshold - allocated
    return requested


def balanced_allocate(requested: int, cluster_allocated: int, cluster_threshold: int) -> int:
    """Streams the balanced policy grants a transfer on one cluster."""
    return greedy_allocate(requested, cluster_allocated, cluster_threshold)


def greedy_allocation_trace(
    n_transfers: int, default_streams: int, threshold: int
) -> list[int]:
    """Per-transfer grants for ``n_transfers`` arriving concurrently."""
    if n_transfers < 0:
        raise ValueError("n_transfers must be >= 0")
    grants: list[int] = []
    allocated = 0
    for _ in range(n_transfers):
        grant = greedy_allocate(default_streams, allocated, threshold)
        grants.append(grant)
        allocated += grant
    return grants


def max_streams_table(
    defaults: tuple[int, ...] = TABLE4_DEFAULTS,
    thresholds: tuple[int, ...] = TABLE4_THRESHOLDS,
    n_jobs: int = PAPER_JOB_LIMIT,
    no_policy_streams: int = NO_POLICY_DEFAULT_STREAMS,
) -> dict:
    """Regenerate Table IV.

    Returns ``{"no_policy": N, "greedy": {threshold: {default: max_streams}}}``
    where ``max_streams`` is the total streams allocated when ``n_jobs``
    staging jobs run simultaneously.
    """
    table: dict = {"no_policy": n_jobs * no_policy_streams, "greedy": {}}
    for threshold in thresholds:
        row = {}
        for default in defaults:
            row[default] = sum(greedy_allocation_trace(n_jobs, default, threshold))
        table["greedy"][threshold] = row
    return table


def format_table4(table: dict) -> str:
    """Render Table IV the way the paper prints it."""
    defaults = sorted(next(iter(table["greedy"].values())))
    lines = ["Greedy streams threshold | " + " ".join(f"{d:>5}" for d in defaults)]
    for threshold in sorted(table["greedy"]):
        row = table["greedy"][threshold]
        lines.append(
            f"{threshold:>24} | " + " ".join(f"{row[d]:>5}" for d in defaults)
        )
    lines.append(f"{'No policy case':>24} | {table['no_policy']:>5}")
    return "\n".join(lines)
