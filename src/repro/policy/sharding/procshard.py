"""Worker-process shard backend: real parallelism for batch advice.

Pure-Python rule evaluation is GIL-bound, so in-process shards cannot
make one batch faster — they only isolate failures.  This backend hosts
each shard's :class:`~repro.policy.service.PolicyService` in its own
interpreter (stdlib ``multiprocessing``) and speaks a tiny pickle RPC
over a pipe: ``(method, args, kwargs)`` in, ``(ok, payload)`` out.
Blocking pipe reads release the GIL, so the router's per-shard dispatch
threads overlap and batch-advice throughput scales with shard count —
that is what ``benchmarks/bench_rules.py``'s ``sharded`` scenario
measures.

Limitations (by design — the DES and chaos tests use the in-process
backend): the worker runs on real time (no simulated clock), and the
router cannot introspect its working memory directly, only through the
RPC ops.
"""

from __future__ import annotations

import multiprocessing
import threading
from typing import Optional

from repro.policy.model import PolicyConfig
from repro.policy.sharding.shard import (
    ShardUnavailableError,
    disable_local_sweep,
    invoke_on_service,
)

__all__ = ["ProcessShardBackend"]


def _shard_worker(
    conn,
    config,
    engine: str,
    journal_dir,
    snapshot_interval: int,
    fsync: bool,
    recover: bool,
) -> None:
    """Worker-process main loop: build the service, serve RPCs until EOF."""

    # Imports happen here too so a "spawn" start method works.
    from repro.policy.journal import PolicyJournal
    from repro.policy.service import PolicyService

    if recover and journal_dir is not None:
        service = PolicyService.recover(
            journal_dir,
            config=config,
            engine=engine,
            snapshot_interval=snapshot_interval,
            fsync=fsync,
        )
    else:
        journal = None
        if journal_dir is not None:
            journal = PolicyJournal(
                journal_dir, snapshot_interval=snapshot_interval, fsync=fsync
            )
        service = PolicyService(config, engine=engine, journal=journal)
    disable_local_sweep(service)

    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if message is None:
            break
        name, args, kwargs = message
        try:
            result = invoke_on_service(service, name, *args, **kwargs)
            reply = (True, result)
        except Exception as exc:  # noqa: BLE001 - shipped to the router
            reply = (False, f"{type(exc).__name__}: {exc}")
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            break
    if service.journal is not None:
        service.journal.close()
    conn.close()


class ProcessShardBackend:
    """Hosts one shard's service in a dedicated worker process."""

    def __init__(
        self,
        config: Optional[PolicyConfig] = None,
        engine: str = "indexed",
        journal_dir=None,
        snapshot_interval: int = 1000,
        fsync: bool = False,
        start_method: Optional[str] = None,
    ) -> None:
        self.config = config if config is not None else PolicyConfig()
        self.engine = engine
        self.journal_dir = journal_dir
        self.snapshot_interval = snapshot_interval
        self.fsync = fsync
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self._ctx = multiprocessing.get_context(start_method)
        self._lock = threading.Lock()
        self._proc = None
        self._conn = None
        self._start(recover=False)

    def _start(self, recover: bool) -> None:
        parent, child = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_shard_worker,
            args=(
                child,
                self.config,
                self.engine,
                self.journal_dir,
                self.snapshot_interval,
                self.fsync,
                recover,
            ),
            daemon=True,
        )
        proc.start()
        child.close()
        self._proc = proc
        self._conn = parent

    # ------------------------------------------------------------------ RPC
    def invoke(self, name: str, *args, **kwargs):
        with self._lock:
            if self._proc is None or not self._proc.is_alive():
                raise ShardUnavailableError("shard worker process is not running")
            try:
                self._conn.send((name, args, kwargs))
                ok, payload = self._conn.recv()
            except (BrokenPipeError, EOFError, OSError) as exc:
                raise ShardUnavailableError(
                    f"shard worker pipe failed: {exc}"
                ) from exc
        if ok:
            return payload
        raise RuntimeError(payload)

    def metrics_text(self) -> str:
        return self.invoke("metrics_text")

    # ------------------------------------------------------------------ faults
    def crash(self) -> None:
        """Kill the worker outright — memory gone, journal on disk."""

        with self._lock:
            if self._proc is not None:
                self._proc.terminate()
                self._proc.join(timeout=5)
                self._proc = None
            if self._conn is not None:
                self._conn.close()
                self._conn = None

    def recover(self) -> None:
        """Start a fresh worker that replays the shard journal."""

        with self._lock:
            if self._proc is not None and self._proc.is_alive():
                return
            self._start(recover=self.journal_dir is not None)

    def close(self) -> None:
        with self._lock:
            if self._conn is not None:
                try:
                    self._conn.send(None)
                except (BrokenPipeError, OSError):
                    pass
            if self._proc is not None:
                self._proc.join(timeout=5)
                if self._proc.is_alive():
                    self._proc.terminate()
                self._proc = None
            if self._conn is not None:
                self._conn.close()
                self._conn = None
