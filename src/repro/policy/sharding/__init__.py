"""Sharded Policy Service: consistent-hash routing over N shards.

The paper's Policy Engine is one process with one global working memory —
its acknowledged single point of failure and contention.  This package
partitions policy memory across N independent :class:`PolicyService`
shards behind a consistent-hash router:

* :mod:`repro.policy.sharding.hashring` — the deterministic ring mapping
  (source, destination) host pairs and dataset namespaces to shards;
* :mod:`repro.policy.sharding.shard` — one shard: a `PolicyService`
  behind a backend (in-process or worker process) with its own journal,
  circuit breaker, and health state;
* :mod:`repro.policy.sharding.router` — :class:`ShardedPolicyService`,
  the drop-in façade implementing the full single-service surface:
  global id allocation, canonical group-id numbering, the staged-file
  ownership directory, degraded policy-free advice for a dead shard's
  keyspace, and per-shard journal replay;
* :mod:`repro.policy.sharding.procshard` — the multiprocessing backend
  used for real parallel speedup (each shard evaluates rules in its own
  interpreter, so batch advice scales with shard count).

See ``docs/sharding.md`` for the architecture, the ownership protocol,
and the failure matrix.
"""

from repro.policy.sharding.hashring import HashRing, namespace_key, pair_key
from repro.policy.sharding.procshard import ProcessShardBackend
from repro.policy.sharding.router import ShardedPolicyService
from repro.policy.sharding.shard import (
    InProcessShardBackend,
    ShardHandle,
    ShardUnavailableError,
)

__all__ = [
    "HashRing",
    "InProcessShardBackend",
    "ProcessShardBackend",
    "ShardHandle",
    "ShardUnavailableError",
    "ShardedPolicyService",
    "namespace_key",
    "pair_key",
]
