"""Deterministic consistent-hash ring for policy shard routing.

Keys are strings; placement is derived from SHA-256 so it is stable
across processes and runs (``hash()`` randomisation never leaks in).
The ring uses virtual nodes so that adding a shard moves only ~1/N of
the keyspace, and so that small shard counts still spread host pairs
evenly.

Two key families matter to the router:

* ``pair_key(src_host, dst_host)`` — transfers partition by their
  (source, destination) host pair, which is also the grain of the
  paper's pair-wise stream threshold and grouping state;
* ``namespace_key(lfn)`` — cleanups and other per-file lookups that
  have no pair fall back to the dataset namespace (the directory part
  of the logical file name).
"""

from __future__ import annotations

import bisect
import hashlib
from typing import List, Tuple

__all__ = ["HashRing", "pair_key", "namespace_key", "url_key"]


def pair_key(src_host: str, dst_host: str) -> str:
    """Routing key for a (source, destination) host pair."""

    return f"pair:{src_host}|{dst_host}"


def namespace_key(lfn: str) -> str:
    """Routing key for a logical file's dataset namespace.

    The namespace is the directory prefix of the LFN; flat names form
    their own singleton namespace.
    """

    namespace = lfn.rsplit("/", 1)[0] if "/" in lfn else lfn
    return f"ns:{namespace}"


def url_key(url: str) -> str:
    """Routing key for a physical destination URL (cleanup fallback)."""

    return f"url:{url}"


def _digest(value: str) -> int:
    return int.from_bytes(hashlib.sha256(value.encode("utf-8")).digest()[:8], "big")


class HashRing:
    """A consistent-hash ring mapping string keys to shard indices."""

    def __init__(self, num_shards: int, replicas: int = 64) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.num_shards = num_shards
        self.replicas = replicas
        points: List[Tuple[int, int]] = []
        for shard in range(num_shards):
            for replica in range(replicas):
                points.append((_digest(f"shard-{shard}#{replica}"), shard))
        points.sort()
        self._points = [point for point, _ in points]
        self._owners = [shard for _, shard in points]

    def node_for(self, key: str) -> int:
        """Return the shard index owning ``key``."""

        if self.num_shards == 1:
            return 0
        where = bisect.bisect(self._points, _digest(key))
        if where == len(self._points):
            where = 0
        return self._owners[where]

    def spread(self, keys) -> List[int]:
        """Histogram of how ``keys`` land on shards (diagnostics)."""

        counts = [0] * self.num_shards
        for key in keys:
            counts[self.node_for(key)] += 1
        return counts
