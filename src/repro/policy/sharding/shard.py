"""One policy shard: a `PolicyService` behind a backend + health state.

A shard is a full :class:`~repro.policy.service.PolicyService` owning a
slice of the keyspace, wrapped in two layers:

* a **backend** that hosts the service — in the router's process
  (:class:`InProcessShardBackend`, used by the DES, chaos harness, and
  REST frontends) or in a worker process
  (:class:`~repro.policy.sharding.procshard.ProcessShardBackend`, used
  by the scaling benchmark);
* a :class:`ShardHandle` that the router talks to — it folds liveness
  (``up``), reachability (``partitioned``), fault-injected timeouts
  (``timeout_rate``), and a per-shard
  :class:`~repro.policy.client.CircuitBreaker` into every call, raising
  :class:`ShardUnavailableError` when the shard cannot serve.

Each shard keeps its own journal directory, so one shard can crash,
lose its working memory, and be replayed from its WAL/snapshot without
any other shard noticing.  A recovered shard always has its internal
lease sweep disabled again (``_next_sweep = inf``): sweeping is the
router's job, mirrored from the single-service throttle, so that sweep
timing — and therefore advice — matches the unsharded service exactly.
"""

from __future__ import annotations

import random
import time
from typing import Callable, Optional

from repro.policy.client import CircuitBreaker
from repro.policy.journal import PolicyJournal
from repro.policy.model import (
    CleanupFact,
    HostPairFact,
    PolicyConfig,
    StagedFileFact,
    TransferFact,
)
from repro.policy.service import PolicyService

__all__ = [
    "EXTRA_OPS",
    "InProcessShardBackend",
    "ShardHandle",
    "ShardUnavailableError",
    "disable_local_sweep",
]


class ShardUnavailableError(RuntimeError):
    """The shard cannot serve: down, partitioned, timed out, or breaker-open.

    Raised (and caught) inside the router only — callers of
    :class:`~repro.policy.sharding.router.ShardedPolicyService` see
    degraded advice or ``"unknown"`` query answers, never this error.
    """


def disable_local_sweep(service: PolicyService) -> PolicyService:
    """Hand lease sweeping over to the router (see module docstring)."""

    service._next_sweep = float("inf")
    return service


# ---------------------------------------------------------------------------
# Router-only service operations (shared with the process-backend worker).
#
# The router needs a few aggregate views that are not part of the client
# surface; keeping them here as plain functions lets both backends (and
# the worker process) dispatch them by name.
# ---------------------------------------------------------------------------

def _op_memory_len(service: PolicyService) -> int:
    return len(service.memory)


def _op_memory_census(service: PolicyService) -> dict:
    return service.memory.snapshot()


def _op_host_pairs(service: PolicyService) -> list:
    return sorted(
        {(p.src_host, p.dst_host) for p in service.memory.facts_of(HostPairFact)}
    )


def _op_staged_keys(service: PolicyService) -> list:
    """Every (lfn, dst_url) the shard still holds state for."""

    keys = {(r.lfn, r.dst_url) for r in service.memory.facts_of(StagedFileFact)}
    keys |= {(t.lfn, t.dst_url) for t in service.memory.facts_of(TransferFact)}
    return sorted(keys)


def _op_in_progress_census(service: PolicyService) -> dict:
    transfers = sum(
        1 for t in service.memory.facts_of(TransferFact) if t.status == "in_progress"
    )
    cleanups = sum(
        1 for c in service.memory.facts_of(CleanupFact) if c.status == "in_progress"
    )
    return {"transfers": transfers, "cleanups": cleanups}


EXTRA_OPS: dict[str, Callable] = {
    "memory_len": _op_memory_len,
    "memory_census": _op_memory_census,
    "host_pairs": _op_host_pairs,
    "staged_keys": _op_staged_keys,
    "in_progress_census": _op_in_progress_census,
}


def invoke_on_service(service: PolicyService, name: str, *args, **kwargs):
    """Dispatch ``name`` on a service: extra op, method, or property."""

    extra = EXTRA_OPS.get(name)
    if extra is not None:
        return extra(service, *args, **kwargs)
    attr = getattr(service, name)
    if callable(attr):
        return attr(*args, **kwargs)
    return attr


class InProcessShardBackend:
    """Hosts one shard's `PolicyService` inside the router's process.

    Owns the construction recipe (config, engine, clock, journal
    directory) so it can rebuild the service after a simulated crash:
    with a journal directory, :meth:`recover` replays the WAL/snapshot;
    without one, recovery starts from empty memory (pure equivalence
    tests don't need durability).
    """

    def __init__(
        self,
        config: Optional[PolicyConfig] = None,
        engine: str = "indexed",
        clock: Optional[Callable[[], float]] = None,
        journal_dir=None,
        snapshot_interval: int = 1000,
        fsync: bool = False,
        extra_rules=(),
        metrics=None,
        tracer=None,
        profiler=None,
    ) -> None:
        self.config = config if config is not None else PolicyConfig()
        self.engine = engine
        self.clock = clock
        self.journal_dir = journal_dir
        self.snapshot_interval = snapshot_interval
        self.fsync = fsync
        self.extra_rules = tuple(extra_rules)
        self.metrics = metrics
        self.tracer = tracer
        self.profiler = profiler
        self.service: Optional[PolicyService] = self._build()

    def _build(self) -> PolicyService:
        journal = None
        if self.journal_dir is not None:
            journal = PolicyJournal(
                self.journal_dir,
                snapshot_interval=self.snapshot_interval,
                fsync=self.fsync,
            )
        service = PolicyService(
            self.config,
            extra_rules=self.extra_rules,
            clock=self.clock,
            engine=self.engine,
            journal=journal,
            metrics=self.metrics,
            tracer=self.tracer,
            profiler=self.profiler,
        )
        return disable_local_sweep(service)

    def invoke(self, name: str, *args, **kwargs):
        if self.service is None:
            raise ShardUnavailableError("shard service is down")
        return invoke_on_service(self.service, name, *args, **kwargs)

    def crash(self) -> None:
        """Drop the service — working memory is lost, the journal survives."""

        if self.service is not None and self.service.journal is not None:
            self.service.journal.close()
        self.service = None

    def recover(self) -> None:
        """Rebuild the service: journal replay when durable, else fresh."""

        if self.journal_dir is not None:
            # Reuse the same registry so shard counters keep accumulating
            # across the crash, like a restarted process scraping into the
            # same time series.
            service = PolicyService.recover(
                self.journal_dir,
                config=self.config,
                extra_rules=self.extra_rules,
                clock=self.clock,
                engine=self.engine,
                snapshot_interval=self.snapshot_interval,
                fsync=self.fsync,
                metrics=self.metrics,
                tracer=self.tracer,
                profiler=self.profiler,
            )
            self.service = disable_local_sweep(service)
        else:
            self.service = self._build()

    def metrics_text(self) -> str:
        if self.service is None:
            return ""
        return self.service.metrics_text()

    def close(self) -> None:
        if self.service is not None and self.service.journal is not None:
            self.service.journal.close()


class ShardHandle:
    """The router's view of one shard: call path + health + breaker."""

    def __init__(
        self,
        index: int,
        backend,
        breaker: Optional[CircuitBreaker] = None,
        clock: Optional[Callable[[], float]] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.index = index
        self.backend = backend
        if breaker is None:
            breaker = CircuitBreaker(clock=clock or time.monotonic)
        self.breaker = breaker
        self.up = True
        #: router partition: shard is unreachable but its memory is intact
        self.partitioned = False
        #: ShardSlowdown: fraction of calls that time out (0.0 = healthy)
        self.timeout_rate = 0.0
        self.crashes = 0
        self.recoveries = 0
        self._rng = rng or random.Random(0xC0FFEE + index)
        self._stamp_shard_index()

    def _stamp_shard_index(self) -> None:
        """Tell an in-process service which shard it is (decision meta)."""

        service = getattr(self.backend, "service", None)
        if service is not None:
            service.shard_index = self.index

    # ------------------------------------------------------------------ calls
    def call(self, name: str, *args, **kwargs):
        """Invoke an operation, folding in health state and the breaker.

        Raises :class:`ShardUnavailableError` when the shard cannot
        serve; domain errors (e.g. ``RuntimeError`` from binding an
        unknown tenant) propagate unchanged and do not trip the breaker.
        """

        if not self.breaker.allow():
            raise ShardUnavailableError(
                f"shard {self.index} circuit breaker is open"
            )
        if not self.up:
            self.breaker.record_failure()
            raise ShardUnavailableError(f"shard {self.index} is down")
        if self.partitioned:
            self.breaker.record_failure()
            raise ShardUnavailableError(f"shard {self.index} is partitioned")
        if self.timeout_rate > 0.0 and self._rng.random() < self.timeout_rate:
            self.breaker.record_failure()
            raise ShardUnavailableError(f"shard {self.index} timed out")
        try:
            result = self.backend.invoke(name, *args, **kwargs)
        except ShardUnavailableError:
            self.breaker.record_failure()
            raise
        self.breaker.record_success()
        return result

    def healthy(self) -> bool:
        """True when a call would not fail for availability reasons."""

        return (
            self.up
            and not self.partitioned
            and self.breaker.state != "open"
        )

    # ------------------------------------------------------------------ faults
    def crash(self) -> None:
        """Kill the shard: memory lost, journal intact, calls fail."""

        self.up = False
        self.crashes += 1
        self.backend.crash()

    def recover(self) -> None:
        """Replay the shard from its journal and mark it serving again."""

        self.backend.recover()
        self._stamp_shard_index()
        self.up = True
        self.partitioned = False
        self.timeout_rate = 0.0
        self.recoveries += 1
        self.breaker.record_success()

    # ------------------------------------------------------------------ status
    def describe(self) -> dict:
        return {
            "shard": self.index,
            "up": self.up,
            "partitioned": self.partitioned,
            "timeout_rate": self.timeout_rate,
            "healthy": self.healthy(),
            "crashes": self.crashes,
            "recoveries": self.recoveries,
            "breaker": self.breaker.snapshot(),
        }
