"""The consistent-hash router: N policy shards behind one service facade.

:class:`ShardedPolicyService` implements the whole controller-visible
surface of :class:`~repro.policy.service.PolicyService` — the transfer
tool, cleanup tool, REST controllers, DES experiments, and the
in-process client all work against it unchanged.  Internally it:

* partitions transfer batches across shards by (source, destination)
  host pair, and cleanups by destination URL / dataset namespace
  (:mod:`~repro.policy.sharding.hashring`);
* keeps an **ownership directory**: once a file (lfn, dst_url) has been
  evaluated on a shard, every later request for that file — whatever
  its source pair — forwards to that home shard, so refcounts and
  dedup state for one file live in exactly one working memory;
* allocates transfer/cleanup ids globally (shards receive them
  pre-assigned) and renumbers group ids canonically in tid order, so
  the merged advice is **byte-identical** to an unsharded service;
* mirrors the single service's throttled lease sweep at router level
  (shard-local sweeps are disabled) so lease reaping happens at the
  same simulated instants;
* wraps every shard call in the shard's circuit breaker; a dead,
  partitioned, or breaker-open shard degrades *only its own keyspace*:
  transfers get policy-free "transfer" advice (mirroring the transfer
  tool's own degraded mode), cleanups get conservative "skip" advice,
  queries answer ``"unknown"``, and admin traffic plus completion
  reports for that shard are buffered and redelivered — in order —
  after :meth:`ShardedPolicyService.recover_shard` replays its journal.

See ``docs/sharding.md`` for the ownership protocol and the failure
matrix (including the per-shard budget caveats for workflow quotas and
tenant aggregate caps).
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from pathlib import Path
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from repro.net.gridftp import parse_url
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import as_tracer

from repro.policy.client import CircuitBreaker
from repro.policy.model import CleanupAdvice, PolicyConfig, TransferAdvice
from repro.policy.provenance import (
    DecisionLog,
    degraded_cleanup_record,
    degraded_record,
    rewrite_group_id,
)
from repro.policy.sharding.hashring import HashRing, pair_key, url_key
from repro.policy.sharding.shard import (
    InProcessShardBackend,
    ShardHandle,
    ShardUnavailableError,
)

__all__ = ["ShardedPolicyService"]

#: same action ordering as PolicyService._order_advice
_ADVICE_RANK = {"transfer": 0, "wait": 1, "skip": 2, "deny": 3}


class _FleetMemoryView:
    """Aggregate read-only view over shard working memories.

    Supports the probes the rest of the codebase uses on
    ``service.memory`` (``len``, ``snapshot``, ``facts_of``); down
    shards contribute nothing.
    """

    def __init__(self, router: "ShardedPolicyService") -> None:
        self._router = router

    def __len__(self) -> int:
        total = 0
        for handle in self._router.shards:
            if not handle.healthy():
                continue
            try:
                total += handle.call("memory_len")
            except ShardUnavailableError:
                pass
        return total

    def snapshot(self) -> dict:
        census: dict[str, int] = {}
        for handle in self._router.shards:
            if not handle.healthy():
                continue
            try:
                part = handle.call("memory_census")
            except ShardUnavailableError:
                continue
            for kind, count in part.items():
                census[kind] = census.get(kind, 0) + count
        return dict(sorted(census.items()))

    def facts_of(self, fact_type):
        """In-process backends only (DES/chaos introspection)."""

        facts = []
        for handle in self._router.shards:
            service = getattr(handle.backend, "service", None)
            if service is not None and handle.up:
                facts.extend(service.memory.facts_of(fact_type))
        return facts

    def __iter__(self):
        for handle in self._router.shards:
            service = getattr(handle.backend, "service", None)
            if service is not None and handle.up:
                yield from iter(service.memory)


class ShardedPolicyService:
    """N independent `PolicyService` shards behind one routing facade.

    Parameters
    ----------
    config:
        The (single) policy configuration; every shard runs it.
    num_shards:
        Fleet size.  ``1`` is valid and byte-identical to an unsharded
        service (useful as the benchmark baseline).
    engine:
        Rule engine for every shard (``indexed`` / ``compiled`` / ``seed``).
    clock:
        Shared clock (the DES passes simulated time); also drives the
        per-shard circuit breakers and lease sweeps.
    journal_root:
        When set, shard *i* journals under ``<journal_root>/shard-i`` and
        :meth:`recover_shard` replays it after a crash.  Without it,
        recovery restarts the shard empty (equivalence tests).
    backends:
        Optional pre-built backend list (e.g.
        :class:`~repro.policy.sharding.procshard.ProcessShardBackend`
        instances); overrides the default in-process construction.
    concurrent:
        Dispatch per-shard sub-batches from worker threads.  Defaults
        off for in-process backends (determinism costs nothing there)
        and should be on for process backends (that is where the
        scaling comes from).
    breaker_threshold / breaker_reset:
        Per-shard circuit breaker tuning (PR 2 semantics).
    """

    def __init__(
        self,
        config: Optional[PolicyConfig] = None,
        num_shards: int = 2,
        engine: str = "indexed",
        clock: Optional[Callable[[], float]] = None,
        journal_root=None,
        backends: Optional[Sequence] = None,
        metrics: Optional[MetricsRegistry] = None,
        tracer=None,
        profiler=None,
        concurrent: Optional[bool] = None,
        breaker_threshold: int = 3,
        breaker_reset: float = 60.0,
        snapshot_interval: int = 1000,
        fsync: bool = False,
        extra_rules=(),
    ) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        self.config = config if config is not None else PolicyConfig()
        self.engine = engine
        self.clock = clock or time.monotonic
        self.tracer = as_tracer(tracer)
        self.num_shards = num_shards
        self.ring = HashRing(num_shards)

        self.shards: List[ShardHandle] = []
        if backends is not None:
            backends = list(backends)
            if len(backends) != num_shards:
                raise ValueError("backends length must equal num_shards")
        for index in range(num_shards):
            if backends is not None:
                backend = backends[index]
            else:
                journal_dir = (
                    Path(journal_root) / f"shard-{index}"
                    if journal_root is not None
                    else None
                )
                backend = InProcessShardBackend(
                    self.config,
                    engine=engine,
                    clock=clock,
                    journal_dir=journal_dir,
                    snapshot_interval=snapshot_interval,
                    fsync=fsync,
                    extra_rules=extra_rules,
                    tracer=tracer,
                    profiler=profiler,
                )
            breaker = CircuitBreaker(
                failure_threshold=breaker_threshold,
                reset_timeout=breaker_reset,
                clock=self.clock,
            )
            self.shards.append(ShardHandle(index, backend, breaker=breaker))
        if concurrent is None:
            concurrent = backends is not None
        self._concurrent = bool(concurrent) and num_shards > 1

        # ---------------- global allocation + canonical numbering ----------
        self._tid_last = 0
        self._cid_last = 0
        self._group_counter = 0
        #: canonical (src_host, dst_host) -> group id, mirroring HostPairFact
        self._pair_groups: dict[Tuple[str, str], int] = {}

        # ---------------- ownership directory ------------------------------
        #: (lfn, dst_url) -> home shard index
        self._owner: dict[Tuple[str, str], int] = {}
        #: dst_url -> home shard index (cleanup routing; first writer wins)
        self._url_owner: dict[str, int] = {}

        # ---------------- id -> shard maps (bounded) ------------------------
        retention = max(int(self.config.completed_tid_retention), 1000)
        self._tid_shard: OrderedDict[int, int] = OrderedDict()
        self._cid_shard: OrderedDict[int, int] = OrderedDict()
        self._cid_key: dict[int, Tuple[str, str]] = {}
        self._id_retention = retention * 2
        #: tid -> canonical group id stamped on the merged advice, so
        #: ``explain`` can rewrite shard-local group ids (bounded)
        self._tid_group: OrderedDict[int, int] = OrderedDict()
        #: cid -> home shard for *every* routed cleanup (``_cid_shard``
        #: only tracks deletes, which is all completion routing needs)
        self._cid_home: OrderedDict[int, int] = OrderedDict()

        # ---------------- degraded mode ------------------------------------
        #: tid -> (workflow, lfn, dst_url, home shard) for policy-free grants
        self._degraded_tids: OrderedDict[int, Tuple[str, str, str, int]] = OrderedDict()
        #: per-shard FIFO of (method, args, kwargs) to replay at recovery
        self._pending_ops: dict[int, list] = {i: [] for i in range(num_shards)}
        self.recovery_errors: list[str] = []
        #: router-minted synthetic records for degraded advice — the home
        #: shard never saw those ids, so the router is their only witness
        self._decisions: Optional[DecisionLog] = (
            DecisionLog(self.config.decision_log_cap)
            if self.config.decision_log
            else None
        )

        # ---------------- router-mirrored lease sweep -----------------------
        self._next_sweep = float("-inf")

        self._lock = threading.Lock()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._init_metrics()

    # ------------------------------------------------------------------ metrics
    def _init_metrics(self) -> None:
        m = self.metrics
        self._m_requests = m.counter(
            "repro_policy_router_requests_total",
            "Requests handled by the shard router",
            labelnames=("call",),
        )
        self._m_dispatch = m.counter(
            "repro_policy_router_shard_dispatch_total",
            "Sub-batches dispatched per shard",
            labelnames=("shard",),
        )
        self._m_degraded = m.counter(
            "repro_policy_router_degraded_total",
            "Requests served degraded because a shard was unavailable",
            labelnames=("kind",),
        )
        self._m_breaker_state = m.gauge(
            "repro_policy_client_breaker_state",
            "Per-shard circuit breaker state (0=closed,1=half_open,2=open)",
            labelnames=("shard",),
        )
        self._m_breaker_transitions = m.counter(
            "repro_policy_client_breaker_transitions_total",
            "Per-shard circuit breaker state transitions",
            labelnames=("shard", "transition"),
        )
        self._m_shard_up = m.gauge(
            "repro_policy_shard_up",
            "1 when the shard is serving, 0 when down/partitioned/open",
            labelnames=("shard",),
        )
        self._m_pending_ops = m.gauge(
            "repro_policy_router_pending_ops",
            "Operations buffered for a shard awaiting recovery",
            labelnames=("shard",),
        )
        self._m_recoveries = m.counter(
            "repro_policy_router_shard_recoveries_total",
            "Shard journal replays completed by the router",
            labelnames=("shard",),
        )
        self._breaker_exported: dict[Tuple[str, str], int] = {}

    def _refresh_health_metrics(self) -> None:
        for handle in self.shards:
            shard = str(handle.index)
            self._m_breaker_state.set(handle.breaker.state_code(), shard=shard)
            self._m_shard_up.set(1.0 if handle.healthy() else 0.0, shard=shard)
            self._m_pending_ops.set(
                float(len(self._pending_ops[handle.index])), shard=shard
            )
            for edge, count in handle.breaker.snapshot()["transitions"].items():
                key = (shard, edge)
                seen = self._breaker_exported.get(key, 0)
                if count > seen:
                    self._m_breaker_transitions.inc(
                        count - seen, shard=shard, transition=edge
                    )
                    self._breaker_exported[key] = count

    # ------------------------------------------------------------------ ids
    def _next_tid(self) -> int:
        self._tid_last += 1
        return self._tid_last

    def _next_cid(self) -> int:
        self._cid_last += 1
        return self._cid_last

    def _remember(self, table: OrderedDict, key, value) -> None:
        table[key] = value
        while len(table) > self._id_retention:
            table.popitem(last=False)

    def counters(self) -> dict:
        return {
            "tid": self._tid_last,
            "cid": self._cid_last,
            "group": self._group_counter,
        }

    # ------------------------------------------------------------------ sweep
    def _maybe_reap(self) -> None:
        """Router-level mirror of the single service's throttled sweep."""

        if self.config.lease_seconds is None:
            return
        now = self.clock()
        if now < self._next_sweep:
            return
        self._next_sweep = now + self.config.sweep_interval()
        self._broadcast_reap(now)

    def _broadcast_reap(self, now: float) -> dict:
        reaped = {"transfers": [], "cleanups": []}
        for handle in self.shards:
            if not handle.healthy():
                continue
            try:
                part = handle.call("reap_expired", now)
            except ShardUnavailableError:
                continue
            reaped["transfers"].extend(part.get("transfers", ()))
            reaped["cleanups"].extend(part.get("cleanups", ()))
        reaped["transfers"].sort()
        reaped["cleanups"].sort()
        return reaped

    def reap_expired(self, now: Optional[float] = None) -> dict:
        if now is None:
            now = self.clock()
        return self._broadcast_reap(float(now))

    # ------------------------------------------------------------------ dispatch
    def _dispatch(self, calls: list) -> list:
        """Run ``[(handle, name, args, kwargs), ...]``; return results.

        A :class:`ShardUnavailableError` becomes ``None`` in the result
        slot (the caller degrades that sub-batch); other exceptions
        propagate.  With ``concurrent`` enabled, calls run from one
        thread per shard — results keep submission order either way.
        """

        results: list = [None] * len(calls)
        errors: list = [None] * len(calls)

        def run(slot: int) -> None:
            handle, name, args, kwargs = calls[slot]
            try:
                results[slot] = handle.call(name, *args, **kwargs)
            except ShardUnavailableError:
                results[slot] = None
            except Exception as exc:  # noqa: BLE001 - re-raised below
                errors[slot] = exc

        if self._concurrent and len(calls) > 1:
            threads = [
                threading.Thread(target=run, args=(slot,), daemon=True)
                for slot in range(len(calls))
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        else:
            for slot in range(len(calls)):
                run(slot)
        for exc in errors:
            if exc is not None:
                raise exc
        return results

    def _queue_pending(self, shard: int, name: str, *args, **kwargs) -> None:
        self._pending_ops[shard].append((name, args, kwargs))

    # ------------------------------------------------------------------ transfers
    def submit_transfers(
        self, workflow: str, job: str, transfers: Iterable[dict]
    ) -> list[TransferAdvice]:
        """Route a batch across shards; merge byte-identical advice."""

        specs = list(transfers)
        self._maybe_reap()
        self._m_requests.inc(call="submit_transfers")
        span = self._begin_span(
            "router.submit_transfers", workflow=workflow, job=job,
            batch=len(specs),
        )
        if self.config.order_by == "priority":
            # The single service pre-sorts the batch before assigning
            # tids; the router owns that sort now (shards are told to
            # keep external order).
            specs.sort(key=lambda s: -int(s.get("priority", 0)))

        # Route each spec: ownership directory first, else the pair ring.
        # ``batch_local`` pins every later occurrence of a file in this
        # batch to the first occurrence's shard so in-batch dedup fires
        # exactly like the single service.
        assigned = []  # (tid, spec, shard_idx, key)
        batch_local: dict[Tuple[str, str], int] = {}
        for spec in specs:
            tid = self._next_tid()
            key = (spec["lfn"], spec["dst_url"])
            shard_idx = self._owner.get(key)
            if shard_idx is None:
                shard_idx = batch_local.get(key)
            if shard_idx is None:
                src_host, _ = parse_url(spec["src_url"])
                dst_host, _ = parse_url(spec["dst_url"])
                shard_idx = self.ring.node_for(pair_key(src_host, dst_host))
            batch_local[key] = shard_idx
            assigned.append((tid, spec, shard_idx, key))

        per_shard: dict[int, list] = {}
        for tid, spec, shard_idx, key in assigned:
            per_shard.setdefault(shard_idx, []).append((tid, spec, key))

        order = sorted(per_shard)
        calls = []
        for shard_idx in order:
            entries = per_shard[shard_idx]
            calls.append((
                self.shards[shard_idx],
                "submit_transfers",
                (workflow, job, [spec for _, spec, _ in entries]),
                {"tids": [tid for tid, _, _ in entries]},
            ))
            self._m_dispatch.inc(shard=str(shard_idx))
        results = self._dispatch(calls)

        merged: dict[int, TransferAdvice] = {}
        degraded: set[int] = set()
        for shard_idx, result in zip(order, results):
            entries = per_shard[shard_idx]
            if result is None:
                # Shard unavailable: policy-free advice for just this
                # sub-batch, mirroring the transfer tool's degraded mode.
                self._m_degraded.inc(len(entries), kind="transfers")
                for tid, spec, key in entries:
                    merged[tid] = self._degraded_advice(workflow, tid, spec, shard_idx)
                    degraded.add(tid)
                continue
            for item in result:
                merged[item.tid] = item
            for tid, spec, key in entries:
                self._remember(self._tid_shard, tid, shard_idx)
                self._owner[key] = shard_idx
                self._url_owner.setdefault(spec["dst_url"], shard_idx)

        # Canonical group numbering: walk in tid (= submission) order and
        # mint/reuse pair group ids exactly where the single service's
        # GROUP_CREATE rule would (first executable transfer of a pair).
        for tid, spec, shard_idx, key in assigned:
            item = merged.get(tid)
            if item is None or item.action != "transfer" or tid in degraded:
                continue
            src_host, _ = parse_url(item.src_url)
            dst_host, _ = parse_url(item.dst_url)
            pair = (src_host, dst_host)
            group = self._pair_groups.get(pair)
            if group is None:
                self._group_counter += 1
                group = self._group_counter
                self._pair_groups[pair] = group
            item.group_id = group
            self._remember(self._tid_group, tid, group)

        advice = self._order_advice(list(merged.values()))
        if span is not None:
            actions: dict[str, int] = {}
            for item in advice:
                actions[item.action] = actions.get(item.action, 0) + 1
            self.tracer.end(
                span, shards=len(order), degraded=len(degraded),
                advice=dict(sorted(actions.items())),
            )
        return advice

    def _degraded_advice(
        self, workflow: str, tid: int, spec: dict, shard_idx: int
    ) -> TransferAdvice:
        streams = spec.get("streams") or self.config.default_streams or 1
        self._remember(
            self._degraded_tids,
            tid,
            (workflow, spec["lfn"], spec["dst_url"], shard_idx),
        )
        if self._decisions is not None:
            self._decisions.add(degraded_record(
                tid, workflow, spec["lfn"], spec["dst_url"], shard=shard_idx,
                reason=f"shard {shard_idx} unavailable; policy-free advice",
            ))
        return TransferAdvice(
            tid=tid,
            lfn=spec["lfn"],
            src_url=spec["src_url"],
            dst_url=spec["dst_url"],
            nbytes=float(spec.get("nbytes", 0.0)),
            action="transfer",
            streams=int(streams),
            group_id=0,
            priority=int(spec.get("priority", 0)),
            reason=f"shard {shard_idx} unavailable; policy-free advice",
        )

    def _order_advice(self, advice: list[TransferAdvice]) -> list[TransferAdvice]:
        def key(a: TransferAdvice):
            if self.config.order_by == "priority":
                return (_ADVICE_RANK[a.action], -a.priority, a.src_url, a.dst_url, a.tid)
            return (_ADVICE_RANK[a.action], a.src_url, a.dst_url, a.tid)

        return sorted(advice, key=key)

    def complete_transfers(
        self, done: Iterable[int] = (), failed: Iterable[int] = ()
    ) -> dict:
        self._maybe_reap()
        self._m_requests.inc(call="complete_transfers")
        done, failed = list(done), list(failed)
        per_shard: dict[int, Tuple[list, list]] = {}
        acknowledged = 0
        for tid in done:
            entry = self._degraded_tids.pop(tid, None)
            if entry is not None:
                # The home shard never saw this grant; once it is back,
                # reconcile the staged file so dedup/refcounts catch up.
                wf, lfn, dst_url, shard_idx = entry
                self._queue_pending(
                    shard_idx, "reconcile_staged", wf, [(lfn, dst_url)]
                )
                acknowledged += 1
                continue
            shard_idx = self._tid_shard.get(tid)
            if shard_idx is None:
                continue
            per_shard.setdefault(shard_idx, ([], []))[0].append(tid)
        for tid in failed:
            if self._degraded_tids.pop(tid, None) is not None:
                acknowledged += 1
                continue
            shard_idx = self._tid_shard.get(tid)
            if shard_idx is None:
                continue
            per_shard.setdefault(shard_idx, ([], []))[1].append(tid)

        order = sorted(per_shard)
        calls = [
            (
                self.shards[shard_idx],
                "complete_transfers",
                (),
                {"done": per_shard[shard_idx][0], "failed": per_shard[shard_idx][1]},
            )
            for shard_idx in order
        ]
        results = self._dispatch(calls)
        evicted: list[dict] = []
        catalog_answered = False
        for shard_idx, result in zip(order, results):
            if result is None:
                # Buffer the report; redelivered after journal replay so
                # the recovered shard frees the same streams/resources.
                self._queue_pending(
                    shard_idx,
                    "complete_transfers",
                    done=per_shard[shard_idx][0],
                    failed=per_shard[shard_idx][1],
                )
                self._m_degraded.inc(kind="completions")
                continue
            acknowledged += result.get("acknowledged", 0)
            if "evicted" in result:
                catalog_answered = True
                evicted.extend(result["evicted"])
        response = {"acknowledged": acknowledged}
        if catalog_answered:
            # Merge per-shard eviction victims in a shard-count-independent
            # order (per-shard interleavings are not comparable across
            # fleet sizes, same as decision_records).
            evicted.sort(key=lambda v: (v["site"], v["lfn"], v["url"]))
            response["evicted"] = evicted
        return response

    # ------------------------------------------------------------------ cleanups
    def submit_cleanups(
        self, workflow: str, job: str, files: Iterable[tuple[str, str]]
    ) -> list[CleanupAdvice]:
        files = [(lfn, url) for lfn, url in files]
        self._maybe_reap()
        self._m_requests.inc(call="submit_cleanups")
        # URLs being written by an in-flight degraded transfer: no shard
        # holds a fact proving deletion unsafe, so protect them here.
        degraded_urls = {
            dst_url for (_wf, _lfn, dst_url, _home)
            in self._degraded_tids.values()
        }
        protected: dict[int, CleanupAdvice] = {}
        assigned = []  # (cid, lfn, url, shard_idx)
        batch_local: dict[str, int] = {}
        for lfn, url in files:
            cid = self._next_cid()
            if url in degraded_urls:
                self._m_degraded.inc(kind="cleanups")
                reason = (
                    "degraded transfer in flight to this url; "
                    "cleanup deferred"
                )
                protected[cid] = CleanupAdvice(
                    cid=cid, lfn=lfn, url=url, action="skip", reason=reason,
                )
                if self._decisions is not None:
                    self._decisions.add(degraded_cleanup_record(
                        cid, workflow, lfn, url, reason=reason,
                    ))
                assigned.append((cid, lfn, url, None))
                continue
            shard_idx = self._owner.get((lfn, url))
            if shard_idx is None:
                shard_idx = self._url_owner.get(url)
            if shard_idx is None:
                shard_idx = batch_local.get(url)
            if shard_idx is None:
                shard_idx = self.ring.node_for(url_key(url))
            batch_local[url] = shard_idx
            assigned.append((cid, lfn, url, shard_idx))

        per_shard: dict[int, list] = {}
        for entry in assigned:
            if entry[3] is not None:
                per_shard.setdefault(entry[3], []).append(entry)
        order = sorted(per_shard)
        calls = []
        for shard_idx in order:
            entries = per_shard[shard_idx]
            calls.append((
                self.shards[shard_idx],
                "submit_cleanups",
                (workflow, job, [(lfn, url) for _, lfn, url, _ in entries]),
                {"cids": [cid for cid, _, _, _ in entries]},
            ))
            self._m_dispatch.inc(shard=str(shard_idx))
        results = self._dispatch(calls)

        merged: dict[int, CleanupAdvice] = dict(protected)
        for shard_idx, result in zip(order, results):
            entries = per_shard[shard_idx]
            if result is None:
                # A dead shard holds the refcounts that prove deletion is
                # safe — the only safe degraded answer is "keep the file".
                self._m_degraded.inc(len(entries), kind="cleanups")
                for cid, lfn, url, _ in entries:
                    reason = f"shard {shard_idx} unavailable; cleanup deferred"
                    merged[cid] = CleanupAdvice(
                        cid=cid, lfn=lfn, url=url, action="skip", reason=reason,
                    )
                    if self._decisions is not None:
                        self._decisions.add(degraded_cleanup_record(
                            cid, workflow, lfn, url, shard=shard_idx,
                            reason=reason,
                        ))
                continue
            for item in result:
                merged[item.cid] = item
                self._remember(self._cid_home, item.cid, shard_idx)
                if item.action == "delete":
                    self._remember(self._cid_shard, item.cid, shard_idx)
                    self._cid_key[item.cid] = (item.lfn, item.url)

        # The single service answers in request order; cids are assigned
        # in request order, so sorting by cid restores it.
        return [merged[cid] for cid, _, _, _ in assigned]

    def complete_cleanups(self, ids: Iterable[int]) -> dict:
        self._maybe_reap()
        self._m_requests.inc(call="complete_cleanups")
        per_shard: dict[int, list] = {}
        for cid in set(ids):
            shard_idx = self._cid_shard.get(cid)
            if shard_idx is None:
                continue
            per_shard.setdefault(shard_idx, []).append(cid)
        order = sorted(per_shard)
        calls = [
            (self.shards[shard_idx], "complete_cleanups", (sorted(per_shard[shard_idx]),), {})
            for shard_idx in order
        ]
        results = self._dispatch(calls)
        acknowledged = 0
        cleaned_urls: set[str] = set()
        for shard_idx, result in zip(order, results):
            if result is None:
                self._queue_pending(
                    shard_idx, "complete_cleanups", sorted(per_shard[shard_idx])
                )
                self._m_degraded.inc(kind="completions")
                continue
            acknowledged += result.get("acknowledged", 0)
            for cid in per_shard[shard_idx]:
                key = self._cid_key.pop(cid, None)
                if key is not None:
                    cleaned_urls.add(key[1])
        if cleaned_urls:
            # complete_cleanups retracts every staged fact at the URL, so
            # the directory forgets the whole URL too.
            self._owner = {
                key: value
                for key, value in self._owner.items()
                if key[1] not in cleaned_urls
            }
            for url in cleaned_urls:
                self._url_owner.pop(url, None)
        return {"acknowledged": acknowledged}

    # ------------------------------------------------------------------ queries
    def staging_state(self, lfn: str, dst_url: str) -> str:
        self._maybe_reap()
        self._m_requests.inc(call="staging_state")
        shard_idx = self._owner.get((lfn, dst_url))
        if shard_idx is not None:
            try:
                return self.shards[shard_idx].call("staging_state", lfn, dst_url)
            except ShardUnavailableError:
                self._m_degraded.inc(kind="queries")
                return "unknown"
        for handle in self.shards:
            if not handle.healthy():
                continue
            try:
                state = handle.call("staging_state", lfn, dst_url)
            except ShardUnavailableError:
                continue
            if state != "unknown":
                return state
        return "unknown"

    def transfer_state(self, tid: int) -> str:
        self._maybe_reap()
        self._m_requests.inc(call="transfer_state")
        shard_idx = self._tid_shard.get(tid)
        if shard_idx is None:
            if tid in self._degraded_tids:
                return "in_progress"
            return "unknown"
        try:
            return self.shards[shard_idx].call("transfer_state", tid)
        except ShardUnavailableError:
            self._m_degraded.inc(kind="queries")
            return "unknown"

    def explain(self, tid: int) -> Optional[dict]:
        """The decision record for transfer ``tid``, shard-independent.

        Shard-evaluated transfers are fetched from their home shard with
        the shard-local group id rewritten to the router's canonical
        numbering (and the digest recomputed), so the answer is
        byte-identical to an unsharded service's.  Degraded grants answer
        with the router's synthetic policy-free record.  ``None`` when
        the tid is unknown, the shard is unavailable, or the decision
        log is disabled.
        """

        self._maybe_reap()
        self._m_requests.inc(call="explain")
        tid = int(tid)
        if self._decisions is not None:
            synthetic = self._decisions.transfer(tid)
            if synthetic is not None:
                return dict(synthetic)
        shard_idx = self._tid_shard.get(tid)
        if shard_idx is None:
            return None
        try:
            record = self.shards[shard_idx].call("explain", tid)
        except ShardUnavailableError:
            self._m_degraded.inc(kind="queries")
            return None
        if record is None:
            return None
        return self._canonical_record(record)

    def explain_cleanup(self, cid: int) -> Optional[dict]:
        """The decision record for cleanup ``cid`` (see :meth:`explain`)."""

        self._maybe_reap()
        self._m_requests.inc(call="explain_cleanup")
        cid = int(cid)
        if self._decisions is not None:
            synthetic = self._decisions.cleanup(cid)
            if synthetic is not None:
                return dict(synthetic)
        shard_idx = self._cid_home.get(cid)
        if shard_idx is None:
            return None
        try:
            record = self.shards[shard_idx].call("explain_cleanup", cid)
        except ShardUnavailableError:
            self._m_degraded.inc(kind="queries")
            return None
        if record is None:
            return None
        return self._canonical_record(record)

    def decision_records(self) -> list[dict]:
        """Fleet decision log: every live shard's records plus synthetics.

        Returned in a deterministic, shard-count-independent order —
        transfers by tid, then cleanups by cid (per-shard interleavings
        are not comparable across fleet sizes).  Down shards contribute
        nothing until they recover and replay their journals.
        """

        self._m_requests.inc(call="decision_records")
        records: list[dict] = []
        for handle in self.shards:
            if not handle.healthy():
                continue
            try:
                part = handle.call("decision_records")
            except ShardUnavailableError:
                continue
            records.extend(self._canonical_record(r) for r in part)
        if self._decisions is not None:
            records.extend(dict(r) for r in self._decisions.records())
        transfers = [r for r in records if r.get("kind") == "transfer"]
        cleanups = [r for r in records if r.get("kind") != "transfer"]
        transfers.sort(key=lambda r: r["tid"])
        cleanups.sort(key=lambda r: r["cid"])
        return transfers + cleanups

    def _canonical_record(self, record: dict) -> dict:
        """Rewrite a shard record's group id to the canonical numbering."""

        record = dict(record)
        if record.get("kind") == "transfer":
            group = self._tid_group.get(record.get("tid"))
            if group is not None:
                return rewrite_group_id(record, group)
        return record

    def reconcile_staged(
        self, workflow: str, files: Iterable[tuple]
    ) -> dict:
        self._m_requests.inc(call="reconcile_staged")
        per_shard: dict[int, list] = {}
        for lfn, url, *rest in files:
            # (lfn, url) or (lfn, url, nbytes): byte counts ride along to
            # the owning shard so its staged-data catalog can size the
            # adopted replica.  Ownership is keyed on (lfn, url) only.
            entry = (lfn, url, *rest)
            shard_idx = self._owner.get((lfn, url))
            if shard_idx is None:
                src = self._url_owner.get(url)
                shard_idx = src if src is not None else self.ring.node_for(url_key(url))
            per_shard.setdefault(shard_idx, []).append(entry)
        registered = joined = 0
        for shard_idx, entries in sorted(per_shard.items()):
            try:
                result = self.shards[shard_idx].call(
                    "reconcile_staged", workflow, entries
                )
            except ShardUnavailableError:
                self._queue_pending(shard_idx, "reconcile_staged", workflow, entries)
                self._m_degraded.inc(kind="reconciles")
                continue
            registered += result.get("registered", 0)
            joined += result.get("joined", 0)
            for entry in entries:
                self._owner[(entry[0], entry[1])] = shard_idx
                self._url_owner.setdefault(entry[1], shard_idx)
        return {"registered": registered, "joined": joined}

    # ------------------------------------------------------------------ admin
    def _broadcast(self, name: str, *args, **kwargs):
        """Apply an admin mutation on every shard; buffer for dead ones.

        Returns the first live shard's result.  Domain errors (not
        availability) propagate from the first shard that raises them.
        """

        self._m_requests.inc(call=name)
        result = None
        got_result = False
        for handle in self.shards:
            try:
                value = handle.call(name, *args, **kwargs)
            except ShardUnavailableError:
                self._queue_pending(handle.index, name, *args, **kwargs)
                continue
            if not got_result:
                result = value
                got_result = True
        return result

    def deny_host(self, host: str, direction: str = "any", reason: str = "") -> None:
        self._broadcast("deny_host", host, direction, reason)

    def allow_host(self, host: str) -> int:
        return self._broadcast("allow_host", host) or 0

    def set_quota(self, workflow: str, max_bytes: float) -> None:
        self._broadcast("set_quota", workflow, max_bytes)

    def register_tenant(self, tenant: str, **kwargs) -> None:
        self._broadcast("register_tenant", tenant, **kwargs)

    def unregister_tenant(self, tenant: str) -> int:
        return self._broadcast("unregister_tenant", tenant) or 0

    def bind_workflow(self, workflow: str, tenant: str) -> None:
        self._broadcast("bind_workflow", workflow, tenant)

    def register_priorities(self, workflow: str, priorities: dict) -> int:
        return self._broadcast("register_priorities", workflow, priorities) or 0

    def tenants(self) -> list[dict]:
        """Fleet tenant census: registration from any shard, ledgers summed."""

        merged: dict[str, dict] = {}
        for handle in self.shards:
            if not handle.healthy():
                continue
            try:
                census = handle.call("tenants")
            except ShardUnavailableError:
                continue
            for row in census:
                entry = merged.get(row["tenant"])
                if entry is None:
                    merged[row["tenant"]] = dict(row)
                else:
                    entry["inflight_streams"] += row["inflight_streams"]
                    entry["bytes_staged"] += row["bytes_staged"]
                    entry["workflows"] = sorted(
                        set(entry["workflows"]) | set(row["workflows"])
                    )
        return [merged[tenant] for tenant in sorted(merged)]

    # ------------------------------------------------------------ data catalog
    def catalog_census(self) -> dict:
        """Fleet staged-data catalog census from every live shard.

        Replicas merge and re-sort by (lfn, site, url) so the census is
        shard-count-independent; site rows sum ``used_bytes`` across
        shards.  Each shard enforces its byte budget only over the
        replicas it owns (the same per-shard partitioning as tenant
        ledgers), so fleet-wide budgets are approximate: a site's summed
        usage can exceed one shard's capacity without any shard evicting.
        Down shards contribute nothing until they replay their journals.
        """

        self._m_requests.inc(call="catalog_census")
        replicas: list[dict] = []
        sites: dict[str, dict] = {}
        for handle in self.shards:
            if not handle.healthy():
                continue
            try:
                census = handle.call("catalog_census")
            except ShardUnavailableError:
                continue
            replicas.extend(census.get("replicas", []))
            for row in census.get("sites", []):
                entry = sites.get(row["site"])
                if entry is None:
                    sites[row["site"]] = dict(row)
                else:
                    entry["used_bytes"] += row["used_bytes"]
        replicas.sort(key=lambda r: (r["lfn"], r["site"], r["url"]))
        return {"replicas": replicas, "sites": [sites[s] for s in sorted(sites)]}

    def catalog_replicas(self, lfn: str) -> list[dict]:
        """Known replicas of ``lfn`` across live shards, by (site, url)."""

        self._m_requests.inc(call="catalog_replicas")
        replicas: list[dict] = []
        for handle in self.shards:
            if not handle.healthy():
                continue
            try:
                replicas.extend(handle.call("catalog_replicas", lfn))
            except ShardUnavailableError:
                continue
        replicas.sort(key=lambda r: (r["site"], r["url"]))
        return replicas

    def set_site_capacity(self, site: str, capacity_bytes) -> dict:
        """Set one site's byte budget on every shard (buffered for dead
        ones); the returned ``used_bytes`` sums live shards."""

        self._m_requests.inc(call="set_site_capacity")
        used = 0.0
        for handle in self.shards:
            try:
                result = handle.call("set_site_capacity", site, capacity_bytes)
            except ShardUnavailableError:
                self._queue_pending(
                    handle.index, "set_site_capacity", site, capacity_bytes
                )
                continue
            used += result.get("used_bytes", 0.0)
        return {"site": site, "capacity_bytes": capacity_bytes, "used_bytes": used}

    def catalog_pin(self, url: str, pinned: bool = True) -> dict:
        """Pin/unpin the replica at ``url`` on its owning shard.

        The url directory names the home shard when the router saw the
        staging; otherwise every live shard is probed (exactly one holds
        the replica — registration follows transfer ownership).
        """

        self._m_requests.inc(call="catalog_pin")
        preferred = self._url_owner.get(url)
        order = [] if preferred is None else [preferred]
        order += [h.index for h in self.shards if h.index != preferred]
        missing: Optional[KeyError] = None
        for shard_idx in order:
            try:
                return self.shards[shard_idx].call("catalog_pin", url, pinned)
            except ShardUnavailableError:
                self._m_degraded.inc(kind="queries")
                continue
            except KeyError as exc:
                missing = exc
                continue
        if missing is not None:
            raise missing
        raise KeyError(f"no catalog replica at {url!r}")

    def unregister_workflow(self, workflow: str, retain_staged: bool = False) -> None:
        self._broadcast("unregister_workflow", workflow, retain_staged)
        self._prune_directory()

    def _prune_directory(self) -> None:
        """Forget files and pairs no shard holds state for any more.

        Entries homed on an unavailable shard are kept — the shard's
        journal still holds their facts, so they become live again after
        recovery.
        """

        survivors: set = set()
        pairs_alive: set = set()
        unknown_shards: set = set()
        for handle in self.shards:
            if not handle.healthy():
                unknown_shards.add(handle.index)
                continue
            try:
                survivors.update(tuple(key) for key in handle.call("staged_keys"))
                pairs_alive.update(tuple(p) for p in handle.call("host_pairs"))
            except ShardUnavailableError:
                unknown_shards.add(handle.index)
        self._owner = {
            key: shard_idx
            for key, shard_idx in self._owner.items()
            if key in survivors or shard_idx in unknown_shards
        }
        live_urls = {key[1] for key in self._owner}
        self._url_owner = {
            url: shard_idx
            for url, shard_idx in self._url_owner.items()
            if url in live_urls or shard_idx in unknown_shards
        }
        if not unknown_shards:
            # Mirror the single service's host-pair GC: a pruned pair
            # re-mints a fresh group id on next use, exactly like a
            # re-created HostPairFact.
            self._pair_groups = {
                pair: group
                for pair, group in self._pair_groups.items()
                if pair in pairs_alive
            }

    # ------------------------------------------------------------------ faults
    def crash_shard(self, index: int) -> None:
        """Kill shard ``index`` (chaos entry point): memory lost, WAL kept."""

        self.shards[index].crash()
        self._refresh_health_metrics()

    def partition_shard(self, index: int, partitioned: bool = True) -> None:
        """(Un)partition shard ``index``: unreachable, memory intact."""

        self.shards[index].partitioned = bool(partitioned)
        if not partitioned:
            self.shards[index].breaker.record_success()
        self._refresh_health_metrics()

    def slow_shard(self, index: int, timeout_rate: float) -> None:
        """Make a fraction of shard ``index``'s calls time out."""

        self.shards[index].timeout_rate = float(timeout_rate)
        self._refresh_health_metrics()

    def recover_shard(self, index: int) -> dict:
        """Replay shard ``index`` from its journal and redeliver backlog.

        The buffered operations (admin mutations, completion reports,
        degraded-grant reconciles) are replayed in their original
        arrival order, so the recovered shard converges to the state it
        would have reached without the outage.
        """

        handle = self.shards[index]
        handle.recover()
        self._m_recoveries.inc(shard=str(index))
        backlog = self._pending_ops[index]
        self._pending_ops[index] = []
        replayed = 0
        for name, args, kwargs in backlog:
            try:
                handle.call(name, *args, **kwargs)
                replayed += 1
            except Exception as exc:  # noqa: BLE001 - chaos bookkeeping
                self.recovery_errors.append(f"shard {index} {name}: {exc!r}")
        self._refresh_health_metrics()
        if self.tracer.enabled:
            self.tracer.instant(
                "policy", "router.shard_recovered", track="policy-router",
                shard=index, replayed=replayed,
            )
        return {"shard": index, "replayed": replayed, "pending": 0}

    # ------------------------------------------------------------------ status
    @property
    def memory(self) -> _FleetMemoryView:
        return _FleetMemoryView(self)

    @property
    def stats(self) -> dict:
        """Summed per-shard stats under the single-service keys."""

        totals: dict = {}
        for handle in self.shards:
            if not handle.healthy():
                continue
            try:
                part = handle.call("stats")
            except ShardUnavailableError:
                continue
            for key, value in part.items():
                totals[key] = totals.get(key, 0) + value
        return totals

    def config_fingerprint(self) -> dict:
        for handle in self.shards:
            try:
                return handle.call("config_fingerprint")
            except ShardUnavailableError:
                continue
        raise ShardUnavailableError("no shard available for config_fingerprint")

    def shard_health(self) -> list[dict]:
        return [handle.describe() for handle in self.shards]

    def snapshot(self) -> dict:
        self._refresh_health_metrics()
        census = self.memory.snapshot()
        pairs = {
            f"{src}->{dst}": {"group_id": group}
            for (src, dst), group in sorted(self._pair_groups.items())
        }
        return {
            "policy": self.config.policy,
            "default_streams": self.config.default_streams,
            "max_streams": self.config.max_streams,
            "shards": self.num_shards,
            "shard_health": self.shard_health(),
            "memory": census,
            "host_pairs": pairs,
            "tenants": self.tenants(),
            "stats": dict(self.stats),
            "counters": self.counters(),
            "pending_ops": {
                str(index): len(ops)
                for index, ops in self._pending_ops.items()
                if ops
            },
            "metrics": self.metrics.to_dict(),
        }

    # ------------------------------------------------------------------ metrics text
    def metrics_text(self) -> str:
        """Router registry + every shard's registry with a shard label.

        Per-shard families are merged so each family renders once with
        samples from all shards, each sample tagged ``shard="i"``.
        """

        self._refresh_health_metrics()
        families: "OrderedDict[str, dict]" = OrderedDict()

        def absorb(text: str, shard: Optional[int]) -> None:
            current = None
            for line in text.splitlines():
                if line.startswith("# HELP "):
                    name = line.split(" ", 3)[2]
                    current = families.setdefault(
                        name, {"help": line, "type": None, "samples": []}
                    )
                    current["help"] = current["help"] or line
                elif line.startswith("# TYPE "):
                    name = line.split(" ", 3)[2]
                    current = families.setdefault(
                        name, {"help": None, "type": line, "samples": []}
                    )
                    if current["type"] is None:
                        current["type"] = line
                elif line.strip():
                    if current is None:
                        continue
                    current["samples"].append(
                        line if shard is None else _inject_label(line, shard)
                    )

        absorb(self.metrics.render(), None)
        for handle in self.shards:
            if not handle.up:
                continue
            try:
                text = handle.backend.metrics_text()
            except Exception:  # noqa: BLE001 - scraping must not fail
                continue
            absorb(text, handle.index)

        lines: list[str] = []
        for family in families.values():
            if family["help"]:
                lines.append(family["help"])
            if family["type"]:
                lines.append(family["type"])
            lines.extend(family["samples"])
        return "\n".join(lines) + "\n"

    def profile_report(self) -> Optional[str]:
        for handle in self.shards:
            service = getattr(handle.backend, "service", None)
            if service is not None:
                report = service.profile_report()
                if report:
                    return report
        return None

    def _begin_span(self, name: str, **args):
        tracer = self.tracer
        if not tracer.enabled:
            return None
        return tracer.begin("policy", name, track="policy-router", args=args)

    def close(self) -> None:
        for handle in self.shards:
            close = getattr(handle.backend, "close", None)
            if close is not None:
                close()


def _inject_label(sample_line: str, shard: int) -> str:
    """Tag a rendered Prometheus sample line with ``shard="i"``."""

    label = f'shard="{shard}"'
    if "{" in sample_line:
        name, rest = sample_line.split("{", 1)
        return f"{name}{{{label},{rest}"
    name, _, value = sample_line.partition(" ")
    return f"{name}{{{label}}} {value}"
