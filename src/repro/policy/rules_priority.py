"""Structure-based priority rules (paper §III.c, future work — implemented).

Workflows register per-job priorities computed from the DAG structure
(:mod:`repro.workflow.priorities`).  The rules stamp those priorities onto
incoming transfers; the service then orders advice by priority when
``PolicyConfig.order_by == "priority"``, so higher-priority staging (e.g.
data feeding root jobs or high-fan-out jobs) is performed first.
"""

from __future__ import annotations

from repro.rules import Fact, Pattern, Rule

from repro.policy import salience
from repro.policy.model import TransferFact

__all__ = ["JobPriorityFact", "priority_rules"]


class JobPriorityFact(Fact):
    """A registered priority for one job of one workflow."""

    def __init__(self, workflow: str, job: str, priority: int):
        self.workflow = workflow
        self.job = job
        self.priority = int(priority)


def _stamp_priority(ctx):
    ctx.update(ctx.t, priority=ctx.p.priority)


def priority_rules() -> list[Rule]:
    """Rules stamping registered structure-based priorities onto transfers."""
    return [
        Rule(
            "Assign the registered structure-based priority to a transfer",
            salience=salience.PRIORITY_STAMP,
            when=[
                Pattern(
                    TransferFact,
                    "t",
                    where=lambda t, b: t.status == "new" and t.priority == 0,
                    keys={"status": lambda b: "new"},
                ),
                Pattern(
                    JobPriorityFact,
                    "p",
                    where=lambda p, b: p.workflow == b["t"].workflow
                    and p.job == b["t"].job
                    and p.priority != 0,
                    keys={
                        "workflow": lambda b: b["t"].workflow,
                        "job": lambda b: b["t"].job,
                    },
                ),
            ],
            then=_stamp_priority,
        ),
    ]
