"""Table II — greedy stream-allocation rules.

The greedy algorithm allocates each transfer its requested number of
parallel streams until the host-pair threshold is exceeded:

* if the full request fits under the threshold, grant it;
* if the request would cross the threshold, grant only the streams that
  remain below it;
* once the threshold is reached, grant a single stream (so late transfers
  are never starved);
* record every grant against the pair's allocation (freed again by the
  completion rules in Table I).

Transfers are allocated in arrival (fact-id) order, matching the service's
FIFO processing of each request batch.
"""

from __future__ import annotations

from repro.rules import Pattern, Rule

from repro.policy import salience
from repro.policy.model import HostPairFact, TransferFact

__all__ = ["greedy_rules"]


def _needs_allocation(t, bindings) -> bool:
    return (
        t.status == "new"
        and t.allocated_streams is None
        and t.requested_streams is not None
        and t.group_id is not None
    )


_NEW_KEYS = {"status": lambda b: "new"}


def _pair_keys():
    return {
        "src_host": lambda b: b["t"].src_host,
        "dst_host": lambda b: b["t"].dst_host,
    }


def _pair_of(p, bindings) -> bool:
    t = bindings["t"]
    return p.src_host == t.src_host and p.dst_host == t.dst_host


def _retrieve_threshold(ctx):
    config = ctx.globals["config"]
    ctx.update(
        ctx.pair, threshold=config.threshold_for(ctx.pair.src_host, ctx.pair.dst_host)
    )


def _grant_full(ctx):
    grant = ctx.t.requested_streams
    ctx.update(ctx.t, allocated_streams=grant)
    ctx.update(ctx.pair, allocated=ctx.pair.allocated + grant)


def _grant_partial(ctx):
    grant = ctx.pair.threshold - ctx.pair.allocated
    ctx.update(ctx.t, allocated_streams=grant,
               reason="request trimmed to stay within the streams threshold")
    ctx.update(ctx.pair, allocated=ctx.pair.allocated + grant)


def _grant_single(ctx):
    ctx.update(ctx.t, allocated_streams=1,
               reason="streams threshold reached; allocated a single stream")
    ctx.update(ctx.pair, allocated=ctx.pair.allocated + 1)


def greedy_rules() -> list[Rule]:
    """The Table II rule pack."""
    return [
        Rule(
            "Retrieve the parallel streams threshold defined between a source "
            "and destination host",
            salience=salience.THRESHOLD_RETRIEVE,
            when=[
                Pattern(HostPairFact, "pair", where=lambda p, b: p.threshold is None),
            ],
            then=_retrieve_threshold,
        ),
        Rule(
            "Enforce the maximum number of parallel streams on a transfer",
            salience=salience.ALLOCATION,
            when=[
                Pattern(TransferFact, "t", where=_needs_allocation, keys=_NEW_KEYS),
                Pattern(
                    HostPairFact,
                    "pair",
                    where=lambda p, b: _pair_of(p, b)
                    and p.threshold is not None
                    and p.allocated + b["t"].requested_streams <= p.threshold,
                    keys=_pair_keys(),
                ),
            ],
            then=_grant_full,
        ),
        Rule(
            "If the number of requested streams would exceed the maximum "
            "streams threshold, then allocate only the number of streams that "
            "does not exceed the threshold",
            salience=salience.ALLOCATION,
            when=[
                Pattern(TransferFact, "t", where=_needs_allocation, keys=_NEW_KEYS),
                Pattern(
                    HostPairFact,
                    "pair",
                    where=lambda p, b: _pair_of(p, b)
                    and p.threshold is not None
                    and p.allocated < p.threshold
                    and p.allocated + b["t"].requested_streams > p.threshold,
                    keys=_pair_keys(),
                ),
            ],
            then=_grant_partial,
        ),
        Rule(
            "If the threshold has been reached or exceeded, allocate one "
            "stream for the new transfer",
            salience=salience.ALLOCATION,
            when=[
                Pattern(TransferFact, "t", where=_needs_allocation, keys=_NEW_KEYS),
                Pattern(
                    HostPairFact,
                    "pair",
                    where=lambda p, b: _pair_of(p, b)
                    and p.threshold is not None
                    and p.allocated >= p.threshold,
                    keys=_pair_keys(),
                ),
            ],
            then=_grant_single,
        ),
    ]
