"""RESTful web interface of the Policy Service.

The paper deploys the service in an Apache Tomcat container behind a
RESTful interface exchanging XML/JSON.  We serve JSON over HTTP on
localhost with the Python standard library (no network access needed).

Endpoints
---------
==========  ===================================  ===========================
POST        /policy/transfers                    submit transfer batch
POST        /policy/transfers/complete           report done/failed ids
GET         /policy/transfers/<tid>              one transfer's state
GET         /policy/explain/<tid>                decision-provenance record
POST        /policy/staging                      staged-state of (lfn, url)
POST        /policy/cleanups                     submit cleanup batch
POST        /policy/cleanups/complete            report finished cleanups
POST        /policy/staged/reconcile             adopt degraded-mode staging
POST        /policy/priorities                   register job priorities
POST        /policy/workflows/unregister         drop a workflow's interest
POST        /policy/denials                      ban a host (access control)
POST        /policy/denials/remove               lift a host ban
POST        /policy/quotas                       set a workflow's byte quota
POST        /policy/tenants                      register/replace a tenant
POST        /policy/tenants/remove               unregister a tenant
POST        /policy/tenants/bind                 bind a workflow to a tenant
GET         /policy/tenants                      tenant census + ledgers
GET         /policy/catalog                      staged-data catalog census
GET         /policy/catalog/replicas/<lfn>       one dataset's replicas
POST        /policy/catalog/sites                set/lift a site byte budget
POST        /policy/catalog/pins                 pin/unpin a replica by url
GET         /policy/status                       service snapshot
==========  ===================================  ===========================

Malformed payloads return 400 with ``{"error": ...}``; unknown paths 404;
bodies that stall past ``read_timeout`` mid-read 408 (connection closed);
bodies larger than ``max_request_bytes`` 413 (without reading the body);
requests arriving while the server drains for shutdown 503.

Connections that idle past ``idle_timeout`` between requests — or trickle
a request head slower than it — are closed without a response: the socket
timeout covers both, so a slow-loris client cannot pin a handler thread
indefinitely.

Observability
-------------
Every request carries a **request id**: the client's ``X-Repro-Request-Id``
header when present, a server-generated ``req-N`` otherwise.  The id is
echoed in the response header, included in every error body, recorded in
the per-request access log (host, method, path, status, wall-clock
latency; see :attr:`PolicyRestServer.access_log`), and attached to the
span emitted for the request — **including** 400/413/500/503 responses —
when the server is built with a tracer.  ``GET /policy/metrics`` serves
the service's registry in Prometheus text format.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional
from urllib.parse import unquote

from repro.obs.tracer import as_tracer
from repro.policy.controller import PolicyController, PolicyRequestError
from repro.policy.service import PolicyService

__all__ = ["PolicyRestServer"]

#: default cap on request bodies — far above any sane batch, far below
#: what would let one client exhaust server memory
DEFAULT_MAX_REQUEST_BYTES = 1024 * 1024


class _RequestTooLarge(Exception):
    """Body exceeds the configured cap (maps to HTTP 413)."""


class _BodyReadTimeout(Exception):
    """Body bytes stalled past ``read_timeout`` (maps to HTTP 408)."""


class _PolicyHTTPServer(ThreadingHTTPServer):
    """Threading server whose handler threads don't block shutdown.

    ``stop()`` drains in-flight requests explicitly (bounded by a
    timeout), so the per-thread joins of ``block_on_close`` would only
    add an unbounded second wait on a hung keep-alive connection.
    """

    daemon_threads = True
    block_on_close = False


def _make_handler(controller: PolicyController, lock: threading.Lock, server_state):
    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        # Socket timeout for the whole connection: bounds both the idle
        # wait between keep-alive requests and a trickled request head.
        # The stdlib's handle_one_request catches the TimeoutError and
        # closes the connection without a response.
        timeout = server_state.idle_timeout

        def log_message(self, *args) -> None:  # silence test output
            pass

        def _reply(self, code: int, doc: dict) -> None:
            self._send(code, json.dumps(doc).encode(), "application/json")

        def _reply_text(self, code: int, text: str) -> None:
            self._send(
                code, text.encode(), "text/plain; version=0.0.4; charset=utf-8"
            )

        def _send(self, code: int, body: bytes, content_type: str) -> None:
            self._status = code
            # Finalize the access-log entry and span before any response
            # byte goes out: a client that has observed the response must
            # find its entry in the log (error clients unblock on the
            # status line alone, not the body).
            self._finish_request()
            self.send_response(code)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            rid = getattr(self, "_request_id", "")
            if rid:
                self.send_header("X-Repro-Request-Id", rid)
            self.end_headers()
            self.wfile.write(body)

        def _read_json(self) -> dict:
            try:
                length = int(self.headers.get("Content-Length", 0))
            except (TypeError, ValueError) as exc:
                raise PolicyRequestError(
                    "Content-Length header must be an integer"
                ) from exc
            if length < 0:
                raise PolicyRequestError("Content-Length header must be >= 0")
            if length > server_state.max_request_bytes:
                # Refuse before reading: the declared size alone disqualifies
                # the request, so the body bytes never enter memory.
                raise _RequestTooLarge(
                    f"request body of {length} bytes exceeds the "
                    f"{server_state.max_request_bytes}-byte limit"
                )
            if length:
                # Tighten the socket timeout for the body read: a client
                # that sent a complete head must deliver the body it
                # declared promptly, or the request is abandoned with 408.
                if server_state.read_timeout is not None:
                    self.connection.settimeout(server_state.read_timeout)
                try:
                    raw = self.rfile.read(length)
                except TimeoutError as exc:
                    raise _BodyReadTimeout(
                        "timed out reading request body after "
                        f"{server_state.read_timeout}s"
                    ) from exc
                finally:
                    if server_state.read_timeout is not None:
                        self.connection.settimeout(server_state.idle_timeout)
            else:
                raw = b"{}"
            try:
                doc = json.loads(raw or b"{}")
            except json.JSONDecodeError as exc:
                raise PolicyRequestError(f"invalid JSON body: {exc}") from exc
            if not isinstance(doc, dict):
                raise PolicyRequestError("request body must be a JSON object")
            return doc

        def _handle(self, work) -> None:
            rid = self.headers.get("X-Repro-Request-Id") or server_state.next_request_id()
            self._request_id = rid
            self._status = 0
            self._finished = False
            self._t0 = time.perf_counter()
            tracer = server_state.tracer
            self._span = None
            if tracer.enabled:
                self._span = tracer.begin(
                    "rest", f"{self.command} {self.path}", track="rest",
                    request_id=rid, host=self.client_address[0],
                )
            if not server_state.enter():
                self.close_connection = True
                self._reply(
                    503, {"error": "server is shutting down", "request_id": rid}
                )
                return
            try:
                work()
            except _BodyReadTimeout as exc:
                # Part of the body never arrived — the stream position is
                # unknowable, so the connection cannot be reused.
                self.close_connection = True
                self._reply(408, {"error": str(exc), "request_id": rid})
            except _RequestTooLarge as exc:
                # The oversized body was never read — this connection
                # cannot be reused.
                self.close_connection = True
                self._reply(413, {"error": str(exc), "request_id": rid})
            except PolicyRequestError as exc:
                # The body may be unread (bad framing) — do not reuse the
                # connection for a follow-up request.
                self.close_connection = True
                self._reply(400, {"error": str(exc), "request_id": rid})
            except Exception as exc:  # don't drop the connection on a bug
                self.close_connection = True
                self._reply(
                    500, {"error": f"internal error: {exc}", "request_id": rid}
                )
            finally:
                server_state.leave()
                self._finish_request()  # backstop if no reply was sent

        def _finish_request(self) -> None:
            if self._finished:
                return
            self._finished = True
            server_state.log_request({
                "request_id": self._request_id,
                "host": self.client_address[0],
                "method": self.command,
                "path": self.path,
                "status": self._status,
                "latency_s": time.perf_counter() - self._t0,
            })
            server_state.tracer.end(self._span, status=self._status)

        def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
            def work():
                with lock:
                    if self.path == "/policy/status":
                        self._reply(200, controller.status())
                    elif self.path == "/policy/metrics":
                        self._reply_text(200, controller.metrics_text())
                    elif self.path == "/policy/tenants":
                        self._reply(200, controller.tenants())
                    elif self.path == "/policy/catalog":
                        self._reply(200, controller.catalog())
                    elif self.path.startswith("/policy/catalog/replicas/"):
                        lfn = unquote(self.path.rsplit("/", 1)[-1])
                        self._reply(200, controller.catalog_replicas(lfn))
                    elif self.path.startswith("/policy/transfers/"):
                        tid_text = self.path.rsplit("/", 1)[-1]
                        if not tid_text.isdigit():
                            raise PolicyRequestError("transfer id must be an integer")
                        self._reply(200, controller.transfer_state(int(tid_text)))
                    elif self.path.startswith("/policy/explain/"):
                        tid_text = self.path.rsplit("/", 1)[-1]
                        if not tid_text.isdigit():
                            raise PolicyRequestError("transfer id must be an integer")
                        record = controller.explain(int(tid_text))
                        if record is None:
                            self._reply(404, {
                                "error": f"no decision record for transfer {tid_text}",
                                "request_id": self._request_id,
                            })
                        else:
                            self._reply(200, record)
                    else:
                        self._reply(404, {
                            "error": f"no such endpoint {self.path!r}",
                            "request_id": self._request_id,
                        })

            self._handle(work)

        def do_POST(self) -> None:  # noqa: N802
            routes = {
                "/policy/transfers": controller.submit_transfers,
                "/policy/transfers/complete": controller.complete_transfers,
                "/policy/staging": controller.staging_state,
                "/policy/cleanups": controller.submit_cleanups,
                "/policy/cleanups/complete": controller.complete_cleanups,
                "/policy/staged/reconcile": controller.reconcile_staged,
                "/policy/priorities": controller.register_priorities,
                "/policy/workflows/unregister": controller.unregister_workflow,
                "/policy/denials": controller.deny_host,
                "/policy/denials/remove": controller.allow_host,
                "/policy/quotas": controller.set_quota,
                "/policy/tenants": controller.register_tenant,
                "/policy/tenants/remove": controller.unregister_tenant,
                "/policy/tenants/bind": controller.bind_workflow,
                "/policy/catalog/sites": controller.set_site_capacity,
                "/policy/catalog/pins": controller.catalog_pin,
            }
            handler = routes.get(self.path)

            def work():
                if handler is None:
                    self._reply(404, {
                        "error": f"no such endpoint {self.path!r}",
                        "request_id": self._request_id,
                    })
                    return
                payload = self._read_json()
                with lock:
                    self._reply(200, handler(payload))

            self._handle(work)

    return Handler


class _ServerState:
    """In-flight request accounting, request ids, and the access log."""

    def __init__(
        self,
        max_request_bytes: int,
        tracer=None,
        access_log_cap: int = 1024,
        idle_timeout: Optional[float] = 60.0,
        read_timeout: Optional[float] = 10.0,
    ):
        self.max_request_bytes = int(max_request_bytes)
        self.tracer = as_tracer(tracer)
        self.idle_timeout = idle_timeout
        self.read_timeout = read_timeout
        self.access_log: list[dict] = []
        self._access_log_cap = int(access_log_cap)
        self._request_seq = 0
        self._lock = threading.Lock()
        self._in_flight = 0
        self._stopping = False
        self._idle = threading.Event()
        self._idle.set()

    def next_request_id(self) -> str:
        with self._lock:
            self._request_seq += 1
            return f"req-{self._request_seq}"

    def log_request(self, entry: dict) -> None:
        with self._lock:
            self.access_log.append(entry)
            overflow = len(self.access_log) - self._access_log_cap
            if overflow > 0:
                del self.access_log[:overflow]

    def enter(self) -> bool:
        with self._lock:
            if self._stopping:
                return False
            self._in_flight += 1
            self._idle.clear()
            return True

    def leave(self) -> None:
        with self._lock:
            self._in_flight -= 1
            if self._in_flight == 0:
                self._idle.set()

    def begin_stop(self) -> None:
        with self._lock:
            self._stopping = True
            if self._in_flight == 0:
                self._idle.set()

    def drain(self, timeout: float) -> bool:
        """Wait until in-flight requests finish; False on timeout."""
        return self._idle.wait(timeout)


class PolicyRestServer:
    """Threaded HTTP frontend around a :class:`PolicyService`.

    Usage::

        server = PolicyRestServer(service)      # port 0 = pick a free port
        server.start()
        ... HTTPPolicyClient(server.url) ...
        server.stop()

    A lock serializes requests into the (single-threaded) rule engine, so
    concurrent clients are safe.  Request bodies above
    ``max_request_bytes`` are refused with 413 before being read;
    connections idle (or trickling a request head) past ``idle_timeout``
    seconds are closed without a response; declared bodies that stall
    past ``read_timeout`` draw a 408 and a closed connection;
    :meth:`stop` first refuses new requests with 503, then waits up to
    ``drain_timeout`` seconds for in-flight ones to complete.  Either
    timeout may be ``None`` to disable it.
    """

    def __init__(
        self,
        service: PolicyService,
        host: str = "127.0.0.1",
        port: int = 0,
        max_request_bytes: int = DEFAULT_MAX_REQUEST_BYTES,
        drain_timeout: float = 5.0,
        tracer=None,
        idle_timeout: Optional[float] = 60.0,
        read_timeout: Optional[float] = 10.0,
    ):
        if max_request_bytes < 1:
            raise ValueError("max_request_bytes must be >= 1")
        if drain_timeout < 0:
            raise ValueError("drain_timeout must be >= 0")
        if idle_timeout is not None and idle_timeout <= 0:
            raise ValueError("idle_timeout must be > 0 (or None to disable)")
        if read_timeout is not None and read_timeout <= 0:
            raise ValueError("read_timeout must be > 0 (or None to disable)")
        self.service = service
        self.controller = PolicyController(service)
        self.drain_timeout = drain_timeout
        self._lock = threading.Lock()
        # A tracer given here should be wall-clock bound (e.g.
        # ``Tracer(clock=time.monotonic)``); defaults to the service's.
        self._state = _ServerState(
            max_request_bytes,
            tracer=tracer if tracer is not None else service.tracer,
            idle_timeout=idle_timeout,
            read_timeout=read_timeout,
        )
        self._httpd = _PolicyHTTPServer(
            (host, port), _make_handler(self.controller, self._lock, self._state)
        )
        self._thread: Optional[threading.Thread] = None

    @property
    def url(self) -> str:
        host, port = self._httpd.server_address[:2]
        return f"http://{host}:{port}"

    @property
    def access_log(self) -> list[dict]:
        """One entry per handled request (request id, host, method, path,
        status, wall-clock latency), oldest first, bounded."""
        return list(self._state.access_log)

    def start(self) -> "PolicyRestServer":
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(target=self._httpd.serve_forever, daemon=True)
        self._thread.start()
        return self

    def stop(self) -> bool:
        """Stop accepting requests, drain in-flight ones, close the socket.

        Returns True when every in-flight request finished within
        ``drain_timeout``; False when the timeout expired and the server
        closed with requests still running (their daemon threads die with
        the process).
        """
        if self._thread is None:
            return True
        self._state.begin_stop()
        drained = self._state.drain(self.drain_timeout)
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=5)
        self._thread = None
        return drained

    def __enter__(self) -> "PolicyRestServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
