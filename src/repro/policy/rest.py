"""RESTful web interface of the Policy Service.

The paper deploys the service in an Apache Tomcat container behind a
RESTful interface exchanging XML/JSON.  We serve JSON over HTTP on
localhost with the Python standard library (no network access needed).

Endpoints
---------
==========  ===================================  ===========================
POST        /policy/transfers                    submit transfer batch
POST        /policy/transfers/complete           report done/failed ids
GET         /policy/transfers/<tid>              one transfer's state
POST        /policy/staging                      staged-state of (lfn, url)
POST        /policy/cleanups                     submit cleanup batch
POST        /policy/cleanups/complete            report finished cleanups
POST        /policy/staged/reconcile             adopt degraded-mode staging
POST        /policy/priorities                   register job priorities
POST        /policy/workflows/unregister         drop a workflow's interest
POST        /policy/denials                      ban a host (access control)
POST        /policy/denials/remove               lift a host ban
POST        /policy/quotas                       set a workflow's byte quota
GET         /policy/status                       service snapshot
==========  ===================================  ===========================

Malformed payloads return 400 with ``{"error": ...}``; unknown paths 404;
bodies larger than ``max_request_bytes`` 413 (without reading the body);
requests arriving while the server drains for shutdown 503.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from repro.policy.controller import PolicyController, PolicyRequestError
from repro.policy.service import PolicyService

__all__ = ["PolicyRestServer"]

#: default cap on request bodies — far above any sane batch, far below
#: what would let one client exhaust server memory
DEFAULT_MAX_REQUEST_BYTES = 1024 * 1024


class _RequestTooLarge(Exception):
    """Body exceeds the configured cap (maps to HTTP 413)."""


class _PolicyHTTPServer(ThreadingHTTPServer):
    """Threading server whose handler threads don't block shutdown.

    ``stop()`` drains in-flight requests explicitly (bounded by a
    timeout), so the per-thread joins of ``block_on_close`` would only
    add an unbounded second wait on a hung keep-alive connection.
    """

    daemon_threads = True
    block_on_close = False


def _make_handler(controller: PolicyController, lock: threading.Lock, server_state):
    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        def log_message(self, *args) -> None:  # silence test output
            pass

        def _reply(self, code: int, doc: dict) -> None:
            body = json.dumps(doc).encode()
            self.send_response(code)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _read_json(self) -> dict:
            try:
                length = int(self.headers.get("Content-Length", 0))
            except (TypeError, ValueError) as exc:
                raise PolicyRequestError(
                    "Content-Length header must be an integer"
                ) from exc
            if length < 0:
                raise PolicyRequestError("Content-Length header must be >= 0")
            if length > server_state.max_request_bytes:
                # Refuse before reading: the declared size alone disqualifies
                # the request, so the body bytes never enter memory.
                raise _RequestTooLarge(
                    f"request body of {length} bytes exceeds the "
                    f"{server_state.max_request_bytes}-byte limit"
                )
            raw = self.rfile.read(length) if length else b"{}"
            try:
                doc = json.loads(raw or b"{}")
            except json.JSONDecodeError as exc:
                raise PolicyRequestError(f"invalid JSON body: {exc}") from exc
            if not isinstance(doc, dict):
                raise PolicyRequestError("request body must be a JSON object")
            return doc

        def _handle(self, work) -> None:
            if not server_state.enter():
                self.close_connection = True
                self._reply(503, {"error": "server is shutting down"})
                return
            try:
                work()
            except _RequestTooLarge as exc:
                # The oversized body was never read — this connection
                # cannot be reused.
                self.close_connection = True
                self._reply(413, {"error": str(exc)})
            except PolicyRequestError as exc:
                # The body may be unread (bad framing) — do not reuse the
                # connection for a follow-up request.
                self.close_connection = True
                self._reply(400, {"error": str(exc)})
            except Exception as exc:  # don't drop the connection on a bug
                self.close_connection = True
                self._reply(500, {"error": f"internal error: {exc}"})
            finally:
                server_state.leave()

        def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
            def work():
                with lock:
                    if self.path == "/policy/status":
                        self._reply(200, controller.status())
                    elif self.path.startswith("/policy/transfers/"):
                        tid_text = self.path.rsplit("/", 1)[-1]
                        if not tid_text.isdigit():
                            raise PolicyRequestError("transfer id must be an integer")
                        self._reply(200, controller.transfer_state(int(tid_text)))
                    else:
                        self._reply(404, {"error": f"no such endpoint {self.path!r}"})

            self._handle(work)

        def do_POST(self) -> None:  # noqa: N802
            routes = {
                "/policy/transfers": controller.submit_transfers,
                "/policy/transfers/complete": controller.complete_transfers,
                "/policy/staging": controller.staging_state,
                "/policy/cleanups": controller.submit_cleanups,
                "/policy/cleanups/complete": controller.complete_cleanups,
                "/policy/staged/reconcile": controller.reconcile_staged,
                "/policy/priorities": controller.register_priorities,
                "/policy/workflows/unregister": controller.unregister_workflow,
                "/policy/denials": controller.deny_host,
                "/policy/denials/remove": controller.allow_host,
                "/policy/quotas": controller.set_quota,
            }
            handler = routes.get(self.path)

            def work():
                if handler is None:
                    self._reply(404, {"error": f"no such endpoint {self.path!r}"})
                    return
                payload = self._read_json()
                with lock:
                    self._reply(200, handler(payload))

            self._handle(work)

    return Handler


class _ServerState:
    """In-flight request accounting for graceful drain on stop()."""

    def __init__(self, max_request_bytes: int):
        self.max_request_bytes = int(max_request_bytes)
        self._lock = threading.Lock()
        self._in_flight = 0
        self._stopping = False
        self._idle = threading.Event()
        self._idle.set()

    def enter(self) -> bool:
        with self._lock:
            if self._stopping:
                return False
            self._in_flight += 1
            self._idle.clear()
            return True

    def leave(self) -> None:
        with self._lock:
            self._in_flight -= 1
            if self._in_flight == 0:
                self._idle.set()

    def begin_stop(self) -> None:
        with self._lock:
            self._stopping = True
            if self._in_flight == 0:
                self._idle.set()

    def drain(self, timeout: float) -> bool:
        """Wait until in-flight requests finish; False on timeout."""
        return self._idle.wait(timeout)


class PolicyRestServer:
    """Threaded HTTP frontend around a :class:`PolicyService`.

    Usage::

        server = PolicyRestServer(service)      # port 0 = pick a free port
        server.start()
        ... HTTPPolicyClient(server.url) ...
        server.stop()

    A lock serializes requests into the (single-threaded) rule engine, so
    concurrent clients are safe.  Request bodies above
    ``max_request_bytes`` are refused with 413 before being read;
    :meth:`stop` first refuses new requests with 503, then waits up to
    ``drain_timeout`` seconds for in-flight ones to complete.
    """

    def __init__(
        self,
        service: PolicyService,
        host: str = "127.0.0.1",
        port: int = 0,
        max_request_bytes: int = DEFAULT_MAX_REQUEST_BYTES,
        drain_timeout: float = 5.0,
    ):
        if max_request_bytes < 1:
            raise ValueError("max_request_bytes must be >= 1")
        if drain_timeout < 0:
            raise ValueError("drain_timeout must be >= 0")
        self.service = service
        self.controller = PolicyController(service)
        self.drain_timeout = drain_timeout
        self._lock = threading.Lock()
        self._state = _ServerState(max_request_bytes)
        self._httpd = _PolicyHTTPServer(
            (host, port), _make_handler(self.controller, self._lock, self._state)
        )
        self._thread: Optional[threading.Thread] = None

    @property
    def url(self) -> str:
        host, port = self._httpd.server_address[:2]
        return f"http://{host}:{port}"

    def start(self) -> "PolicyRestServer":
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(target=self._httpd.serve_forever, daemon=True)
        self._thread.start()
        return self

    def stop(self) -> bool:
        """Stop accepting requests, drain in-flight ones, close the socket.

        Returns True when every in-flight request finished within
        ``drain_timeout``; False when the timeout expired and the server
        closed with requests still running (their daemon threads die with
        the process).
        """
        if self._thread is None:
            return True
        self._state.begin_stop()
        drained = self._state.drain(self.drain_timeout)
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=5)
        self._thread = None
        return drained

    def __enter__(self) -> "PolicyRestServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
