"""Durable staged-data catalog: datasets -> replicas -> sites.

See ``docs/catalog.md``.  The catalog's facts live inside policy
memory, so durability, crash recovery, and transactional commits come
from :mod:`repro.policy.journal` unchanged.

``eviction_rules`` is exposed lazily: the rule pack matches policy fact
types (:class:`~repro.policy.model.CleanupFact`), and importing it
eagerly here would cycle with :mod:`repro.policy.model`'s import of
:class:`CatalogConfig`.
"""

from repro.datacatalog.catalog import DataCatalog, derive_checksum
from repro.datacatalog.linkcost import LinkCostModel
from repro.datacatalog.model import (
    EVICTION_POLICIES,
    CatalogConfig,
    EvictionSweepFact,
    ReplicaRecordFact,
    SiteCapacityFact,
)

__all__ = [
    "CatalogConfig",
    "DataCatalog",
    "EVICTION_POLICIES",
    "EvictionSweepFact",
    "LinkCostModel",
    "ReplicaRecordFact",
    "SiteCapacityFact",
    "derive_checksum",
    "eviction_rules",
]


def __getattr__(name):
    if name == "eviction_rules":
        from repro.datacatalog.rules_eviction import eviction_rules

        return eviction_rules
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
