"""The eviction rule pack: policy-driven replacement of unconditional cleanup.

Without the catalog, an approved cleanup always deletes the file.  With
it, two things change:

* **Retention** (``CLEANUP_RETAIN``, between the in-use skip at 70 and
  approval at 60): a cleanup whose file is a catalog replica on a site
  *with room to spare* is answered ``skip`` — the bytes are cheaper to
  keep than to re-stage for the next workflow that shares the dataset.
  Cleanup-protection is preserved exactly: the in-use skip still fires
  first, and a file on an over-budget (or unbudgeted-but-bounded) site
  falls through to ordinary approval.

* **Eviction** (``EVICTION_SELECT`` at 20, sweep retired at
  ``EVICTION_RETIRE`` = 2): when a site exceeds its byte budget, a
  transient :class:`~repro.datacatalog.model.EvictionSweepFact` drives
  victim selection — LRU or size-aware per
  :class:`~repro.datacatalog.model.CatalogConfig`, never a pinned
  replica, never a replica with in-flight readers (a staging or still-
  used ``StagedFileFact`` at the same URL).  Victims accumulate in
  ``ctx.globals["catalog_evicted"]`` for the service to drain and
  return to the transfer tool, which performs the actual deletion.

Victim order is deterministic (policy key, then lfn/url tie-break), so
advice — and the catalog census — stays byte-identical across the
seed, indexed, and compiled engines.
"""

from __future__ import annotations

from repro.rules import Collect, Pattern, Rule

from repro.policy import salience
from repro.policy.model import CleanupFact, StagedFileFact, TransferFact

from repro.datacatalog.model import (
    EvictionSweepFact,
    ReplicaRecordFact,
    SiteCapacityFact,
)

__all__ = ["eviction_rules", "EVICTED_GLOBAL"]

#: session-globals key the eviction rule appends victim documents to
EVICTED_GLOBAL = "catalog_evicted"


def _under_budget(cap: SiteCapacityFact) -> bool:
    return cap.capacity_bytes is None or cap.used_bytes <= cap.capacity_bytes


def _retain_cleanup(ctx):
    ctx.update(
        ctx.c,
        status="retained",
        reason=(
            f"catalog retains replica at {ctx.rep.url} "
            f"(site {ctx.cap.site} under budget)"
        ),
    )


def _victim_order(policy: str, candidates: list) -> list:
    """Deterministic victim order for an eviction policy."""
    if policy == "size":
        return sorted(candidates, key=lambda r: (-r.nbytes, r.lfn, r.url))
    return sorted(candidates, key=lambda r: (r.last_used, r.lfn, r.url))


def _has_inflight_reader(memory, url: str) -> bool:
    """A replica with a staging copy or remaining users must never be
    evicted — this is the cleanup-protection invariant, re-applied.
    A replica currently serving as the *source* of an in-progress
    transfer (replica selection rewrote the origin to it) is equally
    protected: deleting it mid-copy would corrupt the transfer."""
    for staged in memory.lookup(StagedFileFact, dst_url=url):
        if staged.status == "staging" or staged.users:
            return True
    for transfer in memory.lookup(TransferFact, src_url=url):
        if transfer.status == "in_progress":
            return True
    return False


def _select_victims(ctx):
    memory = ctx._session.memory
    cap = ctx.cap
    catalog_config = ctx.globals["config"].catalog
    policy = catalog_config.eviction_policy if catalog_config else "lru"
    evicted = ctx.globals.setdefault(EVICTED_GLOBAL, [])
    freed = 0.0
    for victim in _victim_order(policy, list(ctx.candidates)):
        if cap.used_bytes - freed <= cap.capacity_bytes:
            break
        if _has_inflight_reader(memory, victim.url):
            continue
        freed += victim.nbytes
        evicted.append(
            {
                "lfn": victim.lfn,
                "site": victim.site,
                "url": victim.url,
                "nbytes": victim.nbytes,
                "policy": policy,
                "reason": (
                    f"site {victim.site} over budget "
                    f"({cap.used_bytes:g} > {cap.capacity_bytes:g} bytes)"
                ),
                "now": ctx.sweep.now,
            }
        )
        # Orphaned resource facts (zero users, fully detached) fall with
        # the replica, so policy memory never advertises a deleted file.
        for staged in list(memory.lookup(StagedFileFact, dst_url=victim.url)):
            ctx.retract(staged)
        ctx.retract(victim)
    if freed:
        ctx.update(cap, used_bytes=max(0.0, cap.used_bytes - freed))


def _retire_eviction_sweep(ctx):
    ctx.retract(ctx.sweep)


def eviction_rules() -> list[Rule]:
    """The catalog eviction pack (loaded when the catalog is enabled)."""
    return [
        Rule(
            "Retain cleanups for catalog replicas while their site has capacity",
            salience=salience.CLEANUP_RETAIN,
            when=[
                Pattern(
                    CleanupFact,
                    "c",
                    where=lambda c, b: c.status in ("new", "detached"),
                ),
                Pattern(
                    ReplicaRecordFact,
                    "rep",
                    where=lambda r, b: r.url == b["c"].url,
                    keys={"url": lambda b: b["c"].url},
                ),
                Pattern(
                    SiteCapacityFact,
                    "cap",
                    where=lambda s, b: s.site == b["rep"].site
                    and _under_budget(s),
                    keys={"site": lambda b: b["rep"].site},
                ),
            ],
            then=_retain_cleanup,
        ),
        Rule(
            "Select eviction victims on a site over its byte budget",
            salience=salience.EVICTION_SELECT,
            when=[
                Pattern(EvictionSweepFact, "sweep"),
                Pattern(
                    SiteCapacityFact,
                    "cap",
                    where=lambda s, b: s.capacity_bytes is not None
                    and s.used_bytes > s.capacity_bytes,
                ),
                Collect(
                    ReplicaRecordFact,
                    "candidates",
                    where=lambda r, b: r.site == b["cap"].site
                    and r.pin_count == 0,
                    min_count=1,
                    keys={"site": lambda b: b["cap"].site},
                    reads=("site", "pin_count"),
                ),
            ],
            then=_select_victims,
        ),
        Rule(
            "Retire a completed eviction sweep",
            salience=salience.EVICTION_RETIRE,
            when=[Pattern(EvictionSweepFact, "sweep")],
            then=_retire_eviction_sweep,
        ),
    ]
