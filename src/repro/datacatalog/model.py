"""Fact types and configuration of the durable staged-data catalog.

The catalog answers the question policy memory alone could not: *which
datasets exist as replicas, where, how big, and who still needs them* —
the signac-style "indexable, well-defined storage layout" of ROADMAP
item 5.  Catalog state lives in the same working memory as the rest of
policy memory, so every mutation rides the service's WAL commit
transactions and recovery is byte-identical for free.

Facts
-----
:class:`ReplicaRecordFact`
    One physical copy of a dataset: (lfn, site, url) plus size,
    checksum, pin count, and last-use simulation time.
:class:`SiteCapacityFact`
    One storage site's byte budget and current usage.  ``capacity_bytes
    = None`` means unbounded (the catalog tracks usage but never
    evicts).
:class:`EvictionSweepFact`
    A transient sweep tick, mirroring ``LeaseSweepFact``: inserted when
    a site may be over budget, matched by the eviction pack, retired by
    the lowest-salience eviction rule.  Time enters as a fact, not a
    global, so the incremental agenda stays sound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.rules import Fact

from repro.datacatalog.linkcost import DEFAULT_WAN_COST, LinkCostModel

__all__ = [
    "CatalogConfig",
    "ReplicaRecordFact",
    "SiteCapacityFact",
    "EvictionSweepFact",
    "EVICTION_POLICIES",
]

#: victim-selection orders understood by the eviction pack
EVICTION_POLICIES = ("lru", "size")


@dataclass
class CatalogConfig:
    """Administrator-provided catalog settings.

    Parameters
    ----------
    eviction_policy:
        ``"lru"`` — evict the least-recently-used replica first;
        ``"size"`` — evict the largest replica first.  Pinned replicas
        and replicas with in-flight readers are never evicted.
    site_capacity:
        Per-site byte budgets, ``{site: bytes}``.  Sites not listed fall
        back to ``default_capacity``.
    default_capacity:
        Byte budget for sites without an explicit entry; ``None``
        (default) means unbounded.
    host_site:
        ``{host: site}`` mapping used to place a replica URL at a
        storage site; hosts not listed are their own site.
    link_costs / default_link_cost / same_site_link_cost:
        The replica-selection cost model (see
        :class:`~repro.datacatalog.linkcost.LinkCostModel`):
        ``{(src_site, dst_site): cost}`` overrides, the cost of an
        unlisted cross-site pair, and the cost of an unlisted same-site
        pair.  Advice-relevant (a different model picks different
        sources), so all three enter the config fingerprint.
    """

    eviction_policy: str = "lru"
    site_capacity: dict = field(default_factory=dict)
    default_capacity: Optional[float] = None
    host_site: dict = field(default_factory=dict)
    link_costs: dict = field(default_factory=dict)
    default_link_cost: float = DEFAULT_WAN_COST
    same_site_link_cost: float = 0.0

    def __post_init__(self) -> None:
        if self.eviction_policy not in EVICTION_POLICIES:
            raise ValueError(
                f"unknown eviction_policy {self.eviction_policy!r}; "
                f"expected one of {EVICTION_POLICIES}"
            )
        for site, capacity in self.site_capacity.items():
            if capacity is not None and capacity < 0:
                raise ValueError(f"site_capacity[{site!r}] must be >= 0 or None")
        if self.default_capacity is not None and self.default_capacity < 0:
            raise ValueError("default_capacity must be >= 0 or None")
        for pair, cost in self.link_costs.items():
            if cost < 0:
                raise ValueError(f"link_costs[{pair!r}] must be >= 0")
        if self.default_link_cost < 0 or self.same_site_link_cost < 0:
            raise ValueError("link costs must be >= 0")

    def capacity_for(self, site: str) -> Optional[float]:
        """Byte budget of ``site`` (None = unbounded)."""
        if site in self.site_capacity:
            value = self.site_capacity[site]
            return None if value is None else float(value)
        if self.default_capacity is None:
            return None
        return float(self.default_capacity)

    def link_cost_model(self) -> LinkCostModel:
        """The replica-selection cost model these settings describe."""
        return LinkCostModel(
            self.link_costs,
            default_cost=self.default_link_cost,
            same_site_cost=self.same_site_link_cost,
        )

    def fingerprint(self) -> dict:
        """Advice-relevant settings, canonical for snapshot fingerprints."""
        return {
            "eviction_policy": self.eviction_policy,
            "default_capacity": self.default_capacity,
            "site_capacity": {
                str(site): self.site_capacity[site]
                for site in sorted(self.site_capacity)
            },
            "link_costs": {
                f"{src}->{dst}": float(cost)
                for (src, dst), cost in sorted(self.link_costs.items())
            },
            "default_link_cost": self.default_link_cost,
            "same_site_link_cost": self.same_site_link_cost,
        }


class ReplicaRecordFact(Fact):
    """One physical replica of a dataset known to the catalog.

    ``pin_count`` protects a replica from eviction while a consumer
    holds it; ``last_used`` is the simulation time of the most recent
    registration, catalog hit, or explicit touch (the LRU clock).
    """

    def __init__(
        self,
        lfn: str,
        site: str,
        url: str,
        nbytes: float = 0.0,
        checksum: str = "",
        now: float = 0.0,
    ):
        self.lfn = lfn
        self.site = site
        self.url = url
        self.nbytes = float(nbytes)
        self.checksum = checksum
        self.pin_count = 0
        self.last_used = float(now)
        self.registered_at = float(now)


class SiteCapacityFact(Fact):
    """One storage site's byte budget and current catalog usage."""

    def __init__(self, site: str, capacity_bytes: Optional[float] = None):
        self.site = site
        self.capacity_bytes = (
            None if capacity_bytes is None else float(capacity_bytes)
        )
        self.used_bytes = 0.0


class EvictionSweepFact(Fact):
    """A transient eviction tick (see module docstring)."""

    def __init__(self, now: float):
        self.now = float(now)
