"""The DataCatalog facade: staged-dataset replicas inside policy memory.

A :class:`DataCatalog` is a thin, deterministic view over the service's
:class:`~repro.rules.WorkingMemory`: every mutation goes through the
memory (so the journal observer sees it and it commits with the
surrounding service transaction), and every read is sorted so the
census is byte-identical across engines, shard merges, and crash
replay.

The catalog itself holds **no state** beyond its configuration — the
facts are the state.  That is what makes recovery trivial: replaying
the WAL rebuilds the facts, and the facade over them is stateless.
"""

from __future__ import annotations

import json
import zlib
from typing import Optional

from repro.net.gridftp import parse_url

from repro.datacatalog.model import (
    CatalogConfig,
    ReplicaRecordFact,
    SiteCapacityFact,
)

__all__ = ["DataCatalog", "derive_checksum"]


def derive_checksum(lfn: str, nbytes: float) -> str:
    """Deterministic placeholder checksum for replicas registered without
    one (the simulator has no real file contents to hash)."""
    return "crc32:%08x" % zlib.crc32(f"{lfn}:{nbytes:g}".encode("utf-8"))


class DataCatalog:
    """Replica/site bookkeeping over a working memory.

    Must only be mutated inside a service transaction — the memory's
    journal observer records each mutation, and the service's commit
    seals them atomically.
    """

    def __init__(self, memory, config: Optional[CatalogConfig] = None):
        self.memory = memory
        self.config = config or CatalogConfig()

    # ------------------------------------------------------------- placement
    def site_of_url(self, url: str) -> str:
        """Storage site holding ``url`` (host itself when unmapped)."""
        host = parse_url(url)[0]
        return self.config.host_site.get(host, host)

    # ------------------------------------------------------------- lookups
    def replica_at(self, url: str) -> Optional[ReplicaRecordFact]:
        for fact in self.memory.lookup(ReplicaRecordFact, url=url):
            return fact
        return None

    def lookup(self, lfn: str) -> list[ReplicaRecordFact]:
        """All replicas of ``lfn``, deterministically by (site, url)."""
        return sorted(
            self.memory.lookup(ReplicaRecordFact, lfn=lfn),
            key=lambda r: (r.site, r.url),
        )

    def site_fact(self, site: str) -> Optional[SiteCapacityFact]:
        for fact in self.memory.lookup(SiteCapacityFact, site=site):
            return fact
        return None

    def select_source(
        self, lfn: str, dst_url: str, src_url: str
    ) -> Optional[ReplicaRecordFact]:
        """The cheapest existing replica to stage ``lfn`` from.

        Compares every known replica (except one already at the
        destination) against the requested origin under the configured
        link-cost model; returns ``None`` when the origin is at least as
        cheap, so the rewrite only ever *improves* the plan and advice
        stays deterministic (strictly-cheaper, (site, url) tie-break).
        """
        candidates = [r for r in self.lookup(lfn) if r.url != dst_url]
        if not candidates:
            return None
        model = self.config.link_cost_model()
        dst_site = self.site_of_url(dst_url)
        best = model.best(candidates, dst_site)
        if best is None:  # pragma: no cover - candidates is non-empty
            return None
        origin_cost = model.cost(self.site_of_url(src_url), dst_site)
        if model.cost(best.site, dst_site) < origin_cost:
            return best
        return None

    def over_budget_sites(self) -> list[str]:
        """Sites whose catalog usage exceeds their byte budget, sorted."""
        return sorted(
            fact.site
            for fact in self.memory.facts_of(SiteCapacityFact)
            if fact.capacity_bytes is not None
            and fact.used_bytes > fact.capacity_bytes
        )

    # ------------------------------------------------------------- mutations
    def _ensure_site(self, site: str) -> SiteCapacityFact:
        fact = self.site_fact(site)
        if fact is None:
            fact = SiteCapacityFact(site, self.config.capacity_for(site))
            self.memory.insert(fact)
        return fact

    def register(
        self,
        lfn: str,
        url: str,
        nbytes: float,
        now: float,
        checksum: Optional[str] = None,
    ) -> ReplicaRecordFact:
        """Record (or refresh) the replica of ``lfn`` at ``url``.

        Re-registration touches the LRU clock and refreshes size and
        checksum; site usage is adjusted by the size delta.
        """
        nbytes = float(nbytes)
        checksum = checksum or derive_checksum(lfn, nbytes)
        existing = self.replica_at(url)
        if existing is not None:
            site = self._ensure_site(existing.site)
            delta = nbytes - existing.nbytes
            if delta:
                self.memory.update(site, used_bytes=site.used_bytes + delta)
            self.memory.update(
                existing, nbytes=nbytes, checksum=checksum, last_used=float(now)
            )
            return existing
        site_name = self.site_of_url(url)
        site = self._ensure_site(site_name)
        replica = ReplicaRecordFact(
            lfn, site_name, url, nbytes=nbytes, checksum=checksum, now=now
        )
        self.memory.insert(replica)
        self.memory.update(site, used_bytes=site.used_bytes + nbytes)
        return replica

    def unregister(self, url: str) -> bool:
        """Forget the replica at ``url`` and release its site bytes."""
        replica = self.replica_at(url)
        if replica is None:
            return False
        site = self.site_fact(replica.site)
        if site is not None:
            self.memory.update(
                site, used_bytes=max(0.0, site.used_bytes - replica.nbytes)
            )
        self.memory.retract(replica)
        return True

    def touch(self, url: str, now: float) -> bool:
        """Refresh the LRU clock of the replica at ``url`` (a catalog hit)."""
        replica = self.replica_at(url)
        if replica is None:
            return False
        if replica.last_used != float(now):
            self.memory.update(replica, last_used=float(now))
        return True

    def pin(self, url: str) -> bool:
        """Protect the replica at ``url`` from eviction."""
        replica = self.replica_at(url)
        if replica is None:
            return False
        self.memory.update(replica, pin_count=replica.pin_count + 1)
        return True

    def unpin(self, url: str) -> bool:
        """Release one pin (never below zero)."""
        replica = self.replica_at(url)
        if replica is None:
            return False
        self.memory.update(replica, pin_count=max(0, replica.pin_count - 1))
        return True

    def set_site_capacity(self, site: str, capacity_bytes: Optional[float]) -> None:
        """Set (or lift, with None) a site's byte budget at runtime."""
        fact = self.site_fact(site)
        if fact is None:
            self.memory.insert(SiteCapacityFact(site, capacity_bytes))
        else:
            self.memory.update(
                fact,
                capacity_bytes=(
                    None if capacity_bytes is None else float(capacity_bytes)
                ),
            )

    # ------------------------------------------------------------- census
    def census(self) -> dict:
        """Canonical catalog state — the byte-identity witness.

        Sorted, JSON-able, and free of engine bookkeeping (no fids), so
        two catalogs hold the same data iff their censuses are equal.
        """
        replicas = [
            {
                "lfn": r.lfn,
                "site": r.site,
                "url": r.url,
                "nbytes": r.nbytes,
                "checksum": r.checksum,
                "pin_count": r.pin_count,
                "last_used": r.last_used,
                "registered_at": r.registered_at,
            }
            for r in sorted(
                self.memory.facts_of(ReplicaRecordFact),
                key=lambda r: (r.lfn, r.site, r.url),
            )
        ]
        sites = [
            {
                "site": s.site,
                "capacity_bytes": s.capacity_bytes,
                "used_bytes": s.used_bytes,
            }
            for s in sorted(
                self.memory.facts_of(SiteCapacityFact), key=lambda s: s.site
            )
        ]
        return {"replicas": replicas, "sites": sites}

    def census_text(self) -> str:
        """The census as canonical JSON (sorted keys, no whitespace)."""
        return json.dumps(self.census(), sort_keys=True, separators=(",", ":"))
