"""Per-site-pair link costs for replica selection.

The EC2 data-sharing study (arXiv 1010.4822) showed that *where* a
shared dataset is staged from dominates cost and makespan.  This module
is the cost model the planner and transfer tool minimise over: a
relative cost per (source site, destination site) pair — 0 for a
same-site copy, small for a LAN hop, large for a WAN hop.

Costs are relative weights, not seconds: only the ordering matters for
victim selection, and deterministic tie-breaking by (site, url) keeps
planning hash-seed independent.
"""

from __future__ import annotations

from typing import Iterable, Optional

__all__ = ["LinkCostModel", "DEFAULT_LAN_COST", "DEFAULT_WAN_COST"]

DEFAULT_LAN_COST = 1.0
DEFAULT_WAN_COST = 10.0


class LinkCostModel:
    """Relative transfer cost between storage sites.

    Parameters
    ----------
    costs:
        ``{(src_site, dst_site): cost}`` overrides.  Pairs not listed
        fall back to ``same_site_cost`` when the sites match, else
        ``default_cost``.
    default_cost:
        Cost of an unlisted cross-site pair (a WAN hop by default).
    same_site_cost:
        Cost of an unlisted same-site pair (0 — the data is already
        there).
    """

    def __init__(
        self,
        costs: Optional[dict] = None,
        default_cost: float = DEFAULT_WAN_COST,
        same_site_cost: float = 0.0,
    ):
        self.costs = {
            (str(src), str(dst)): float(value)
            for (src, dst), value in (costs or {}).items()
        }
        self.default_cost = float(default_cost)
        self.same_site_cost = float(same_site_cost)

    def cost(self, src_site: str, dst_site: str) -> float:
        """Relative cost of staging from ``src_site`` to ``dst_site``."""
        try:
            return self.costs[(src_site, dst_site)]
        except KeyError:
            if src_site == dst_site:
                return self.same_site_cost
            return self.default_cost

    def best(self, candidates: Iterable, dst_site: str):
        """The cheapest replica for ``dst_site`` from ``candidates``.

        Candidates are objects with ``site`` and ``url`` attributes
        (``ReplicaRecordFact``, the simulator's ``Replica``, ...).  Ties
        break deterministically by (site, url); returns ``None`` for an
        empty candidate set.
        """
        best = None
        best_key = None
        for replica in candidates:
            key = (self.cost(replica.site, dst_site), replica.site, replica.url)
            if best_key is None or key < best_key:
                best, best_key = replica, key
        return best

    def to_dict(self) -> dict:
        """JSON-able form (documentation artifacts, trace census)."""
        return {
            "default_cost": self.default_cost,
            "same_site_cost": self.same_site_cost,
            "costs": {
                f"{src}->{dst}": value
                for (src, dst), value in sorted(self.costs.items())
            },
        }
