"""Fair-share admission into a bounded pool of execution slots.

The :class:`AdmissionController` is a DES process that drains an
:class:`~repro.tenancy.scheduler.EnsembleScheduler` queue:

* at most ``max_concurrent`` workflows run at once, and a tenant never
  exceeds its own ``max_concurrent`` cap (capped tenants stay queued
  without blocking others);
* admission charges the submission's *estimated* bytes to the tenant's
  fair-share ledger immediately, so a burst of free slots spreads across
  tenants instead of draining one tenant's queue; the charge is
  reconciled to actual bytes when the workflow completes;
* optional **backpressure**: when a pressure probe (typically the policy
  service's working-memory size) rises past a high watermark, admission
  pauses until it falls back below the low watermark — classic
  hysteresis so the controller does not flap.  If nothing is running the
  controller admits anyway: with zero workflows in flight nothing can
  relieve the pressure, and waiting would deadlock the ensemble.

Every decision is traced under the ``tenant`` category (``tenant.submit``,
``tenant.reject``, ``tenant.admit``, ``tenant.backpressure``, a
``tenant.run`` span per workflow, and a ``tenant.queue`` counter), all
stamped with simulated time so runs are byte-identical given a seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator, Optional

from repro.des.core import Environment, Event
from repro.tenancy.scheduler import EnsembleScheduler, Submission, TenantQuotaError

__all__ = ["AdmissionConfig", "AdmissionController"]

#: A starter runs one admitted submission as a DES generator and returns
#: the number of bytes it actually staged (charged to the tenant).
Starter = Callable[[Submission], Generator]


@dataclass(frozen=True)
class AdmissionConfig:
    """Admission knobs (watermarks come as a pair or not at all)."""

    max_concurrent: int = 2
    backpressure_high: Optional[float] = None
    backpressure_low: Optional[float] = None
    poll_interval: float = 5.0

    def __post_init__(self) -> None:
        if self.max_concurrent < 1:
            raise ValueError("max_concurrent must be >= 1")
        high, low = self.backpressure_high, self.backpressure_low
        if (high is None) != (low is None):
            raise ValueError("backpressure watermarks must be set together")
        if high is not None and not (0 <= low <= high):
            raise ValueError("watermarks must satisfy 0 <= low <= high")
        if self.poll_interval <= 0:
            raise ValueError("poll_interval must be > 0")


class AdmissionController:
    """Admits queued submissions into slots; see the module docstring."""

    def __init__(
        self,
        env: Environment,
        scheduler: EnsembleScheduler,
        config: Optional[AdmissionConfig] = None,
        tracer=None,
        pressure_probe: Optional[Callable[[], float]] = None,
    ):
        self.env = env
        self.scheduler = scheduler
        self.config = config or AdmissionConfig()
        self.tracer = tracer
        self.pressure_probe = pressure_probe
        #: submission names in the order they were admitted (determinism witness)
        self.admission_order: list[str] = []
        #: submission names in the order they completed
        self.completed: list[str] = []
        #: (tenant, name, reason) for quota-rejected submissions
        self.rejected: list[tuple[str, str, str]] = []
        self._inflight = 0
        self._running: dict[str, int] = {}
        self._throttled = False
        self._waiters: list[Event] = []

    # -- intake ---------------------------------------------------------------
    def submit(
        self,
        tenant: str,
        name: str,
        starter: Starter,
        est_bytes: float = 0.0,
    ) -> Optional[Submission]:
        """Queue a workflow; returns None (and records it) on quota rejection."""
        tracer = self.tracer
        try:
            sub = self.scheduler.submit(tenant, name, est_bytes, payload=starter)
        except TenantQuotaError as exc:
            self.rejected.append((tenant, name, str(exc)))
            if tracer is not None and tracer.enabled:
                tracer.instant("tenant", "tenant.reject", tenant=tenant,
                               workflow=name, reason=str(exc))
            return None
        if tracer is not None and tracer.enabled:
            tracer.instant("tenant", "tenant.submit", tenant=tenant,
                           workflow=name, est_bytes=float(est_bytes))
        self._poke()
        return sub

    # -- the dispatcher process ----------------------------------------------
    def run(self):
        """Start the dispatcher; returns its process (ends when drained)."""
        return self.env.process(self._dispatch(), name="admission")

    def _dispatch(self):
        while len(self.scheduler) or self._inflight:
            sub = None
            if self._inflight < self.config.max_concurrent:
                if self._backpressured() and self._inflight > 0:
                    # Pressure high and relief possible: wait for a
                    # completion or re-probe after the poll interval.
                    yield self.env.any_of([
                        self._wait_event(),
                        self.env.timeout(self.config.poll_interval),
                    ])
                    continue
                sub = self.scheduler.select(self._eligible)
            if sub is None:
                # Slots full, or every queued tenant is at its cap: a
                # completion is the only thing that can change that.
                yield self._wait_event()
                continue
            self._admit(sub)
        self._sample_queue()

    def _eligible(self, sub: Submission) -> bool:
        cap = self.scheduler.registry.get(sub.tenant).max_concurrent
        return cap is None or self._running.get(sub.tenant, 0) < cap

    def _admit(self, sub: Submission) -> None:
        self._inflight += 1
        self._running[sub.tenant] = self._running.get(sub.tenant, 0) + 1
        self.admission_order.append(sub.name)
        self.scheduler.charge(sub.tenant, sub.est_bytes)
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            tracer.instant("tenant", "tenant.admit", tenant=sub.tenant,
                           workflow=sub.name, running=self._inflight,
                           queued=len(self.scheduler))
        self._sample_queue()
        self.env.process(self._child(sub), name=f"tenant-run-{sub.seq}")

    def _child(self, sub: Submission):
        tracer = self.tracer
        span = None
        if tracer is not None and tracer.enabled:
            span = tracer.begin("tenant", "tenant.run",
                                track=f"tenant:{sub.tenant}",
                                tenant=sub.tenant, workflow=sub.name)
        actual = 0.0
        try:
            result = yield from sub.payload(sub)
            actual = float(result or 0.0)
        finally:
            # Reconcile the admission-time estimate to actual bytes.
            self.scheduler.charge(sub.tenant, actual - sub.est_bytes)
            self._inflight -= 1
            self._running[sub.tenant] -= 1
            self.completed.append(sub.name)
            if tracer is not None:
                tracer.end(span, bytes_staged=actual)
            self._sample_queue()
            self._poke()

    # -- backpressure ----------------------------------------------------------
    def _backpressured(self) -> bool:
        if self.pressure_probe is None or self.config.backpressure_high is None:
            return False
        value = self.pressure_probe()
        tracer = self.tracer
        if self._throttled:
            if value <= self.config.backpressure_low:
                self._throttled = False
                if tracer is not None and tracer.enabled:
                    tracer.instant("tenant", "tenant.backpressure",
                                   state="released", pressure=value)
        elif value >= self.config.backpressure_high:
            self._throttled = True
            if tracer is not None and tracer.enabled:
                tracer.instant("tenant", "tenant.backpressure",
                               state="engaged", pressure=value)
        return self._throttled

    # -- plumbing --------------------------------------------------------------
    def _wait_event(self) -> Event:
        event = Event(self.env)
        self._waiters.append(event)
        return event

    def _poke(self) -> None:
        waiters, self._waiters = self._waiters, []
        for event in waiters:
            if not event.triggered:
                event.succeed()

    def _sample_queue(self) -> None:
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            tracer.counter("tenant", "tenant.queue",
                           queued=len(self.scheduler), running=self._inflight)
