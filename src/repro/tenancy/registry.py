"""The tenant registry: who shares the deployment, and on what terms.

A :class:`TenantSpec` is the immutable contract for one tenant: a
fair-share ``weight`` (relative claim on staging bandwidth), a
``priority_class`` (strict tiers within the fair-share order), and three
optional budgets — ``max_bytes`` (aggregate bytes a tenant may stage
across the ensemble), ``max_streams`` (aggregate TCP streams across all
its in-flight transfers, enforced by the policy rules), and
``max_concurrent`` (simultaneously running workflows, enforced by the
admission controller).

Validation mirrors :class:`repro.policy.rules_fairshare.TenantFact` —
the registry is the front door and must reject anything the policy
service would: NaN/inf budgets in particular, since ``float('nan') < 0``
is False and would otherwise slip through naive range checks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterator, Optional

__all__ = ["TenantSpec", "TenantRegistry"]


def _check_finite_positive(value: float, name: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)) \
            or not math.isfinite(value) or value <= 0:
        raise ValueError(f"{name} must be a finite number > 0, got {value!r}")
    return float(value)


def _check_optional_bytes(value: Optional[float], name: str) -> Optional[float]:
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)) \
            or not math.isfinite(value) or value < 0:
        raise ValueError(f"{name} must be a finite number >= 0 or None, got {value!r}")
    return float(value)


def _check_optional_count(value: Optional[int], name: str) -> Optional[int]:
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, int) or value < 1:
        raise ValueError(f"{name} must be an integer >= 1 or None, got {value!r}")
    return value


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's share and budgets (immutable; replace to update)."""

    tenant: str
    weight: float = 1.0
    priority_class: int = 0
    max_bytes: Optional[float] = None
    max_streams: Optional[int] = None
    max_concurrent: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.tenant or not isinstance(self.tenant, str):
            raise ValueError("tenant must be a non-empty string")
        _check_finite_positive(self.weight, "weight")
        if isinstance(self.priority_class, bool) or not isinstance(self.priority_class, int):
            raise ValueError(f"priority_class must be an integer, got {self.priority_class!r}")
        _check_optional_bytes(self.max_bytes, "max_bytes")
        _check_optional_count(self.max_streams, "max_streams")
        _check_optional_count(self.max_concurrent, "max_concurrent")

    def to_dict(self) -> dict:
        return {
            "tenant": self.tenant,
            "weight": self.weight,
            "priority_class": self.priority_class,
            "max_bytes": self.max_bytes,
            "max_streams": self.max_streams,
            "max_concurrent": self.max_concurrent,
        }


@dataclass
class TenantRegistry:
    """A mutable census of :class:`TenantSpec` entries, keyed by name."""

    _specs: dict[str, TenantSpec] = field(default_factory=dict)

    def register(self, spec: TenantSpec | str, **kwargs) -> TenantSpec:
        """Add (or replace) a tenant; accepts a spec or name + keywords."""
        if isinstance(spec, str):
            spec = TenantSpec(spec, **kwargs)
        elif kwargs:
            raise TypeError("pass either a TenantSpec or a name with keywords, not both")
        self._specs[spec.tenant] = spec
        return spec

    def get(self, tenant: str) -> TenantSpec:
        try:
            return self._specs[tenant]
        except KeyError:
            raise KeyError(f"unknown tenant {tenant!r}") from None

    def remove(self, tenant: str) -> bool:
        return self._specs.pop(tenant, None) is not None

    def names(self) -> list[str]:
        return sorted(self._specs)

    def total_weight(self) -> float:
        return sum(spec.weight for spec in self._specs.values())

    def share(self, tenant: str) -> float:
        """The tenant's fair fraction of staging bandwidth (0..1)."""
        total = self.total_weight()
        return self.get(tenant).weight / total if total else 0.0

    def __contains__(self, tenant: str) -> bool:
        return tenant in self._specs

    def __iter__(self) -> Iterator[TenantSpec]:
        return iter(sorted(self._specs.values(), key=lambda s: s.tenant))

    def __len__(self) -> int:
        return len(self._specs)
