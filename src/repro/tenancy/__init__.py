"""Multi-tenant ensemble management.

The paper's policy service arbitrates transfers *within* workflows; this
package arbitrates *between* them.  A :class:`TenantRegistry` names the
parties sharing the deployment (each with a fair-share weight, a priority
class, and optional byte / stream / concurrency budgets), an ensemble
scheduler orders queued workflow submissions (FIFO, strict priority, or
weighted fair share over bytes staged to date), and an
:class:`AdmissionController` admits them into a bounded set of execution
slots with per-tenant caps and backpressure against policy-memory growth.

The package is deliberately independent of the experiment runner: it
deals in opaque :class:`Submission` records and generator-valued starters,
so it can front any DES workload.  ``repro.experiments.runner`` wires it
to planned Montage workflows and the shared policy service.
"""

from repro.tenancy.admission import AdmissionConfig, AdmissionController
from repro.tenancy.registry import TenantRegistry, TenantSpec
from repro.tenancy.scheduler import (
    EnsembleScheduler,
    FairShareScheduler,
    FifoScheduler,
    StrictPriorityScheduler,
    Submission,
    TenantQuotaError,
    make_scheduler,
)

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "EnsembleScheduler",
    "FairShareScheduler",
    "FifoScheduler",
    "StrictPriorityScheduler",
    "Submission",
    "TenantQuotaError",
    "TenantRegistry",
    "TenantSpec",
    "make_scheduler",
]
