"""Ensemble scheduling: which queued workflow runs next.

Three orderings over the submission queue, all deterministic:

``FifoScheduler``
    Strict arrival order; the pre-tenancy ensemble behaviour.
``StrictPriorityScheduler``
    Highest tenant ``priority_class`` first; FIFO within a class.
``FairShareScheduler``
    Stride scheduling over *bytes staged to date*: each tenant carries a
    virtual ``pass`` value (charged bytes divided by its weight) and the
    tenant with the smallest pass runs next, so long-run bytes converge
    to the weight ratios.  Priority classes still dominate — a higher
    class always beats a lower one — and ties fall back to arrival order,
    which keeps the schedule a pure function of the submission sequence.

Charging is the scheduler's only mutable state: the admission controller
charges each submission's *estimated* bytes when it admits (so a burst of
admissions spreads across tenants immediately) and reconciles against
actual bytes on completion.  ``seed_charges`` restores the ledgers from a
recovered policy service so an ensemble resumed after a crash reproduces
the same admission decisions it would have made uninterrupted.

Byte quotas are enforced at submission time: a submission whose tenant
has already charged ``max_bytes`` (or would exceed it with this
estimate) raises :class:`TenantQuotaError` — rejected at the door, never
queued and starved.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.tenancy.registry import TenantRegistry

__all__ = [
    "Submission",
    "TenantQuotaError",
    "EnsembleScheduler",
    "FifoScheduler",
    "StrictPriorityScheduler",
    "FairShareScheduler",
    "make_scheduler",
]


class TenantQuotaError(RuntimeError):
    """A submission would exceed its tenant's aggregate byte budget."""


@dataclass(frozen=True)
class Submission:
    """One queued unit of work (the payload is opaque to this package)."""

    seq: int
    tenant: str
    name: str
    est_bytes: float = 0.0
    payload: Any = None


class EnsembleScheduler:
    """Base queue: submit / select / charge.  Subclasses define the order."""

    def __init__(self, registry: TenantRegistry):
        self.registry = registry
        self._queue: list[Submission] = []
        self._seq = 0
        #: bytes charged per tenant (estimates at admit, reconciled on completion)
        self.charged: dict[str, float] = {}

    # -- queue ----------------------------------------------------------------
    def submit(
        self,
        tenant: str,
        name: str,
        est_bytes: float = 0.0,
        payload: Any = None,
    ) -> Submission:
        """Queue one unit of work; raises on unknown tenant or blown quota."""
        spec = self.registry.get(tenant)
        if not isinstance(est_bytes, (int, float)) or isinstance(est_bytes, bool) \
                or not math.isfinite(est_bytes) or est_bytes < 0:
            raise ValueError(f"est_bytes must be a finite number >= 0, got {est_bytes!r}")
        if spec.max_bytes is not None:
            # Project over the ledger (admitted + completed work) plus the
            # still-queued estimates, so a burst of submissions cannot
            # collectively overshoot the budget before any is admitted.
            queued = sum(s.est_bytes for s in self._queue if s.tenant == tenant)
            projected = self.charged.get(tenant, 0.0) + queued + float(est_bytes)
            if projected > spec.max_bytes:
                raise TenantQuotaError(
                    f"tenant {tenant!r} byte quota exhausted: "
                    f"{projected:.0f} projected > {spec.max_bytes:.0f} allowed"
                )
        self._seq += 1
        sub = Submission(self._seq, tenant, name, float(est_bytes), payload)
        self._queue.append(sub)
        return sub

    def select(
        self, eligible: Optional[Callable[[Submission], bool]] = None
    ) -> Optional[Submission]:
        """Pop the next submission to run (restricted to ``eligible`` ones)."""
        candidates = [s for s in self._queue if eligible is None or eligible(s)]
        if not candidates:
            return None
        chosen = min(candidates, key=self._key)
        self._queue.remove(chosen)
        return chosen

    def peek_queue(self) -> list[Submission]:
        return sorted(self._queue, key=self._key)

    def __len__(self) -> int:
        return len(self._queue)

    # -- ledgers --------------------------------------------------------------
    def charge(self, tenant: str, nbytes: float) -> float:
        """Add (possibly negative, for reconciliation) bytes to a tenant."""
        total = max(0.0, self.charged.get(tenant, 0.0) + float(nbytes))
        self.charged[tenant] = total
        return total

    def seed_charges(self, charges: dict[str, float]) -> None:
        """Restore per-tenant ledgers (crash recovery / warm restart)."""
        for tenant, nbytes in charges.items():
            self.charged[tenant] = max(0.0, float(nbytes))

    # -- ordering -------------------------------------------------------------
    def _key(self, sub: Submission):
        raise NotImplementedError


class FifoScheduler(EnsembleScheduler):
    """Arrival order, tenants ignored (the legacy ensemble manager)."""

    def _key(self, sub: Submission):
        return (sub.seq,)


class StrictPriorityScheduler(EnsembleScheduler):
    """Highest tenant priority class first; FIFO within a class."""

    def _key(self, sub: Submission):
        return (-self.registry.get(sub.tenant).priority_class, sub.seq)


class FairShareScheduler(EnsembleScheduler):
    """Weighted fair queueing (stride) over bytes staged to date."""

    def virtual_pass(self, tenant: str) -> float:
        return self.charged.get(tenant, 0.0) / self.registry.get(tenant).weight

    def _key(self, sub: Submission):
        spec = self.registry.get(sub.tenant)
        return (-spec.priority_class, self.virtual_pass(sub.tenant), sub.seq)


_SCHEDULERS = {
    "fifo": FifoScheduler,
    "priority": StrictPriorityScheduler,
    "fair": FairShareScheduler,
}


def make_scheduler(kind: str, registry: TenantRegistry) -> EnsembleScheduler:
    """Instantiate a scheduler by name (``fifo`` / ``priority`` / ``fair``)."""
    try:
        cls = _SCHEDULERS[kind]
    except KeyError:
        raise ValueError(
            f"unknown scheduler {kind!r} (choose from {sorted(_SCHEDULERS)})"
        ) from None
    return cls(registry)
