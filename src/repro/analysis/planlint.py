"""Plan validator: data-flow checks over executable workflow DAGs.

Checks (stable ids; see ``docs/analysis.md``):

========  ========  ==========================================================
P001      error     the plan graph is not a DAG (dependency cycle); the
                    remaining checks are skipped because ancestor queries
                    are meaningless on a cyclic graph.
P002      warning   a stage-in moves a file no compute job consumes — the
                    transfer is wasted bandwidth and scratch space.
P003      error     a cleanup job for a file is not ordered after every
                    consumer of that file — the file can be deleted while
                    a reader still needs it.
P004      error     a file is consumed (compute input or stage-out source)
                    but never produced by a compute job nor fetched by a
                    stage-in — the consumer would find nothing on scratch.
========  ========  ==========================================================

Consumers come from :attr:`~repro.planner.executable.ExecutableJob.input_files`
(compute) and staging transfer sources (stage-out); producers from
``output_files`` (compute) and staging transfer destinations (stage-in).
"""

from __future__ import annotations

import networkx as nx

from repro.analysis.findings import Report, Severity
from repro.planner.executable import ExecutableWorkflow, JobKind

__all__ = ["lint_plan"]


def _file_flows(plan: ExecutableWorkflow):
    """lfn -> producer job ids / consumer job ids / cleanup job ids."""
    producers: dict[str, set[str]] = {}
    consumers: dict[str, set[str]] = {}
    cleanups: dict[str, set[str]] = {}
    for job_id, job in plan.jobs.items():
        if job.kind == JobKind.COMPUTE:
            for lfn, _size in job.output_files:
                producers.setdefault(lfn, set()).add(job_id)
            for lfn, _size in job.input_files:
                consumers.setdefault(lfn, set()).add(job_id)
        elif job.kind == JobKind.STAGE_IN:
            for t in job.transfers:
                producers.setdefault(t.lfn, set()).add(job_id)
        elif job.kind == JobKind.STAGE_OUT:
            for t in job.transfers:
                consumers.setdefault(t.lfn, set()).add(job_id)
        elif job.kind == JobKind.CLEANUP:
            for lfn, _url in job.cleanup_files:
                cleanups.setdefault(lfn, set()).add(job_id)
    return producers, consumers, cleanups


def lint_plan(plan: ExecutableWorkflow) -> Report:
    """Run every plan check over an executable workflow."""
    report = Report(f"plan:{plan.name}")
    graph = plan.graph()

    if not nx.is_directed_acyclic_graph(graph):
        cycle = nx.find_cycle(graph)
        path = " -> ".join(edge[0] for edge in cycle) + f" -> {cycle[0][0]}"
        report.add(
            "P001",
            Severity.ERROR,
            cycle[0][0],
            f"plan dependency cycle: {path}",
            cycle=[edge[0] for edge in cycle],
        )
        return report  # ancestor-based checks are meaningless on a cycle

    producers, consumers, cleanups = _file_flows(plan)

    # P002: stage-ins whose files feed no compute job.
    for job in plan.by_kind(JobKind.STAGE_IN):
        unused = sorted(
            t.lfn
            for t in job.transfers
            if not any(
                plan.jobs[c].kind == JobKind.COMPUTE
                for c in consumers.get(t.lfn, ())
            )
        )
        if unused:
            report.add(
                "P002",
                Severity.WARNING,
                job.id,
                f"stage-in fetches {', '.join(unused)} but no compute job "
                f"consumes the file(s) — wasted transfer and scratch space",
                files=unused,
            )

    # P003: cleanup ordered before a consumer of its file.
    for lfn, cleanup_ids in sorted(cleanups.items()):
        users = consumers.get(lfn, set())
        for cleanup_id in sorted(cleanup_ids):
            ancestors = nx.ancestors(graph, cleanup_id)
            early = sorted(u for u in users if u not in ancestors)
            if early:
                report.add(
                    "P003",
                    Severity.ERROR,
                    cleanup_id,
                    f"cleanup of {lfn!r} is not ordered after consumer(s) "
                    f"{', '.join(early)} — the file can be deleted before "
                    f"its last reader runs",
                    file=lfn,
                    unordered_consumers=early,
                )

    # P004: consumed files with no producer or stage-in.
    for lfn, users in sorted(consumers.items()):
        if lfn in producers:
            continue
        report.add(
            "P004",
            Severity.ERROR,
            sorted(users)[0],
            f"file {lfn!r} is consumed by {', '.join(sorted(users))} but "
            f"never produced by a compute job nor fetched by a stage-in",
            file=lfn,
            consumers=sorted(users),
        )

    return report
