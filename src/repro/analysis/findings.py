"""Shared findings model of the static-analysis subsystem.

Both analyzers — the rule-set linter (:mod:`repro.analysis.rulelint`) and
the plan validator (:mod:`repro.analysis.planlint`) — emit
:class:`Finding` records collected into a :class:`Report`.  A finding
carries a stable check id (``R001`` ... rule checks, ``P001`` ... plan
checks), a severity, the subject it is about (a rule name or job id), and
a ``file:line`` location when one is resolvable (rule actions and guards
are ordinary Python functions, so usually it is).

Suppressions
------------
A suppression spec is ``CHECK`` or ``CHECK:substring`` — e.g.
``R003`` silences every salience-tie finding, while
``R003:Remove a transfer`` silences only findings whose subject contains
that substring.  ``Report.suppress`` applies a list of specs and records
how many findings each one consumed, so dead suppressions are visible:
:func:`flag_dead_suppressions` turns specs that consumed nothing across a
whole run into S001 warnings, so stale justifications rot loudly instead
of silently masking future findings.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Iterable, Optional

__all__ = ["Severity", "Finding", "Report", "flag_dead_suppressions"]


class Severity:
    """Finding severities, ordered ``ERROR > WARNING > INFO``."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    _RANK = {ERROR: 2, WARNING: 1, INFO: 0}

    @classmethod
    def rank(cls, severity: str) -> int:
        try:
            return cls._RANK[severity]
        except KeyError:
            raise ValueError(f"unknown severity {severity!r}") from None


@dataclass(frozen=True)
class Finding:
    """One defect (or observation) surfaced by an analyzer."""

    check: str          #: stable check id, e.g. "R001"
    severity: str       #: Severity.ERROR / WARNING / INFO
    subject: str        #: rule name or plan job id the finding is about
    message: str        #: human-readable explanation
    location: Optional[str] = None   #: "file:line" when resolvable
    detail: dict = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        Severity.rank(self.severity)  # validates

    def to_dict(self) -> dict:
        doc = {
            "check": self.check,
            "severity": self.severity,
            "subject": self.subject,
            "message": self.message,
        }
        if self.location:
            doc["location"] = self.location
        if self.detail:
            doc["detail"] = self.detail
        return doc

    def render(self) -> str:
        loc = f" [{self.location}]" if self.location else ""
        return f"{self.severity.upper():7s} {self.check} {self.subject}: {self.message}{loc}"


def location_of(func) -> Optional[str]:
    """``file:line`` of a callable, when it has retrievable code."""
    code = getattr(func, "__code__", None)
    if code is None:
        return None
    return f"{code.co_filename}:{code.co_firstlineno}"


class Report:
    """An ordered collection of findings for one analysis target."""

    def __init__(self, target: str, findings: Iterable[Finding] = ()):
        self.target = target
        self.findings: list[Finding] = list(findings)
        #: suppression spec -> number of findings it consumed
        self.suppressed: dict[str, int] = {}

    def add(
        self,
        check: str,
        severity: str,
        subject: str,
        message: str,
        location: Optional[str] = None,
        **detail,
    ) -> Finding:
        finding = Finding(check, severity, subject, message, location, detail)
        self.findings.append(finding)
        return finding

    def extend(self, other: "Report") -> "Report":
        self.findings.extend(other.findings)
        for spec, count in other.suppressed.items():
            self.suppressed[spec] = self.suppressed.get(spec, 0) + count
        return self

    # -- severity accounting ------------------------------------------------
    def by_severity(self, severity: str) -> list[Finding]:
        return [f for f in self.findings if f.severity == severity]

    def errors(self) -> list[Finding]:
        return self.by_severity(Severity.ERROR)

    def at_or_above(self, severity: str) -> list[Finding]:
        floor = Severity.rank(severity)
        return [f for f in self.findings if Severity.rank(f.severity) >= floor]

    def counts(self) -> dict[str, int]:
        counts = {Severity.ERROR: 0, Severity.WARNING: 0, Severity.INFO: 0}
        for f in self.findings:
            counts[f.severity] += 1
        return counts

    # -- suppression --------------------------------------------------------
    def suppress(self, specs: Iterable[str]) -> "Report":
        """Drop findings matching the given suppression specs (in place)."""
        specs = list(specs)
        for spec in specs:
            self.suppressed.setdefault(spec, 0)
        kept = []
        for finding in self.findings:
            hit = None
            for spec in specs:
                check, _, fragment = spec.partition(":")
                if finding.check == check and (not fragment or fragment in finding.subject):
                    hit = spec
                    break
            if hit is None:
                kept.append(finding)
            else:
                self.suppressed[hit] += 1
        self.findings = kept
        return self

    # -- rendering ----------------------------------------------------------
    def sorted_findings(self) -> list[Finding]:
        return sorted(
            self.findings,
            key=lambda f: (-Severity.rank(f.severity), f.check, f.subject),
        )

    def render_text(self) -> str:
        counts = self.counts()
        lines = [
            f"== {self.target}: {counts['error']} error(s), "
            f"{counts['warning']} warning(s), {counts['info']} info =="
        ]
        lines.extend(f.render() for f in self.sorted_findings())
        for spec, count in sorted(self.suppressed.items()):
            lines.append(f"suppressed {count} finding(s) via {spec!r}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "target": self.target,
            "counts": self.counts(),
            "findings": [f.to_dict() for f in self.sorted_findings()],
            "suppressed": dict(self.suppressed),
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)


def flag_dead_suppressions(reports: Iterable["Report"]) -> Report:
    """S001 warnings for suppression specs that consumed nothing anywhere.

    A suppression that stops matching is worse than noise: it documents a
    finding that no longer exists and will silently swallow the next,
    unrelated finding that happens to share its check id and substring.
    Aggregates ``Report.suppressed`` counts across *all* reports of a run
    (a spec alive in any one report is alive), and returns a report with
    one S001 warning per globally-dead spec.
    """
    totals: dict[str, int] = {}
    for report in reports:
        for spec, count in report.suppressed.items():
            totals[spec] = totals.get(spec, 0) + count
    dead = Report("suppressions")
    for spec in sorted(totals):
        if totals[spec] == 0:
            dead.add(
                "S001",
                Severity.WARNING,
                spec,
                "suppression matched no finding in this run: it is dead — "
                "delete it (and its justification) or it will silently "
                "swallow the next finding that matches",
            )
    return dead
