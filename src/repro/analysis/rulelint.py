"""Rule-set linter: static + probing checks over built rule sets.

Checks (stable ids; see ``docs/analysis.md``):

========  ========  ==========================================================
R001      error     ``keys`` hint not implied by the guard — a keyed
                    :meth:`~repro.rules.facts.WorkingMemory.lookup` missed a
                    fact the guard accepts, so matches are silently lost.
R002      error     guard/key/Test references an attribute that does not
                    exist on the bound ``Fact`` class.
R003      warning   ambiguous salience tie — two equal-salience rules
                    activated on the same fact tuple; only definition order
                    decides which fires first.
R004      warning   shadowing — every probed activation of a lower-salience
                    rule is claimed by a higher-salience rule that consumes
                    (updates/retracts) the shared facts.
R005      error     divergence — the rule re-fires without bound when run
                    alone on a random memory (``update`` of a matched type
                    without ``no_loop`` or a guard flip).
R006      warning   unreachable — a positive condition type is never
                    inserted by any rule action or service entry point.
R007      info      rule→fact read/write dependency cycle (feedback loop
                    across rules; usually intentional, always worth knowing).
R008      warning   salience is not a named tier from
                    :mod:`repro.policy.salience` (magic number), or —
                    error — the tier ordering invariants are broken.
R009      warning   compiled-engine fast path — a join-plan rule whose
                    *last* pattern declares no ``keys``, so the lazy probe
                    walks the whole prefix frontier instead of one bucket;
                    info — a multi-pattern rule that falls back to the
                    ``delta`` plan (reported with the compiler's reason).
R010      error     duplicate rule name across the loaded packs — names key
                    profiling rows, suppressions, and the compiler's plan
                    report, so a collision silently merges two rules'
                    diagnostics (and usually means a pack was loaded twice).
========  ========  ==========================================================

Dynamic checks (R001/R003/R004/R005) probe the rule set against randomized
working memories built from the declared fact schemas, with value pools
harvested from the guards' own constants (:mod:`repro.analysis.probing`).
The probing is seeded and deterministic per (seed, trials) so CI runs are
reproducible.
"""

from __future__ import annotations

import itertools
import random
from typing import Callable, Iterable, Optional, Sequence, Type

import networkx as nx

from repro.analysis.findings import Report, Severity, location_of
from repro.analysis.probing import (
    FactFactory,
    clone_memory,
    fact_schema,
    guard_attribute_refs,
    harvest_constants,
    referenced_fact_types,
    snapshot_memory,
)
from repro.policy import salience
from repro.rules.engine import Rule, RuleEngineError, Session
from repro.rules.facts import Fact, WorkingMemory
from repro.rules.patterns import Absent, Collect, Exists, Pattern, Test, _TypedElement

__all__ = ["lint_rules", "lint_rule_set", "shipped_rule_sets", "SERVICE_ENTRY_TYPES"]


def _guard_accepts(guard, fact, bindings) -> bool:
    """Engine guard semantics, hardened for synthetic facts: AttributeError
    means "no match" (as in ``patterns._check``); any other exception from a
    randomized value also counts as no match rather than a linter crash."""
    if guard is None:
        return True
    try:
        return bool(guard(fact, bindings))
    except Exception:
        return False


# --------------------------------------------------------------------------
# Shipped rule sets (mirrors PolicyService composition)
# --------------------------------------------------------------------------
#: fact types the service inserts directly from its entry points
#: (request_transfers, request_cleanups, reap_expired, reconcile_staged,
#: deny_host, set_quota, register_priorities)
def _service_entry_types() -> tuple[Type[Fact], ...]:
    from repro.datacatalog.model import (
        EvictionSweepFact,
        ReplicaRecordFact,
        SiteCapacityFact,
    )
    from repro.policy.model import (
        CleanupFact,
        LeaseSweepFact,
        StagedFileFact,
        TransferFact,
    )
    from repro.policy.rules_access import HostDenialFact, WorkflowQuotaFact
    from repro.policy.rules_fairshare import TenantFact, TenantWorkflowFact
    from repro.policy.rules_priority import JobPriorityFact

    return (
        TransferFact,
        CleanupFact,
        LeaseSweepFact,
        StagedFileFact,
        HostDenialFact,
        WorkflowQuotaFact,
        JobPriorityFact,
        TenantFact,
        TenantWorkflowFact,
        ReplicaRecordFact,
        SiteCapacityFact,
        EvictionSweepFact,
    )


SERVICE_ENTRY_TYPES: Callable[[], tuple[Type[Fact], ...]] = _service_entry_types


def shipped_rule_sets() -> dict[str, tuple[list[Rule], dict]]:
    """name -> (rules, session globals), matching PolicyService composition."""
    from repro.datacatalog.model import CatalogConfig
    from repro.datacatalog.rules_eviction import eviction_rules
    from repro.policy.model import PolicyConfig
    from repro.policy.rules_access import access_rules
    from repro.policy.rules_balanced import balanced_rules
    from repro.policy.rules_common import common_rules
    from repro.policy.rules_fairshare import fairshare_rules
    from repro.policy.rules_greedy import greedy_rules
    from repro.policy.rules_priority import priority_rules

    def build(config, *packs):
        # fairshare is always composed by the service (inert without
        # tenant facts), so every shipped set carries it too.
        rules = list(common_rules()) + list(priority_rules()) + list(fairshare_rules())
        for pack in packs:
            rules += list(pack())
        return rules, {"config": config, "group_counter": 1}

    return {
        "fifo": build(PolicyConfig(policy="fifo")),
        "greedy": build(PolicyConfig(policy="greedy"), greedy_rules),
        "balanced": build(
            PolicyConfig(policy="balanced", cluster_count=2), balanced_rules
        ),
        "access": build(
            PolicyConfig(policy="greedy", access_control=True),
            access_rules,
            greedy_rules,
        ),
        "priority": build(
            PolicyConfig(policy="greedy", order_by="priority"), greedy_rules
        ),
        "access_balanced": build(
            PolicyConfig(policy="balanced", cluster_count=2, access_control=True),
            access_rules,
            balanced_rules,
        ),
        "catalog": build(
            PolicyConfig(
                policy="greedy",
                catalog=CatalogConfig(default_capacity=1e9),
            ),
            greedy_rules,
            eviction_rules,
        ),
    }


# --------------------------------------------------------------------------
# Static structure helpers
# --------------------------------------------------------------------------
def _condition_types(rule: Rule) -> set[Type[Fact]]:
    return {e.fact_type for e in rule.when if isinstance(e, _TypedElement)}


def _positive_types(rule: Rule) -> set[Type[Fact]]:
    """Types a rule needs at least one live fact of to ever activate."""
    return {
        e.fact_type
        for e in rule.when
        if isinstance(e, (Pattern, Exists))
        or (isinstance(e, Collect) and e.min_count > 0)
    }


def _bound_types(rule: Rule) -> dict[str, Type[Fact]]:
    """binding name -> fact type for Pattern bindings (Collect binds lists)."""
    bound: dict[str, Type[Fact]] = {}
    for element in rule.when:
        if isinstance(element, Pattern) and element.binding:
            bound[element.binding] = element.fact_type
    return bound


def _action_writes(rule: Rule) -> set[Type[Fact]]:
    """Over-approximate fact types a rule's action may insert or mutate:
    Fact classes its action references, plus — when the action calls
    ``update``/``retract`` — every type the rule binds."""
    from repro.analysis.probing import callable_names

    writes = set(referenced_fact_types(rule.then))
    names = callable_names(rule.then)
    if {"update", "retract", "insert"} & names:
        writes |= _condition_types(rule)
    return writes


def _rule_signature(rule: Rule) -> tuple[str, ...]:
    return tuple(sorted(t.__name__ for t in _condition_types(rule)))


def _activation_fids(memory: WorkingMemory, bindings: dict) -> tuple[int, ...]:
    fids = []
    for value in bindings.values():
        if isinstance(value, Fact) and memory.contains(value):
            fids.append(memory.fid_of(value))
        elif isinstance(value, list):
            fids.extend(
                memory.fid_of(f)
                for f in value
                if isinstance(f, Fact) and memory.contains(f)
            )
    return tuple(sorted(fids))


# --------------------------------------------------------------------------
# R002: unknown attribute references
# --------------------------------------------------------------------------
def _known_attrs(fact_type: Type[Fact], factory: FactFactory, cache: dict) -> set[str]:
    attrs = cache.get(fact_type)
    if attrs is None:
        attrs = fact_schema(fact_type, factory)
        attrs |= {n for n in dir(fact_type) if not n.startswith("_")}
        cache[fact_type] = attrs
    return attrs


def _check_attribute_refs(rule: Rule, factory: FactFactory, report: Report) -> None:
    cache: dict = {}
    bound = _bound_types(rule)

    def verify(func, fact_type: Optional[Type[Fact]], bindings_param, where: str):
        tag = "self" if fact_type is not None else None
        for owner, attr in guard_attribute_refs(func, tag, bindings_param):
            if owner == "self":
                target = fact_type
            elif owner.startswith("binding:"):
                target = bound.get(owner.split(":", 1)[1])
            else:
                target = None
            if target is None:
                continue
            if attr not in _known_attrs(target, factory, cache):
                report.add(
                    "R002",
                    Severity.ERROR,
                    rule.name,
                    f"{where} references {target.__name__}.{attr}, "
                    f"which does not exist on the fact class",
                    location=location_of(func),
                    attribute=attr,
                    fact_type=target.__name__,
                )

    for position, element in enumerate(rule.when):
        if isinstance(element, Test):
            verify(element.predicate, None, _first_param(element.predicate),
                   f"Test predicate (condition {position})")
            continue
        if not isinstance(element, _TypedElement):
            continue
        if element.where is not None:
            verify(element.where, element.fact_type, _second_param(element.where),
                   f"guard (condition {position})")
        if element.keys:
            known = _known_attrs(element.fact_type, factory, cache)
            for attr, fn in element.keys.items():
                if attr not in known:
                    report.add(
                        "R002",
                        Severity.ERROR,
                        rule.name,
                        f"keys hint names {element.fact_type.__name__}.{attr}, "
                        f"which does not exist on the fact class",
                        location=location_of(fn),
                        attribute=attr,
                        fact_type=element.fact_type.__name__,
                    )
                verify(fn, None, _first_param(fn),
                       f"keys[{attr!r}] (condition {position})")


def _first_param(func) -> Optional[str]:
    code = getattr(func, "__code__", None)
    if code is None or code.co_argcount < 1:
        return None
    return code.co_varnames[0]


def _second_param(func) -> Optional[str]:
    code = getattr(func, "__code__", None)
    if code is None or code.co_argcount < 2:
        return None
    return code.co_varnames[1]


# --------------------------------------------------------------------------
# Randomized memory construction
# --------------------------------------------------------------------------
def _rule_set_functions(rules: Sequence[Rule]) -> list[Callable]:
    funcs: list[Callable] = []
    for rule in rules:
        funcs.append(rule.then)
        for element in rule.when:
            if isinstance(element, Test):
                funcs.append(element.predicate)
            elif isinstance(element, _TypedElement):
                if element.where is not None:
                    funcs.append(element.where)
                if element.keys:
                    funcs.extend(element.keys.values())
    return funcs


def _universe(rules: Sequence[Rule]) -> list[Type[Fact]]:
    types: set[Type[Fact]] = set()
    for rule in rules:
        types |= _condition_types(rule)
    return sorted(types, key=lambda t: t.__name__)


def _random_memory(
    universe: Sequence[Type[Fact]], factory: FactFactory, per_type: int = 4
) -> WorkingMemory:
    memory = WorkingMemory(indexed=True)
    for fact_type in universe:
        for _ in range(factory.rng.randint(1, per_type)):
            fact = factory.make_random(fact_type)
            if fact is not None:
                memory.insert(fact)
    return memory


# --------------------------------------------------------------------------
# R001: keys-vs-guard soundness
# --------------------------------------------------------------------------
def _check_keys_soundness(
    rule: Rule,
    position: int,
    element: _TypedElement,
    memory: WorkingMemory,
    bindings: dict,
    report: Report,
    reported: set,
) -> None:
    marker = (rule.name, position)
    if marker in reported or not element.keys:
        return
    try:
        values = {attr: fn(bindings) for attr, fn in element.keys.items()}
    except AttributeError:
        return  # engine falls back to a full scan: sound by construction
    except Exception as exc:
        reported.add(marker)
        report.add(
            "R001",
            Severity.ERROR,
            rule.name,
            f"keys hint on condition {position} "
            f"({element.fact_type.__name__}) raised {exc!r}; the engine only "
            f"tolerates AttributeError",
            location=location_of(next(iter(element.keys.values()))),
            position=position,
        )
        return
    keyed_ids = {id(f) for f in memory.lookup(element.fact_type, **values)}
    for fact in memory.facts_of(element.fact_type):
        if id(fact) in keyed_ids:
            continue
        if _guard_accepts(element.where, fact, bindings):
            reported.add(marker)
            report.add(
                "R001",
                Severity.ERROR,
                rule.name,
                f"keys hint on condition {position} "
                f"({element.fact_type.__name__}) is not implied by the guard: "
                f"keyed lookup {values!r} misses a guard-accepted fact "
                f"({fact.describe()}) — matches would be silently lost",
                location=location_of(next(iter(element.keys.values()))),
                position=position,
                key_values={k: repr(v) for k, v in values.items()},
            )
            return


def _probe_rule(
    rule: Rule,
    memory: WorkingMemory,
    seed_bindings: dict,
    report: Report,
    reported: set,
) -> None:
    """Guard-only walk of the LHS, probing every keyed element's soundness
    against every reachable binding environment."""
    frontier: list[dict] = [dict(seed_bindings)]
    for position, element in enumerate(rule.when):
        if isinstance(element, Test):
            kept = []
            for bindings in frontier:
                try:
                    if element.predicate(bindings):
                        kept.append(bindings)
                except Exception:
                    pass
            frontier = kept
            continue
        if not isinstance(element, _TypedElement):
            continue
        if element.keys:
            for bindings in frontier:
                _check_keys_soundness(
                    rule, position, element, memory, bindings, report, reported
                )
        next_frontier: list[dict] = []
        for bindings in frontier:
            accepted = [
                f
                for f in memory.facts_of(element.fact_type)
                if _guard_accepts(element.where, f, bindings)
            ]
            if isinstance(element, Pattern):
                for fact in accepted:
                    new = dict(bindings)
                    if element.binding:
                        new[element.binding] = fact
                    next_frontier.append(new)
            elif isinstance(element, Absent):
                if not accepted:
                    next_frontier.append(dict(bindings))
            elif isinstance(element, Exists):
                if accepted:
                    next_frontier.append(dict(bindings))
            elif isinstance(element, Collect):
                if len(accepted) >= element.min_count:
                    new = dict(bindings)
                    new[element.binding] = accepted
                    next_frontier.append(new)
        frontier = next_frontier
        if not frontier:
            return


# --------------------------------------------------------------------------
# R005: divergence probe
# --------------------------------------------------------------------------
def _probe_divergence(
    rule: Rule,
    soup: Sequence[tuple],
    session_globals: dict,
    report: Report,
) -> None:
    """Run the rule alone over a clone of a cached probe soup.  The clone
    keeps the single-rule session's mutations away from the shared
    snapshots, at a fraction of the cost of re-synthesizing facts."""
    memory = clone_memory(soup)
    probe_globals = dict(session_globals)
    session = Session(
        [rule], memory=memory, globals=probe_globals, max_firings=500, incremental=True
    )
    try:
        session.fire_all()
    except RuleEngineError:
        report.add(
            "R005",
            Severity.ERROR,
            rule.name,
            "rule re-fires without bound when run alone on a random memory "
            "(updates a matched fact type without no_loop, or a guard that "
            "its own action never falsifies)",
            location=location_of(rule.then),
        )
    except Exception:
        # The action choked on synthetic fact values — inconclusive, and the
        # engine would surface a genuine action bug at runtime anyway.
        pass


# --------------------------------------------------------------------------
# R006 / R007: reachability and dependency cycles
# --------------------------------------------------------------------------
def _check_reachability(
    rules: Sequence[Rule], entry_types: Iterable[Type[Fact]], report: Report
) -> None:
    insertable: set[Type[Fact]] = set(entry_types)
    for rule in rules:
        insertable |= _action_writes(rule)
    for rule in rules:
        missing = [
            t.__name__ for t in sorted(_positive_types(rule), key=lambda t: t.__name__)
            if not any(issubclass(i, t) for i in insertable)
        ]
        if missing:
            report.add(
                "R006",
                Severity.WARNING,
                rule.name,
                f"unreachable: no rule action or service entry point ever "
                f"inserts {', '.join(missing)}, so this rule can never "
                f"activate",
                location=location_of(rule.then),
                missing_types=missing,
            )


def _check_dependency_cycles(rules: Sequence[Rule], report: Report) -> None:
    graph = nx.DiGraph()
    writes: dict[str, set[Type[Fact]]] = {}
    reads: dict[str, set[Type[Fact]]] = {}
    for rule in rules:
        graph.add_node(rule.name)
        reads[rule.name] = _condition_types(rule)
        writes[rule.name] = _action_writes(rule)
    for a, b in itertools.permutations(rules, 2):
        if writes[a.name] & reads[b.name]:
            graph.add_edge(a.name, b.name)
    for component in nx.strongly_connected_components(graph):
        if len(component) < 2:
            continue
        members = sorted(component)
        shared = set()
        for name in members:
            shared |= writes[name] & set().union(*(reads[m] for m in members))
        preview = " -> ".join(members[:3])
        if len(members) > 3:
            preview += f" -> ... ({len(members) - 3} more)"
        report.add(
            "R007",
            Severity.INFO,
            members[0],
            f"{len(members)} rules form a read/write dependency cycle "
            f"through fact type(s) "
            f"{', '.join(sorted(t.__name__ for t in shared))}: {preview}",
            rules=members,
        )


# --------------------------------------------------------------------------
# R008: salience hygiene
# --------------------------------------------------------------------------
def _check_salience_names(rules: Sequence[Rule], report: Report) -> None:
    try:
        salience.validate_ordering()
    except ValueError as exc:
        report.add(
            "R008",
            Severity.ERROR,
            "salience",
            str(exc),
            location=location_of(salience.validate_ordering),
        )
    named = set(salience.TIERS.values()) | {0}
    for rule in rules:
        if rule.salience not in named:
            report.add(
                "R008",
                Severity.WARNING,
                rule.name,
                f"salience {rule.salience} is not a named tier in "
                f"repro.policy.salience (magic number)",
                location=location_of(rule.then),
                salience=rule.salience,
            )


# --------------------------------------------------------------------------
# R009: compiled-engine fast path
# --------------------------------------------------------------------------
def _check_fast_path(rules: Sequence[Rule], report: Report) -> None:
    from repro.rules.compiler import PLAN_JOIN, fast_path_report

    patterns_of = {rule.name: rule for rule in rules}
    for row in fast_path_report(rules):
        rule = patterns_of[row["rule"]]
        if row["plan"] == PLAN_JOIN:
            if row["last_position_keyed"] is False:
                report.add(
                    "R009",
                    Severity.WARNING,
                    rule.name,
                    "join-plan rule whose last pattern declares no `keys`: "
                    "the compiled engine's lazy probe walks the whole "
                    "partial-match frontier instead of one bucket on every "
                    "update of the last position's fact type",
                    location=location_of(rule.then),
                    plan=row["plan"],
                )
        elif len([el for el in rule.when if isinstance(el, Pattern)]) >= 2:
            report.add(
                "R009",
                Severity.INFO,
                rule.name,
                f"multi-pattern rule runs on the delta plan, not the join "
                f"network: {row['reason']}",
                location=location_of(rule.then),
                plan=row["plan"],
                reason=row["reason"],
            )


# --------------------------------------------------------------------------
# R010: duplicate rule names across packs
# --------------------------------------------------------------------------
def _check_duplicate_names(rules: Sequence[Rule], report: Report) -> None:
    first_seen: dict[str, Rule] = {}
    for rule in rules:
        if rule.name in first_seen:
            original = first_seen[rule.name]
            report.add(
                "R010",
                Severity.ERROR,
                rule.name,
                f"rule name {rule.name!r} is defined more than once across "
                f"the loaded packs (first at "
                f"{location_of(original.then)}); names key profiling, "
                f"suppressions, and plan reports, so the duplicates' "
                f"diagnostics merge silently",
                location=location_of(rule.then),
                first_location=location_of(original.then),
            )
        else:
            first_seen[rule.name] = rule


# --------------------------------------------------------------------------
# R003 / R004: ties and shadowing
# --------------------------------------------------------------------------
class _ActivationLog:
    """Per-rule activation fid tuples accumulated across probe trials."""

    def __init__(self, rules: Sequence[Rule]):
        self.tuples: dict[str, set[tuple]] = {r.name: set() for r in rules}

    def record(
        self, trial: int, rules: Sequence[Rule], memory: WorkingMemory, seed: dict
    ) -> None:
        # Fact ids restart for every probe memory, so tuples are tagged
        # with the trial index — overlap must happen within one memory.
        for rule in rules:
            try:
                matches = rule.matches(memory, dict(seed))
            except Exception:
                continue
            for bindings in matches:
                fids = _activation_fids(memory, bindings)
                if fids:
                    self.tuples[rule.name].add((trial, fids))


def _check_ties_and_shadowing(
    rules: Sequence[Rule], log: _ActivationLog, report: Report
) -> None:
    by_signature: dict[tuple, list[Rule]] = {}
    for rule in rules:
        by_signature.setdefault(_rule_signature(rule), []).append(rule)
    from repro.analysis.probing import callable_names

    for group in by_signature.values():
        for a, b in itertools.combinations(group, 2):
            shared = log.tuples[a.name] & log.tuples[b.name]
            if a.salience == b.salience:
                if shared:
                    report.add(
                        "R003",
                        Severity.WARNING,
                        a.name,
                        f"ambiguous salience tie with {b.name!r} (both "
                        f"{a.salience}): probing activated both rules on the "
                        f"same fact tuple; only definition order decides "
                        f"which fires first",
                        location=location_of(a.then),
                        other=b.name,
                        salience=a.salience,
                    )
                continue
            high, low = (a, b) if a.salience > b.salience else (b, a)
            low_tuples = log.tuples[low.name]
            if not low_tuples or not low_tuples <= log.tuples[high.name]:
                continue
            if {"retract", "update"} & callable_names(high.then):
                report.add(
                    "R004",
                    Severity.WARNING,
                    low.name,
                    f"shadowed by {high.name!r} (salience {high.salience} > "
                    f"{low.salience}): every probed activation of this rule "
                    f"is also claimed by the higher rule, whose action "
                    f"consumes the shared facts",
                    location=location_of(low.then),
                    shadowed_by=high.name,
                )


# --------------------------------------------------------------------------
# Entry points
# --------------------------------------------------------------------------
def lint_rules(
    name: str,
    rules: Sequence[Rule],
    session_globals: Optional[dict] = None,
    entry_types: Optional[Iterable[Type[Fact]]] = None,
    seed: int = 0,
    trials: int = 25,
) -> Report:
    """Run every rule-set check over ``rules``; returns a :class:`Report`."""
    report = Report(f"rules:{name}")
    session_globals = dict(session_globals or {})
    if entry_types is None:
        entry_types = _service_entry_types()

    rng = random.Random(seed)
    pools = harvest_constants(_rule_set_functions(rules))
    factory = FactFactory(rng, pools)
    universe = _universe(rules)
    seed_bindings = {"_globals": session_globals}

    # Static checks first (no probing required).
    _check_duplicate_names(rules, report)
    for rule in rules:
        _check_attribute_refs(rule, factory, report)
    _check_reachability(rules, entry_types, report)
    _check_dependency_cycles(rules, report)
    _check_salience_names(rules, report)
    _check_fast_path(rules, report)

    # Probing: keys soundness + activation log for ties/shadowing.  The
    # randomized probe memories are snapshotted once and reused (cloned)
    # by every later check instead of re-synthesizing facts per check.
    keys_reported: set = set()
    log = _ActivationLog(rules)
    probe_soups: list[list] = []
    for _trial in range(trials):
        memory = _random_memory(universe, factory)
        probe_soups.append(snapshot_memory(memory))
        for rule in rules:
            _probe_rule(rule, memory, seed_bindings, report, keys_reported)
        log.record(_trial, rules, memory, seed_bindings)
    _check_ties_and_shadowing(rules, log, report)

    # Divergence: each rule alone against clones of the cached soups.
    if not probe_soups:
        probe_soups.append(snapshot_memory(_random_memory(universe, factory)))
    for index, rule in enumerate(rules):
        _probe_divergence(
            rule, probe_soups[index % len(probe_soups)], session_globals, report
        )

    return report


def lint_rule_set(name: str, seed: int = 0, trials: int = 25) -> Report:
    """Lint one shipped rule set by name (see :func:`shipped_rule_sets`)."""
    sets = shipped_rule_sets()
    if name not in sets:
        raise ValueError(
            f"unknown rule set {name!r}; shipped sets: {sorted(sets)}"
        )
    rules, session_globals = sets[name]
    return lint_rules(name, rules, session_globals, seed=seed, trials=trials)
