"""Rule-interaction graph: who produces, consumes, updates and retracts what.

The verifier's static substrate.  Every rule is summarized into a
:class:`RuleIO` — fact types and attributes its conditions read (with the
*necessary equality domains* its guards impose on each candidate) and the
working-memory effects of its action (from bytecode scanning, see
:func:`repro.analysis.probing.action_effects`).  :class:`InteractionGraph`
then materializes directed edges "firing A can change what B sees":

* ``insert``  — A inserts a type some element of B matches on
* ``update``  — A updates attributes B's guards/keys read
* ``retract`` — A retracts a type some element of B matches on

An abstract-interpretation pass over the guard attribute domains prunes
edges that cannot happen: an update whose candidate's ``status`` is
provably outside the reader's accepted set both before and after the
write, a retract whose candidate domain is disjoint from the reader's,
an insert whose unconditional constructor state the reader rejects.
Pruned edges are kept (``feasible=False``) for explainability; all
graph consumers look only at feasible ones.

Everything here over-approximates on uncertainty: opaque actions (targets
resolved through memory scans) interfere with every referenced type, and
guards that delegate to module-level helpers drop attribute-level read
precision (``reads=None`` = "may read anything").  Under-approximation
only enters through the *domains*, which are themselves conservative
(``None`` whenever a guard has OR-shaped control flow).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Optional, Sequence, Type

from repro.analysis.probing import (
    ActionEffects,
    FactFactory,
    action_effects,
    callable_names,
    entry_defaults,
    guard_attribute_refs,
    guard_constraint_domains,
    referenced_fact_types,
    signature_of,
)
from repro.rules.engine import Rule
from repro.rules.facts import Fact
from repro.rules.patterns import Absent, Collect, Exists, Pattern, Test, _TypedElement

__all__ = [
    "ElementIO",
    "RuleIO",
    "Edge",
    "InteractionGraph",
    "rule_io",
    "build_graph",
]


def _first_param(func) -> Optional[str]:
    code = getattr(func, "__code__", None)
    if code is None or code.co_argcount < 1:
        return None
    return code.co_varnames[0]


def _second_param(func) -> Optional[str]:
    code = getattr(func, "__code__", None)
    if code is None or code.co_argcount < 2:
        return None
    return code.co_varnames[1]


def _guard_scan_exact(func) -> bool:
    """True when bytecode scanning sees *every* attribute the guard reads.

    A guard that calls a module-level helper function hands its candidate
    to code the flat attribute scanner does not follow, so its read set
    must be treated as "anything".  (Builtins and methods are fine — they
    cannot reach back into working-memory facts we track.)
    """
    if func is None:
        return True
    code = getattr(func, "__code__", None)
    if code is None:
        return False
    module_globals = getattr(func, "__globals__", {})
    for name in callable_names(func):
        target = module_globals.get(name)
        if (
            callable(target)
            and not isinstance(target, type)
            and getattr(target, "__code__", None) is not None
        ):
            return False
    return True


@dataclass
class ElementIO:
    """One typed condition element of a rule, with its guard summary."""

    index: int
    kind: str                       #: "pattern" | "absent" | "exists" | "collect"
    fact_type: Type[Fact]
    positive: bool                  #: needs a live fact to let the rule through
    binding: Optional[str]
    #: necessary equality constraints the guard imposes on the candidate
    #: (None = guard has no conjunctive reading; {} = no constraints known)
    domains: Optional[dict[str, frozenset]]
    #: candidate attributes the guard/keys read (None = unknown / inexact)
    reads: Optional[frozenset]


@dataclass
class RuleIO:
    """Static read/write summary of one rule."""

    rule: Rule
    order: int
    elements: list[ElementIO]
    bound_types: dict[str, Type[Fact]]
    effects: ActionEffects
    #: fact type -> attrs the rule reads anywhere (guards, keys fns, Tests);
    #: None value = "may read any attribute of this type"
    reads: dict[Type[Fact], Optional[set]]
    #: types an opaque action may write (over-approximation); empty if exact
    approx_written_types: set = field(default_factory=set)

    @property
    def name(self) -> str:
        return self.rule.name

    @property
    def salience(self) -> int:
        return self.rule.salience

    def elements_of(self, fact_type: Type[Fact]) -> list[ElementIO]:
        """Elements whose declared type is related to ``fact_type``."""
        return [
            e
            for e in self.elements
            if issubclass(fact_type, e.fact_type)
            or issubclass(e.fact_type, fact_type)
        ]

    def updated_types(self) -> set:
        out = set(self.effects.updates)
        if self.effects.opaque:
            out |= self.approx_written_types
        return out

    def updated_attrs(self, fact_type: Type[Fact]) -> Optional[set]:
        """Attrs the action may write on ``fact_type``; None = unknown/all."""
        exact = self.effects.updated_attrs(fact_type)
        if self.effects.opaque and fact_type in self.approx_written_types:
            return None
        return exact if exact else (set() if fact_type in self.effects.updates else set())


def _element_kind(element: _TypedElement) -> str:
    if isinstance(element, Pattern):
        return "pattern"
    if isinstance(element, Absent):
        return "absent"
    if isinstance(element, Exists):
        return "exists"
    if isinstance(element, Collect):
        return "collect"
    return "element"


def rule_io(rule: Rule, order: int) -> RuleIO:
    """Build the static read/write summary for one rule."""
    bound_types: dict[str, Type[Fact]] = {}
    for element in rule.when:
        if isinstance(element, (Pattern, Collect)) and element.binding:
            bound_types[element.binding] = element.fact_type

    elements: list[ElementIO] = []
    reads: dict[Type[Fact], Optional[set]] = {}

    def note_reads(fact_type: Type[Fact], attrs: Optional[Iterable]) -> None:
        if attrs is None:
            reads[fact_type] = None
            return
        known = reads.get(fact_type, set())
        if known is None:
            return
        known.update(attrs)
        reads[fact_type] = known

    for index, element in enumerate(rule.when):
        if isinstance(element, Test):
            # Test predicates read bound facts through the bindings dict.
            refs = guard_attribute_refs(
                element.predicate, None, _first_param(element.predicate)
            )
            exact = _guard_scan_exact(element.predicate)
            for tag, attr in refs:
                if tag in bound_types:
                    note_reads(bound_types[tag], (attr,))
            if not exact:
                for fact_type in bound_types.values():
                    note_reads(fact_type, None)
            continue
        if not isinstance(element, _TypedElement):
            continue

        cand_reads: Optional[set] = set()
        exact = _guard_scan_exact(element.where)
        if element.where is not None:
            refs = guard_attribute_refs(
                element.where, "cand", _second_param(element.where)
            )
            for tag, attr in refs:
                if tag == "cand":
                    cand_reads.add(attr)
                elif tag in bound_types:
                    note_reads(bound_types[tag], (attr,))
            if not exact:
                cand_reads = None
        if element.keys:
            # keyed lookup reads the key attrs on the candidate and runs
            # arbitrary fns over the bindings for the probe values.
            if cand_reads is not None:
                cand_reads.update(element.keys)
            for fn in element.keys.values():
                for tag, attr in guard_attribute_refs(fn, None, _first_param(fn)):
                    if tag in bound_types:
                        note_reads(bound_types[tag], (attr,))
                if not _guard_scan_exact(fn):
                    for fact_type in bound_types.values():
                        note_reads(fact_type, None)

        note_reads(element.fact_type, cand_reads)
        elements.append(
            ElementIO(
                index=index,
                kind=_element_kind(element),
                fact_type=element.fact_type,
                positive=isinstance(element, (Pattern, Exists))
                or (isinstance(element, Collect) and element.min_count > 0),
                binding=getattr(element, "binding", None),
                domains=guard_constraint_domains(element.where),
                reads=frozenset(cand_reads) if cand_reads is not None else None,
            )
        )

    effects = action_effects(rule.then, bound_types)
    io = RuleIO(
        rule=rule,
        order=order,
        elements=elements,
        bound_types=bound_types,
        effects=effects,
        reads=reads,
    )
    if effects.opaque:
        approx = set(referenced_fact_types(rule.then))
        if {"update", "retract", "insert"} & callable_names(rule.then):
            approx |= {e.fact_type for e in elements}
        io.approx_written_types = approx
    return io


# --------------------------------------------------------------------------
# Edges
# --------------------------------------------------------------------------
@dataclass
class Edge:
    """Directed interaction: firing ``src`` can change what ``dst`` sees."""

    src: str
    dst: str
    kind: str                   #: "insert" | "update" | "retract"
    fact_type: Type[Fact]
    attrs: Optional[tuple]      #: overlapping attrs for updates (None = all)
    feasible: bool
    reason: str

    def describe(self) -> str:
        via = "" if not self.attrs else f" via {','.join(sorted(self.attrs))}"
        return f"{self.src} --{self.kind} {self.fact_type.__name__}{via}--> {self.dst}"


def _domain_union(
    elements: Sequence[ElementIO], attr: str
) -> Optional[frozenset]:
    """Values ``attr`` may hold across a rule's candidate elements of one
    type; None = unconstrained by at least one element (no pruning)."""
    out: set = set()
    for element in elements:
        if element.domains is None or attr not in element.domains:
            return None
        out |= element.domains[attr]
    return frozenset(out) if elements else None


class InteractionGraph:
    """All pairwise interaction edges of a rule pack, feasibility-pruned."""

    def __init__(self, rules: Sequence[Rule], factory: Optional[FactFactory] = None):
        self.rules = list(rules)
        self.nodes: dict[str, RuleIO] = {}
        for order, rule in enumerate(self.rules):
            self.nodes[rule.name] = rule_io(rule, order)
        self._factory = factory
        self._init_defaults: dict[Type[Fact], dict] = {}
        self.edges: list[Edge] = []
        for a in self.nodes.values():
            for b in self.nodes.values():
                if a.name != b.name:
                    self.edges.extend(self._edges_between(a, b))

    # -- constructor-state defaults (insert-edge pruning) -------------------
    def _unconditional_defaults(self, fact_type: Type[Fact]) -> dict:
        """attr -> value every freshly constructed ``fact_type`` starts
        with regardless of constructor arguments (not a parameter at all,
        set unconditionally by ``__init__``)."""
        if fact_type in self._init_defaults:
            return self._init_defaults[fact_type]
        defaults: dict = {}
        if self._factory is not None:
            signature = signature_of(fact_type)
            params = set(signature.parameters) if signature else set()
            defaults = {
                attr: value
                for attr, value in entry_defaults(fact_type, self._factory).items()
                if attr not in params
            }
        self._init_defaults[fact_type] = defaults
        return defaults

    # -- edge construction ---------------------------------------------------
    def _edges_between(self, a: RuleIO, b: RuleIO) -> Iterable[Edge]:
        edges: list[Edge] = []

        def add(kind, fact_type, attrs, feasible, reason):
            edges.append(
                Edge(a.name, b.name, kind, fact_type,
                     tuple(sorted(attrs)) if attrs else None, feasible, reason)
            )

        # inserts: fresh facts can (dis)enable any element of the type —
        # Pattern/Exists/Collect gain candidates, Absent loses its blank.
        for fact_type in a.effects.inserts:
            for element in b.elements_of(fact_type):
                feasible, reason = True, "fresh fact may match"
                if element.domains:
                    init = self._unconditional_defaults(fact_type)
                    for attr, allowed in element.domains.items():
                        if attr in init:
                            try:
                                rejected = init[attr] not in allowed
                            except TypeError:
                                rejected = False
                            if rejected:
                                feasible = False
                                reason = (
                                    f"constructor sets {attr}={init[attr]!r}, "
                                    f"guard requires {sorted(map(repr, allowed))}"
                                )
                                break
                add("insert", fact_type, None, feasible, reason)

        # updates: attribute-level overlap with the reader, domain-pruned.
        for fact_type in a.updated_types():
            written = a.updated_attrs(fact_type)
            reader_elements = b.elements_of(fact_type)
            if not reader_elements:
                continue
            read = b.reads.get(fact_type, set())
            for elem in reader_elements:
                if elem.reads is None:
                    read = None
                elif read is not None:
                    read = set(read) | set(elem.reads)
            if written is None or read is None:
                overlap = None
            else:
                overlap = written & read
                if not overlap:
                    add("update", fact_type, written, False,
                        "written attrs never read by target")
                    continue
            # before-value in A's candidate domain, after-value in the
            # written constants; if both provably outside B's accepted
            # domain for some attr, the fact is invisible to B throughout.
            feasible, reason = True, "written attrs read by target"
            a_elements = a.elements_of(fact_type)
            for elem in reader_elements:
                if not elem.domains:
                    continue
                for attr, allowed in elem.domains.items():
                    before = _domain_union(a_elements, attr) if a_elements else None
                    if written is None:
                        after = None  # opaque write: could set anything
                    elif attr in written:
                        values = a.effects.written_values(fact_type, attr)
                        after = frozenset(values) if values is not None else None
                    else:
                        after = before
                    if before is None or after is None:
                        continue
                    if not (before & allowed) and not (after & allowed):
                        feasible = False
                        reason = (
                            f"{attr} is outside the reader's accepted set "
                            f"both before and after the write"
                        )
                        break
                if not feasible:
                    break
            add("update", fact_type, overlap, feasible, reason)

        # retracts: removing a fact (dis)enables any element of the type.
        retracted = set(a.effects.retracts)
        if a.effects.opaque:
            retracted |= {
                t for t in a.approx_written_types
                if t not in a.effects.inserts
            }
        for fact_type in retracted:
            a_elements = a.elements_of(fact_type)
            for element in b.elements_of(fact_type):
                feasible, reason = True, "retracted fact may be matched"
                if element.domains and a_elements:
                    for attr, allowed in element.domains.items():
                        mine = _domain_union(a_elements, attr)
                        if mine is not None and not (mine & allowed):
                            feasible = False
                            reason = (
                                f"{attr} domains disjoint: retractor sees "
                                f"{sorted(map(repr, mine))}, reader needs "
                                f"{sorted(map(repr, allowed))}"
                            )
                            break
                add("retract", fact_type, None, feasible, reason)
        return edges

    # -- queries -------------------------------------------------------------
    def feasible_edges(self, src: str, dst: str) -> list[Edge]:
        return [
            e for e in self.edges if e.src == src and e.dst == dst and e.feasible
        ]

    def interference(self, a: str, b: str) -> list[str]:
        """Why firing order of equal-salience rules ``a``/``b`` may matter.

        Empty list = statically proven commuting (up to the abstraction):
        neither rule's action can change what the other matches, and they
        never write the same attribute of the same fact.
        """
        reasons = [e.describe() for e in self.feasible_edges(a, b)]
        reasons += [e.describe() for e in self.feasible_edges(b, a)]
        io_a, io_b = self.nodes[a], self.nodes[b]
        for fact_type in io_a.updated_types() & io_b.updated_types():
            wa = io_a.updated_attrs(fact_type)
            wb = io_b.updated_attrs(fact_type)
            shared = None if (wa is None or wb is None) else wa & wb
            if shared is not None and not shared:
                continue
            # same single constant written by both -> last-writer invisible
            if shared:
                benign = all(
                    io_a.effects.written_values(fact_type, attr)
                    == io_b.effects.written_values(fact_type, attr)
                    and io_a.effects.written_values(fact_type, attr) is not None
                    and len(io_a.effects.written_values(fact_type, attr)) == 1
                    for attr in shared
                )
                if benign:
                    continue
            # disjoint candidate domains -> they update different facts
            ea, eb = io_a.elements_of(fact_type), io_b.elements_of(fact_type)
            disjoint = False
            for elem in eb:
                if not elem.domains:
                    continue
                for attr, allowed in elem.domains.items():
                    mine = _domain_union(ea, attr) if ea else None
                    if mine is not None and not (mine & allowed):
                        disjoint = True
            if disjoint:
                continue
            names = "all attrs" if shared is None else ",".join(sorted(shared))
            reasons.append(
                f"{a} and {b} both write {fact_type.__name__}({names})"
            )
        return reasons

    def retract_while_referenced(self) -> Iterable[tuple]:
        """``(retractor, reader, fact_type, reason)`` where a higher tier
        retracts facts a lower tier still positively matches on, and the
        guard domains cannot prove the two never see the same fact.

        Only *exact* retracts participate; opaque actions are reported
        separately by the verifier (one incompleteness note per rule)."""
        for a in self.nodes.values():
            if a.effects.opaque:
                continue
            for fact_type in a.effects.retracts:
                a_elements = a.elements_of(fact_type)
                for b in self.nodes.values():
                    if b.name == a.name or b.salience >= a.salience:
                        continue
                    for element in b.elements_of(fact_type):
                        if not element.positive:
                            continue
                        compatible = True
                        detail = "guard domains overlap"
                        if element.domains and a_elements:
                            for attr, allowed in element.domains.items():
                                mine = _domain_union(a_elements, attr)
                                if mine is not None and not (mine & allowed):
                                    compatible = False
                                    break
                        if compatible:
                            yield (a, b, fact_type, detail)
                            break


def build_graph(rules: Sequence[Rule], factory: Optional[FactFactory] = None) -> InteractionGraph:
    """Build the interaction graph for a rule pack."""
    return InteractionGraph(rules, factory)
