"""Whole-pack semantic verification (V001–V005).

Where the rule linter (R001–R010) checks rules one at a time, the
verifier checks their *interactions*:

======  =========  =====================================================
check   severity   meaning
======  =========  =====================================================
V001    error      pack not confluent: final state depends on the agenda
                   tie-break (counterexample replays the divergence)
V002    error/info reserve-shaped charge never released on a terminal
                   path (error on ``failed``; info for retained-on-done
                   accounting)
V003    warning    higher tier retracts facts a lower tier still matches
                   (info when the action is too opaque to analyse)
V004    error      engines (seed/indexed/compiled) reach different final
                   states on the same soup (counterexample replays it)
V005    error      compiler join/delta plan or ``reads`` change-gating
                   disagrees with the interaction graph (static-exact)
======  =========  =====================================================

Every V-series **error** from the dynamic checks (V001/V002/V004)
carries ``detail["counterexample"]`` — a JSON document that
:func:`replay_counterexample` re-runs from scratch in real sessions.
V005 errors are exact consequences of scanned bytecode and carry their
witness (the offending read/plan sets) instead.

Suppression policy: a suppression lives in :data:`VERIFY_SUPPRESSIONS`
**with an inline justification comment**, or it does not live at all.
Dead suppressions (consuming zero findings across a full run) are
surfaced as S001 warnings by the CLI, so stale justifications rot
loudly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.analysis.findings import Report
from repro.analysis.probing import FactFactory, harvest_constants, snapshot_memory
from repro.analysis.rulelint import _random_memory, _rule_set_functions, _universe
from repro.analysis.verifier.composition import (
    ENGINES,
    check_compiler_agreement,
    check_engine_parity,
    verify_compositions,
)
from repro.analysis.verifier.confluence import check_confluence
from repro.analysis.verifier.interaction import InteractionGraph, build_graph
from repro.analysis.verifier.ledger import check_ledgers, check_retracts
from repro.analysis.verifier.replay import replay_counterexample

__all__ = [
    "VerifyOptions",
    "VERIFY_SUPPRESSIONS",
    "verify_pack",
    "verify_all",
    "verify_compositions",
    "build_graph",
    "InteractionGraph",
    "replay_counterexample",
    "ENGINES",
]


#: Justified suppressions applied to every verifier report.  Policy:
#: each entry carries the *why* right here; anything without a reason is
#: reverted in review, and entries that stop matching show up as S001
#: dead-suppression warnings in `repro lint --verify`.
VERIFY_SUPPRESSIONS: list[str] = [
    # Lease expiry (salience 97) retracts an approved/in-progress
    # CleanupFact that the dedup rule (85) uses as its "someone is already
    # on it" witness.  That is the designed semantics: once the holder's
    # lease lapses, duplicates SHOULD stop deferring and re-approve the
    # cleanup — the retract un-shadows the lower tier on purpose (covered
    # by the lease tests in tests/policy/test_leases.py).
    "V003:Expire a cleanup whose lease deadline has passed",
]


@dataclass
class VerifyOptions:
    """Budgets and scope for a verifier run."""

    seed: int = 0
    #: number of small-scope random universes for confluence/parity
    universes: int = 6
    #: facts per type per universe (small scope on purpose)
    per_type: int = 2
    #: randomized entry-lifecycle trials per terminal state (V002)
    ledger_trials: int = 8
    engines: tuple = ENGINES
    #: apply VERIFY_SUPPRESSIONS (tests disable to see raw findings)
    apply_suppressions: bool = True
    extra_suppressions: tuple = ()


def verify_pack(
    name: str,
    rule_builders: Sequence[Callable],
    session_globals: dict,
    options: Optional[VerifyOptions] = None,
) -> Report:
    """Run every V-series check over one composed rule pack.

    ``rule_builders`` are the zero-argument pack factories whose
    concatenation is the pack under test; counterexamples reference them
    by import path so they replay from the document alone.
    """
    options = options or VerifyOptions()
    rules = []
    for builder in rule_builders:
        rules.extend(builder())
    report = Report(f"verify:{name}")
    session_globals = dict(session_globals)

    rng = random.Random(options.seed)
    factory = FactFactory(rng, harvest_constants(_rule_set_functions(rules)))
    universe = _universe(rules)
    graph = build_graph(rules, factory)

    soups = [
        snapshot_memory(_random_memory(universe, factory, options.per_type))
        for _ in range(options.universes)
    ]

    check_confluence(
        name, rules, rule_builders, session_globals, soups, graph, report
    )
    check_ledgers(
        name, rules, rule_builders, session_globals, universe, factory,
        report, trials=options.ledger_trials,
    )
    check_retracts(graph, report)
    check_engine_parity(
        name, rules, rule_builders, session_globals, soups,
        options.engines, report,
    )
    check_compiler_agreement(rules, graph, report)

    if options.apply_suppressions:
        report.suppress([*VERIFY_SUPPRESSIONS, *options.extra_suppressions])
    return report


def verify_all(options: Optional[VerifyOptions] = None) -> list[Report]:
    """Verify every composition ``PolicyService`` instantiates."""
    options = options or VerifyOptions()
    reports = []
    for name, (_rules, session_globals, builders) in verify_compositions().items():
        reports.append(verify_pack(name, builders, session_globals, options))
    return reports
