"""V001 — confluence under agenda tie-break permutations.

The engine breaks agenda ties (same salience) by the activation's fact-id
tuple, then rule definition order.  A pack is *confluent* when the final
working-memory state does not depend on that tie-break — definition order
is then a formatting detail, not semantics.  This checker:

1. asks the interaction graph for equal-salience rule pairs that can
   statically interfere (one's action changes the other's matches, or
   both write the same attribute of the same fact);
2. model-checks each candidate pair exhaustively over small fact
   universes: the pack runs twice per universe — default tie-break vs.
   the pair's definition ranks swapped — and the canonical final states
   are compared;
3. additionally sweeps two whole-pack permutations (reversed and
   rule-major tie-breaks) to catch interference the pairwise abstraction
   missed.

A V001 **error** is only ever reported with a concrete, minimized,
machine-replayed counterexample (the finding's ``detail["counterexample"]``
re-runs via :func:`repro.analysis.verifier.replay.replay_counterexample`).
Statically-interfering pairs where no divergence could be produced are
*not* findings — the static pass is a search heuristic, not evidence.
"""

from __future__ import annotations

import itertools
from typing import Callable, Optional, Sequence

from repro.analysis.findings import Report, Severity, location_of
from repro.analysis.verifier.interaction import InteractionGraph
from repro.analysis.verifier.replay import (
    counterexample_doc,
    minimize_soup,
    replay_counterexample,
    run_confluence_scenario,
)
from repro.rules.engine import Rule

__all__ = ["check_confluence"]


def _divergence_probe(
    rules: Sequence[Rule],
    session_globals: dict,
    permutation: dict,
) -> Callable[[Sequence[tuple]], bool]:
    """Predicate: does this soup produce different final states under the
    default and the permuted tie-break?  (Crashed runs never count.)"""

    def diverges(soup: Sequence[tuple]) -> bool:
        baseline = run_confluence_scenario(
            rules, session_globals, soup, {"kind": "default"}
        )
        if baseline is None:
            return False
        permuted = run_confluence_scenario(rules, session_globals, soup, permutation)
        return permuted is not None and baseline != permuted

    return diverges


def _report_divergence(
    name: str,
    rules: Sequence[Rule],
    rule_builders: Sequence[Callable],
    session_globals: dict,
    soup: Sequence[tuple],
    permutation: dict,
    subject: str,
    message: str,
    location: Optional[str],
    report: Report,
) -> bool:
    """Minimize the soup, build the counterexample, verify it replays,
    then emit the V001 error.  Returns False if replay verification
    failed (the finding is withheld — no heuristic-only errors)."""
    diverges = _divergence_probe(rules, session_globals, permutation)
    minimal = minimize_soup(soup, diverges)
    doc = counterexample_doc(
        "confluence", rule_builders, session_globals, minimal,
        permutation=permutation, pack=name,
    )
    result = replay_counterexample(doc)
    if not result["reproduced"]:
        return False
    divergent = sorted(
        set(result["baseline"]) ^ set(result["permuted"])
    )
    report.add(
        "V001",
        Severity.ERROR,
        subject,
        message
        + f"; a {len(minimal)}-fact counterexample replays the divergence "
        f"(facts differing between the two final states: {len(divergent)})",
        location=location,
        counterexample=doc,
        divergent_facts=divergent[:6],
    )
    return True


def check_confluence(
    name: str,
    rules: Sequence[Rule],
    rule_builders: Sequence[Callable],
    session_globals: dict,
    soups: Sequence[Sequence[tuple]],
    graph: InteractionGraph,
    report: Report,
) -> None:
    """Run the V001 confluence check over prepared small-scope soups."""
    # -- pairwise: statically interfering equal-salience pairs -------------
    candidates = []
    for a, b in itertools.combinations(rules, 2):
        if a.salience != b.salience:
            continue
        reasons = graph.interference(a.name, b.name)
        if reasons:
            candidates.append((a, b, reasons))

    reported: set = set()
    for a, b, reasons in candidates:
        permutation = {"kind": "swap", "rules": [a.name, b.name]}
        diverges = _divergence_probe(rules, session_globals, permutation)
        for soup in soups:
            if not diverges(soup):
                continue
            ok = _report_divergence(
                name, rules, rule_builders, session_globals, soup, permutation,
                subject=a.name,
                message=(
                    f"not confluent with {b.name!r} (both salience "
                    f"{a.salience}): swapping their agenda tie-break rank "
                    f"changes the final working-memory state "
                    f"(static interference: {reasons[0]})"
                ),
                location=location_of(a.then),
                report=report,
            )
            if ok:
                reported.add(frozenset((a.name, b.name)))
            break

    # -- whole-pack sweeps: catch what the pairwise abstraction missed -----
    for permutation in ({"kind": "reverse"}, {"kind": "rulemajor"}):
        diverges = _divergence_probe(rules, session_globals, permutation)
        for soup in soups:
            if not diverges(soup):
                continue
            culprits = _attribute_pack_divergence(
                rules, session_globals, soup, permutation
            )
            if culprits and frozenset(culprits) in reported:
                break  # already explained by a pairwise finding
            subject = culprits[0] if culprits else f"pack:{name}"
            _report_divergence(
                name, rules, rule_builders, session_globals, soup, permutation,
                subject=subject,
                message=(
                    f"pack is not confluent under the "
                    f"{permutation['kind']!r} agenda tie-break"
                    + (
                        f" (narrowed to rules {', '.join(sorted(culprits))})"
                        if culprits
                        else ""
                    )
                ),
                location=None,
                report=report,
            )
            break


def _attribute_pack_divergence(
    rules: Sequence[Rule],
    session_globals: dict,
    soup: Sequence[tuple],
    permutation: dict,
) -> list[str]:
    """Try to pin a whole-pack divergence on one equal-salience pair by
    swapping each pair individually on the same soup."""
    for a, b in itertools.combinations(rules, 2):
        if a.salience != b.salience:
            continue
        swap = {"kind": "swap", "rules": [a.name, b.name]}
        if _divergence_probe(rules, session_globals, swap)(soup):
            return [a.name, b.name]
    return []
