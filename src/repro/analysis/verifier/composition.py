"""V004/V005 — cross-engine parity and compiler-plan agreement.

V004 (dynamic): the same fact soup fired through every engine the service
ships (``seed`` full re-enumeration, ``indexed`` incremental agenda,
``compiled`` join network) must land in the same canonical final state.
Any split is an **error** carrying a minimized counterexample that
replays the disagreement engine-by-engine.

V005 (static-exact): the compiler's join/delta classification and the
``reads=(...)`` change-gating declarations must agree with what the
interaction graph sees in the same rules:

* a rule whose condition shape (all bound Patterns, two or more) earns a
  join plan but was classified delta — or vice versa — is an **error**
  (the classifier and the engine disagree about the rule's semantics);
* a gate's ``reads`` declaration that omits an attribute its guard or
  keys provably read is an **error**: the compiled engine skips
  re-checking a gate when an update's changed attributes are disjoint
  from its declared reads, so the gate's truth goes stale.  These
  findings are exact consequences of the scanned bytecode (the witness
  is the read-set itself), not probe heuristics.

Composition enumeration mirrors — and extends — ``shipped_rule_sets()``:
every pack combination ``PolicyService`` instantiates, plus the
access×balanced cross and a lease-enabled variant so expiry paths get
verified too.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.analysis.findings import Report, Severity, location_of
from repro.analysis.verifier.interaction import InteractionGraph
from repro.analysis.verifier.replay import (
    counterexample_doc,
    minimize_soup,
    replay_counterexample,
    run_engine_scenario,
)
from repro.rules.engine import Rule
from repro.rules.patterns import Pattern, _TypedElement

__all__ = ["check_engine_parity", "check_compiler_agreement", "verify_compositions"]

ENGINES = ("seed", "indexed", "compiled")


# --------------------------------------------------------------------------
# V004: engine parity
# --------------------------------------------------------------------------
def check_engine_parity(
    name: str,
    rules: Sequence[Rule],
    rule_builders: Sequence[Callable],
    session_globals: dict,
    soups: Sequence[Sequence[tuple]],
    engines: Sequence[str],
    report: Report,
) -> None:
    engines = [e for e in engines if e in ENGINES]
    if len(engines) < 2:
        return
    for soup in soups:
        states = run_engine_scenario(rules, session_globals, soup, engines)
        if states is None:
            continue  # an action crashed on synthetic facts: inconclusive
        if len({tuple(s) for s in states.values()}) == 1:
            continue

        def still_splits(candidate: Sequence[tuple]) -> bool:
            found = run_engine_scenario(rules, session_globals, candidate, engines)
            return found is not None and len({tuple(s) for s in found.values()}) > 1

        minimal = minimize_soup(soup, still_splits)
        doc = counterexample_doc(
            "engine", rule_builders, session_globals, minimal,
            engines=list(engines), pack=name,
        )
        result = replay_counterexample(doc)
        if not result["reproduced"]:
            continue  # no heuristic-only errors
        split = {
            engine: tuple(state) for engine, state in result["states"].items()
        }
        groups: dict[tuple, list[str]] = {}
        for engine, state in split.items():
            groups.setdefault(state, []).append(engine)
        report.add(
            "V004",
            Severity.ERROR,
            f"pack:{name}",
            f"engines disagree on the final working-memory state for a "
            f"{len(minimal)}-fact soup: "
            + "; ".join(
                "{" + ",".join(sorted(members)) + "}"
                for members in groups.values()
            )
            + " each reach different states — advice would depend on the "
            "engine flag",
            counterexample=doc,
            engines=list(engines),
        )
        return  # one replayed split per composition is enough


# --------------------------------------------------------------------------
# V005: compiler-plan / interaction-graph agreement
# --------------------------------------------------------------------------
def check_compiler_agreement(
    rules: Sequence[Rule], graph: InteractionGraph, report: Report
) -> None:
    from repro.rules.compiler import PLAN_JOIN, compile_rules

    ruleset = compile_rules(rules)
    for plan in ruleset.plans:
        rule = plan.rule
        typed = [e for e in rule.when if isinstance(e, _TypedElement)]
        joinable = (
            len(rule.when) >= 2
            and len(typed) == len(rule.when)
            and all(isinstance(e, Pattern) and e.binding for e in typed)
        )
        is_join = plan.kind == PLAN_JOIN
        if joinable != is_join:
            report.add(
                "V005",
                Severity.ERROR,
                rule.name,
                f"compiler classified this rule as {plan.kind!r} "
                f"(reason: {plan.reason or 'n/a'}) but its condition shape "
                f"({len(typed)} typed elements, "
                f"{sum(1 for e in typed if isinstance(e, Pattern) and e.binding)}"
                f" bound patterns) says it "
                f"{'is' if joinable else 'is not'} join-eligible — the "
                f"classifier and the interaction graph disagree",
                location=location_of(rule.then),
                plan=plan.kind,
                reason=plan.reason,
            )

        # the compiled engine re-evaluates a rule only when a mutation
        # touches a fact type the plan dispatches on: every type the
        # interaction graph sees in the conditions must dispatch back.
        io = graph.nodes[rule.name]
        for element in io.elements:
            dispatched = ruleset.dispatch(element.fact_type)
            if not any(p.rule.name == rule.name for p, _info in dispatched):
                report.add(
                    "V005",
                    Severity.ERROR,
                    rule.name,
                    f"mutations of {element.fact_type.__name__} (condition "
                    f"{element.index}) do not dispatch to this rule's plan: "
                    f"the compiled engine would never re-evaluate it",
                    location=location_of(rule.then),
                    fact_type=element.fact_type.__name__,
                )

    # reads-declaration soundness: the compiled engine only re-checks a
    # gate (Absent/Exists/Collect) whose declared reads intersect an
    # update's changed attrs, so the declaration must cover every
    # attribute the gate's guard/keys actually read.
    for rule in rules:
        io = graph.nodes[rule.name]
        for element_io, element in zip(
            io.elements, (e for e in rule.when if isinstance(e, _TypedElement))
        ):
            declared = getattr(element, "reads", None)
            if declared is None or element_io.reads is None:
                continue  # undeclared = no gating; inexact scan = unprovable
            if element_io.kind == "pattern":
                continue  # reads only gates Absent/Exists/Collect re-checks
            missing = sorted(set(element_io.reads) - set(declared))
            if missing:
                report.add(
                    "V005",
                    Severity.ERROR,
                    rule.name,
                    f"reads declaration on condition {element_io.index} "
                    f"({element_io.fact_type.__name__}) omits "
                    f"{', '.join(missing)} — the guard/keys read these, so "
                    f"indexed/compiled change-gating skips re-evaluation "
                    f"when they change and matches go stale",
                    location=location_of(element.where or rule.then),
                    missing=missing,
                    declared=sorted(declared),
                )


# --------------------------------------------------------------------------
# Composition enumeration
# --------------------------------------------------------------------------
def verify_compositions() -> dict[str, tuple[list, dict, list]]:
    """name -> (rules, session globals, pack builders): every combination
    ``PolicyService`` instantiates, plus the access×balanced cross and a
    lease-enabled greedy variant (so lease grant/expiry paths verify)."""
    from repro.datacatalog.model import CatalogConfig
    from repro.datacatalog.rules_eviction import eviction_rules
    from repro.policy.model import PolicyConfig
    from repro.policy.rules_access import access_rules
    from repro.policy.rules_balanced import balanced_rules
    from repro.policy.rules_common import common_rules
    from repro.policy.rules_fairshare import fairshare_rules
    from repro.policy.rules_greedy import greedy_rules
    from repro.policy.rules_priority import priority_rules

    def build(config, *packs):
        builders = [common_rules, priority_rules, fairshare_rules, *packs]
        rules = []
        for builder in builders:
            rules.extend(builder())
        return rules, {"config": config, "group_counter": 1}, builders

    return {
        "fifo": build(PolicyConfig(policy="fifo")),
        "greedy": build(PolicyConfig(policy="greedy"), greedy_rules),
        "balanced": build(
            PolicyConfig(policy="balanced", cluster_count=2), balanced_rules
        ),
        "access": build(
            PolicyConfig(policy="greedy", access_control=True),
            access_rules,
            greedy_rules,
        ),
        "priority": build(
            PolicyConfig(policy="greedy", order_by="priority"), greedy_rules
        ),
        "access_balanced": build(
            PolicyConfig(policy="balanced", cluster_count=2, access_control=True),
            access_rules,
            balanced_rules,
        ),
        "greedy_leases": build(
            PolicyConfig(policy="greedy", lease_seconds=60.0), greedy_rules
        ),
        "catalog": build(
            PolicyConfig(
                policy="greedy",
                catalog=CatalogConfig(default_capacity=1e9),
            ),
            greedy_rules,
            eviction_rules,
        ),
    }
