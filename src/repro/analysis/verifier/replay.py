"""Machine-replayable counterexamples for verifier findings.

Every V-series *error* the verifier emits carries a counterexample
document: a JSON-safe description of a concrete fact soup, session
globals, and the scenario (tie-break permutation, terminal drive, or
engine pair) that reproduces the violation in a real :class:`Session`.
:func:`replay_counterexample` decodes such a document, runs the scenario
from scratch, and reports whether the violation still reproduces — so a
finding is never "the analyzer thinks"; it is "run this and watch".

The same scenario runners are used twice: the checkers call them while
searching and minimizing, and :func:`replay_counterexample` calls them
when a test (or a human) wants the violation demonstrated.
"""

from __future__ import annotations

import copy
import hashlib
import importlib
import json
from typing import Any, Callable, Iterable, Optional, Sequence, Type

from repro.analysis.probing import clone_memory
from repro.rules.engine import Rule, Session
from repro.rules.facts import Fact, WorkingMemory

__all__ = [
    "canonical_state",
    "state_digest",
    "encode_soup",
    "decode_soup",
    "encode_globals",
    "decode_globals",
    "tie_break_for",
    "run_confluence_scenario",
    "run_ledger_scenario",
    "run_engine_scenario",
    "replay_counterexample",
]


# --------------------------------------------------------------------------
# Canonical state fingerprints
# --------------------------------------------------------------------------
def _canon_value(value: Any) -> str:
    if isinstance(value, (set, frozenset)):
        return "{" + ",".join(sorted(repr(v) for v in value)) + "}"
    if isinstance(value, float) and value == int(value):
        return repr(int(value)) + ".0"
    return repr(value)


#: attributes renumbered before comparison: transfer group ids come from a
#: session-global counter, so equivalent runs that allocate groups in a
#: different order produce renumber-equal, not literally equal, states.
_RENUMBERED_ATTRS = frozenset({"group_id"})


def canonical_state(memory: WorkingMemory) -> list[str]:
    """Order-independent canonical rendering of every live fact.

    Group ids are canonically renumbered by first appearance in the
    sorted group-free rendering, so two runs differing only in group
    numbering compare equal.
    """
    rows = []
    for fact in memory:
        attrs = dict(vars(fact))
        groups = {k: attrs.pop(k) for k in list(attrs) if k in _RENUMBERED_ATTRS}
        base = (
            type(fact).__name__
            + "("
            + ",".join(f"{k}={_canon_value(v)}" for k, v in sorted(attrs.items()))
            + ")"
        )
        rows.append((base, groups))
    rows.sort(key=lambda r: (r[0], sorted((k, repr(v)) for k, v in r[1].items())))
    mapping: dict = {}
    out = []
    for base, groups in rows:
        renamed = {}
        for key, value in sorted(groups.items()):
            if value in (None, 0):
                renamed[key] = value
            else:
                renamed[key] = mapping.setdefault(value, f"g{len(mapping) + 1}")
        if renamed:
            suffix = ",".join(f"{k}={v!r}" for k, v in sorted(renamed.items()))
            base = base[:-1] + ("," if base[-2] != "(" else "") + suffix + ")"
        out.append(base)
    return out


def state_digest(memory: WorkingMemory) -> str:
    digest = hashlib.sha256()
    for row in canonical_state(memory):
        digest.update(row.encode())
        digest.update(b"\n")
    return digest.hexdigest()


# --------------------------------------------------------------------------
# JSON-safe encoding of fact soups and globals
# --------------------------------------------------------------------------
def _type_ref(cls: type) -> str:
    return f"{cls.__module__}:{cls.__qualname__}"


def _resolve_type(ref: str) -> type:
    module_name, _, qualname = ref.partition(":")
    obj: Any = importlib.import_module(module_name)
    for part in qualname.split("."):
        obj = getattr(obj, part)
    return obj


def _encode_value(value: Any) -> Any:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (set, frozenset)):
        return {"__set__": sorted(_encode_value(v) for v in value)}
    if isinstance(value, tuple):
        return {"__tuple__": [_encode_value(v) for v in value]}
    if isinstance(value, list):
        return [_encode_value(v) for v in value]
    if isinstance(value, dict):
        if all(isinstance(k, str) for k in value):
            return {k: _encode_value(v) for k, v in value.items()}
        return {
            "__pairs__": [[_encode_value(k), _encode_value(v)] for k, v in value.items()]
        }
    # dataclass-ish objects (PolicyConfig): rebuild from attribute dict
    if hasattr(value, "__dict__") and type(value).__module__ != "builtins":
        return {
            "__object__": _type_ref(type(value)),
            "attrs": {k: _encode_value(v) for k, v in vars(value).items()},
        }
    raise TypeError(f"cannot encode {value!r} for counterexample replay")


def _decode_value(value: Any) -> Any:
    if isinstance(value, list):
        return [_decode_value(v) for v in value]
    if isinstance(value, dict):
        if "__set__" in value:
            return set(_decode_value(v) for v in value["__set__"])
        if "__tuple__" in value:
            return tuple(_decode_value(v) for v in value["__tuple__"])
        if "__pairs__" in value:
            return {
                _make_hashable(_decode_value(k)): _decode_value(v)
                for k, v in value["__pairs__"]
            }
        if "__object__" in value:
            cls = _resolve_type(value["__object__"])
            obj = object.__new__(cls)
            obj.__dict__.update(
                {k: _decode_value(v) for k, v in value["attrs"].items()}
            )
            return obj
        return {k: _decode_value(v) for k, v in value.items()}
    return value


def _make_hashable(value: Any) -> Any:
    if isinstance(value, list):
        return tuple(_make_hashable(v) for v in value)
    if isinstance(value, set):
        return frozenset(value)
    return value


def encode_soup(soup: Iterable[tuple[Type[Fact], dict]]) -> list[dict]:
    """Encode a :func:`snapshot_memory` soup as JSON-safe fact specs."""
    return [
        {"type": _type_ref(fact_type), "attrs": {k: _encode_value(v) for k, v in attrs.items()}}
        for fact_type, attrs in soup
    ]


def decode_soup(specs: Sequence[dict]) -> list[tuple[Type[Fact], dict]]:
    return [
        (
            _resolve_type(spec["type"]),
            {k: _decode_value(v) for k, v in spec["attrs"].items()},
        )
        for spec in specs
    ]


def encode_globals(session_globals: dict) -> dict:
    return {k: _encode_value(v) for k, v in session_globals.items()}


def decode_globals(doc: dict) -> dict:
    return {k: _decode_value(v) for k, v in doc.items()}


# --------------------------------------------------------------------------
# Tie-break permutations (see Session(tie_break=...))
# --------------------------------------------------------------------------
def tie_break_for(permutation: dict, rules: Sequence[Rule]) -> Optional[Callable]:
    """Build the deterministic agenda tie-break a permutation spec names.

    ``{"kind": "default"}``   — None (fact-id tuple, then definition order)
    ``{"kind": "swap", "rules": [a, b]}`` — a and b trade definition ranks
    ``{"kind": "reverse"}``   — definition order reversed within fid ties
    ``{"kind": "rulemajor"}`` — definition order outranks the fid tuple
    """
    kind = permutation.get("kind", "default")
    if kind == "default":
        return None
    if kind == "swap":
        first, second = permutation["rules"]
        orders = {rule.name: order for order, rule in enumerate(rules)}
        mapped = {first: orders[second], second: orders[first]}

        def swap_rank(rule, order, key):
            return (key[1], mapped.get(rule.name, order))

        return swap_rank
    if kind == "reverse":
        return lambda rule, order, key: (key[1], -order)
    if kind == "rulemajor":
        return lambda rule, order, key: (order, key[1])
    raise ValueError(f"unknown tie-break permutation {permutation!r}")


# --------------------------------------------------------------------------
# Scenario runners (used by both the checkers and replay)
# --------------------------------------------------------------------------
def _fresh_session(
    rules: Sequence[Rule],
    session_globals: dict,
    soup: Sequence[tuple],
    engine: str = "indexed",
    tie_break: Optional[Callable] = None,
    max_firings: int = 20_000,
):
    memory = clone_memory(soup, indexed=True)
    run_globals = copy.deepcopy(session_globals)
    if engine == "compiled":
        from repro.rules.network import CompiledSession

        session: Session = CompiledSession(
            rules, memory=memory, globals=run_globals, max_firings=max_firings
        )
    else:
        session = Session(
            rules,
            memory=memory,
            globals=run_globals,
            max_firings=max_firings,
            incremental=(engine == "indexed"),
            tie_break=tie_break,
        )
    return session, memory


def run_confluence_scenario(
    rules: Sequence[Rule],
    session_globals: dict,
    soup: Sequence[tuple],
    permutation: dict,
) -> Optional[list[str]]:
    """Fire the pack over a clone of ``soup`` under a tie-break permutation;
    returns the canonical final state, or None if an action crashed on the
    synthetic facts (inconclusive)."""
    tie_break = tie_break_for(permutation, rules)
    session, memory = _fresh_session(
        rules, session_globals, soup, tie_break=tie_break
    )
    try:
        session.fire_all()
    except Exception:
        return None
    return canonical_state(memory)


def run_ledger_scenario(
    rules: Sequence[Rule],
    session_globals: dict,
    soup: Sequence[tuple],
    subjects: Sequence[int],
    terminal: str,
    defaults: dict[str, dict],
) -> Optional[list[dict]]:
    """Admission-fire, drive every subject fact to ``terminal``, fire again;
    return the residual reserve-shaped charges (leaks).

    ``soup`` is the pre-admission memory; ``subjects`` index the facts in
    it whose ``status`` is driven to the terminal state (the transfers /
    cleanups whose lifecycle ends).  ``defaults`` maps type refs to the
    pristine numeric baseline of facts *rules create during the run*.
    Returns None when an action crashed (inconclusive).
    """
    session, memory = _fresh_session(rules, session_globals, soup)
    facts = list(memory)
    subject_facts = [facts[i] for i in subjects]
    baseline = _numeric_snapshot(memory)
    try:
        session.fire_all()
    except Exception:
        return None

    after_admission = _numeric_snapshot(memory)
    charges = []
    for fid, (fact, values) in after_admission.items():
        if any(fact is s for s in subject_facts):
            continue  # the subject's own bookkeeping dies with it
        base = baseline.get(fid)
        if base is None:
            base_values = defaults.get(_type_ref(type(fact)), {})
        else:
            base_values = base[1]
        for attr, value in values.items():
            expected = base_values.get(attr)
            if isinstance(expected, (int, float)) and value > expected + 1e-9:
                charges.append((fid, fact, attr, expected))

    for fact in subject_facts:
        if memory.contains(fact) and getattr(fact, "status", None) != terminal:
            memory.update(fact, status=terminal)
    try:
        session.fire_all()
    except Exception:
        return None

    final = _numeric_snapshot(memory)
    leaks = []
    for fid, fact, attr, expected in charges:
        row = final.get(fid)
        if row is None:
            continue  # the charged fact itself was retracted: nothing held
        residual = row[1].get(attr)
        if isinstance(residual, (int, float)) and residual > expected + 1e-9:
            leaks.append(
                {
                    "fact_type": type(fact).__name__,
                    "type_ref": _type_ref(type(fact)),
                    "attr": attr,
                    "expected": expected,
                    "residual": residual,
                    "fact": fact.describe()
                    if hasattr(fact, "describe")
                    else repr(fact),
                }
            )
    return leaks


def _numeric_snapshot(memory: WorkingMemory) -> dict:
    """fid -> (fact, {attr: numeric value}) for every live fact."""
    out = {}
    for fact in memory:
        values = {
            attr: value
            for attr, value in vars(fact).items()
            if isinstance(value, (int, float)) and not isinstance(value, bool)
        }
        out[memory.fid_of(fact)] = (fact, values)
    return out


def run_engine_scenario(
    rules: Sequence[Rule],
    session_globals: dict,
    soup: Sequence[tuple],
    engines: Sequence[str],
) -> Optional[dict[str, list[str]]]:
    """Run the same soup under each engine; engine name -> canonical state.
    None if any engine's run crashed on the synthetic facts."""
    states: dict[str, list[str]] = {}
    for engine in engines:
        session, memory = _fresh_session(rules, session_globals, soup, engine=engine)
        try:
            session.fire_all()
        except Exception:
            return None
        states[engine] = canonical_state(memory)
    return states


# --------------------------------------------------------------------------
# Counterexample documents
# --------------------------------------------------------------------------
def _pack_rules(doc: dict) -> tuple[list[Rule], dict]:
    """Resolve the rule pack a counterexample was recorded against."""
    builders = doc.get("rule_builders")
    if builders:
        rules: list[Rule] = []
        for ref in builders:
            rules.extend(_resolve_type(ref)())
        return rules, decode_globals(doc.get("globals", {}))
    raise ValueError("counterexample carries no rule_builders")


def counterexample_doc(
    kind: str,
    rule_builders: Sequence[Callable],
    session_globals: dict,
    soup: Sequence[tuple],
    **scenario,
) -> dict:
    """Assemble a JSON-safe counterexample document.

    ``rule_builders`` are the zero-argument pack factories (e.g.
    ``common_rules``, ``greedy_rules``) whose concatenation reproduces the
    verified rule list — packs are code, so counterexamples reference them
    by import path instead of trying to serialize closures.
    """
    doc = {
        "kind": kind,
        "rule_builders": [_type_ref(b) for b in rule_builders],
        "globals": encode_globals(session_globals),
        "facts": encode_soup(soup),
    }
    doc.update(scenario)
    json.dumps(doc)  # fail fast on anything not JSON-safe
    return doc


def replay_counterexample(doc: dict) -> dict:
    """Re-run a counterexample from its document alone.

    Returns a result dict whose ``"reproduced"`` key is True when the
    violation still shows; the rest is kind-specific evidence.
    """
    kind = doc["kind"]
    rules, session_globals = _pack_rules(doc)
    soup = decode_soup(doc["facts"])

    if kind == "confluence":
        baseline = run_confluence_scenario(
            rules, session_globals, soup, {"kind": "default"}
        )
        permuted = run_confluence_scenario(
            rules, session_globals, soup, doc["permutation"]
        )
        reproduced = (
            baseline is not None and permuted is not None and baseline != permuted
        )
        return {
            "kind": kind,
            "reproduced": reproduced,
            "baseline": baseline,
            "permuted": permuted,
        }

    if kind == "ledger":
        leaks = run_ledger_scenario(
            rules,
            session_globals,
            soup,
            doc["subjects"],
            doc["terminal"],
            doc.get("defaults", {}),
        )
        expected = {(leak["type_ref"], leak["attr"]) for leak in doc.get("leaks", [])}
        found = {(leak["type_ref"], leak["attr"]) for leak in (leaks or [])}
        return {
            "kind": kind,
            "reproduced": bool(leaks) and expected <= found,
            "leaks": leaks,
        }

    if kind == "engine":
        states = run_engine_scenario(
            rules, session_globals, soup, doc["engines"]
        )
        if states is None:
            return {"kind": kind, "reproduced": False, "states": None}
        unique = {tuple(state) for state in states.values()}
        return {
            "kind": kind,
            "reproduced": len(unique) > 1,
            "states": states,
        }

    raise ValueError(f"unknown counterexample kind {kind!r}")


def minimize_soup(
    soup: Sequence[tuple],
    still_fails: Callable[[Sequence[tuple]], bool],
) -> list[tuple]:
    """Greedy delta-debugging: drop facts one at a time (last first) while
    the scenario still reproduces; returns the minimal surviving soup."""
    current = list(soup)
    index = len(current) - 1
    while index >= 0:
        candidate = current[:index] + current[index + 1:]
        if candidate and still_fails(candidate):
            current = candidate
        index -= 1
    return current
