"""V002/V003 — ledger balance and retract-while-referenced.

V002 (dynamic): every reserve-shaped write must have a matching release
path for every terminal subject state.  The checker synthesizes
*entry-shaped* fact soups (facts built the way the service entry points
build them, bookkeeping pristine), fires the pack to admit them, records
every numeric attribute that **rose** above its pristine baseline (stream
slots on host pairs / clusters, tenant in-flight ledgers, quota charges),
then drives every subject (transfer/cleanup lifecycle fact) to a terminal
status and fires again.  A charge still standing afterwards is a leak:

* terminal ``"failed"`` — **error**: the failure path must fully unwind
  its reservations, or crash-heavy runs strangle the ledgers; the finding
  carries a minimized, machine-replayed counterexample.
* terminal ``"done"``   — **info**: charges retained after success are
  usually deliberate accounting (bytes-staged totals, quota usage); they
  are surfaced for review, not failed on.

V003 (static): a higher-salience rule retracts facts that lower tiers
still positively match on, and the guard domains cannot prove the two
never see the same fact — a **warning**, because the lower rule's
pending work silently disappears mid-cascade.  Opaque actions (retract
targets found via memory scans) are reported once per rule as **info**:
the analysis is incomplete there, not clean.
"""

from __future__ import annotations

from typing import Callable, Sequence, Type

from repro.analysis.findings import Report, Severity, location_of
from repro.analysis.probing import (
    FactFactory,
    entry_defaults,
    snapshot_fact,
)
from repro.analysis.verifier.interaction import InteractionGraph
from repro.analysis.verifier.replay import (
    _type_ref,
    counterexample_doc,
    minimize_soup,
    replay_counterexample,
    run_ledger_scenario,
)
from repro.rules.engine import Rule
from repro.rules.facts import Fact

__all__ = ["check_ledgers", "check_retracts", "subject_types_of"]

#: statuses a lifecycle subject is driven to, and how a standing charge
#: at that terminal is classified
_TERMINALS = (("failed", Severity.ERROR), ("done", Severity.INFO))


def subject_types_of(
    universe: Sequence[Type[Fact]], factory: FactFactory
) -> list[Type[Fact]]:
    """Lifecycle subjects: types whose entry-shaped instances start in the
    ``"submitted"`` state — the facts the service later drives to a
    terminal status (transfers, cleanups, and fixture equivalents)."""
    subjects = []
    for fact_type in universe:
        defaults = entry_defaults(fact_type, factory)
        if defaults.get("status") == "submitted":
            subjects.append(fact_type)
    return subjects


def _entry_soup(
    universe: Sequence[Type[Fact]],
    subjects: Sequence[Type[Fact]],
    factory: FactFactory,
) -> tuple[list[tuple], list[int]]:
    """One randomized pre-admission soup of entry-shaped facts; returns
    (fact specs, indices of the subject facts)."""
    rng = factory.rng
    soup: list[tuple] = []
    subject_indices: list[int] = []
    for fact_type in universe:
        if fact_type in subjects:
            continue
        for _ in range(rng.randint(0, 2)):
            fact = factory.make_entry(fact_type)
            if fact is not None:
                soup.append(snapshot_fact(fact))
    for fact_type in subjects:
        for _ in range(rng.randint(1, 3)):
            fact = factory.make_entry(fact_type)
            if fact is not None:
                subject_indices.append(len(soup))
                soup.append(snapshot_fact(fact))
    return soup, subject_indices


def check_ledgers(
    name: str,
    rules: Sequence[Rule],
    rule_builders: Sequence[Callable],
    session_globals: dict,
    universe: Sequence[Type[Fact]],
    factory: FactFactory,
    report: Report,
    trials: int = 8,
) -> None:
    """Run the V002 ledger-balance check over randomized entry lifecycles."""
    subjects = subject_types_of(universe, factory)
    if not subjects:
        return
    defaults = {
        _type_ref(fact_type): {
            attr: value
            for attr, value in entry_defaults(fact_type, factory).items()
            if isinstance(value, (int, float)) and not isinstance(value, bool)
        }
        for fact_type in universe
    }
    seen: set = set()
    for terminal, severity in _TERMINALS:
        for _trial in range(trials):
            soup, subject_indices = _entry_soup(universe, subjects, factory)
            if not subject_indices:
                continue
            leaks = run_ledger_scenario(
                rules, session_globals, soup, subject_indices, terminal, defaults
            )
            for leak in leaks or ():
                marker = (terminal, leak["type_ref"], leak["attr"])
                if marker in seen:
                    continue
                seen.add(marker)
                _report_leak(
                    name, rules, rule_builders, session_globals,
                    soup, subject_indices, terminal, severity, defaults,
                    leak, report,
                )


def _report_leak(
    name: str,
    rules: Sequence[Rule],
    rule_builders: Sequence[Callable],
    session_globals: dict,
    soup: Sequence[tuple],
    subject_indices: Sequence[int],
    terminal: str,
    severity: str,
    defaults: dict,
    leak: dict,
    report: Report,
) -> None:
    target = (leak["type_ref"], leak["attr"])

    def still_leaks(candidate: Sequence[tuple]) -> bool:
        # subject indices shift as facts drop; recompute from identity
        index_of = {id(spec): i for i, spec in enumerate(candidate)}
        new_subjects = [
            index_of[id(soup[i])] for i in subject_indices if id(soup[i]) in index_of
        ]
        if not new_subjects:
            return False
        found = run_ledger_scenario(
            rules, session_globals, candidate, new_subjects, terminal, defaults
        )
        return any((f["type_ref"], f["attr"]) == target for f in found or ())

    minimal = minimize_soup(soup, still_leaks)
    index_of = {id(spec): i for i, spec in enumerate(minimal)}
    minimal_subjects = [
        index_of[id(soup[i])] for i in subject_indices if id(soup[i]) in index_of
    ]
    doc = counterexample_doc(
        "ledger", rule_builders, session_globals, minimal,
        subjects=minimal_subjects, terminal=terminal, defaults=defaults,
        leaks=[{k: v for k, v in leak.items() if k != "fact"}], pack=name,
    )
    if severity == Severity.ERROR and not replay_counterexample(doc)["reproduced"]:
        return  # no heuristic-only errors
    verb = "leaks" if severity == Severity.ERROR else "retains"
    report.add(
        "V002",
        severity,
        f"{leak['fact_type']}.{leak['attr']}",
        f"reserve-shaped charge on {leak['fact_type']}.{leak['attr']} "
        f"{verb} after every subject reaches terminal state "
        f"{terminal!r}: {leak['residual']!r} held vs. pristine "
        f"{leak['expected']!r} ({leak['fact']}); "
        + (
            "the failure path must release every reservation"
            if severity == Severity.ERROR
            else "retained-on-success charges are accounting by design — "
            "review, do not unwind"
        ),
        counterexample=doc,
        terminal=terminal,
    )


def check_retracts(graph: InteractionGraph, report: Report) -> None:
    """V003: retract-while-referenced across salience tiers (static)."""
    for retractor, reader, fact_type, detail in graph.retract_while_referenced():
        report.add(
            "V003",
            Severity.WARNING,
            retractor.name,
            f"retracts {fact_type.__name__} (salience {retractor.salience}) "
            f"while lower-tier rule {reader.name!r} (salience "
            f"{reader.salience}) still positively matches on it and "
            f"{detail}: pending lower-tier work can vanish mid-cascade",
            location=location_of(retractor.rule.then),
            reader=reader.name,
            fact_type=fact_type.__name__,
        )
    for io in graph.nodes.values():
        if io.effects.opaque and io.approx_written_types:
            types = sorted(t.__name__ for t in io.approx_written_types)
            report.add(
                "V003",
                Severity.INFO,
                io.name,
                "action resolves working-memory targets through memory "
                f"scans; retract-while-referenced analysis is incomplete "
                f"for {', '.join(types)}",
                location=location_of(io.rule.then),
            )
