"""SARIF 2.1.0 export of analysis reports.

`SARIF <https://docs.oasis-open.org/sarif/sarif/v2.1.0/sarif-v2.1.0.html>`_
is the interchange format code-scanning UIs (GitHub code scanning, VS
Code SARIF viewer) ingest.  :func:`to_sarif` renders any collection of
:class:`~repro.analysis.findings.Report` objects — linter, plan
validator, or verifier — into one SARIF log with a single ``run``:

* every distinct check id becomes a ``reportingDescriptor`` under the
  tool driver, described from :data:`CHECK_DESCRIPTIONS`;
* every finding becomes a ``result`` with the severity mapped onto SARIF
  levels (``info`` → ``note``), the ``file:line`` location parsed into a
  ``physicalLocation``, and the report target plus any JSON-safe detail
  (counterexamples included) preserved under ``properties``;
* suppression accounting is preserved per run under
  ``properties.suppressed`` so a SARIF archive still shows what was
  silenced and why that is visible.

``repro lint --format sarif`` prints this document; everything in it is
plain-JSON serializable by construction.
"""

from __future__ import annotations

import json
from typing import Iterable, Optional

from repro.analysis.findings import Finding, Report, Severity

__all__ = ["CHECK_DESCRIPTIONS", "to_sarif", "render_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"

#: check id -> one-line description surfaced as the SARIF rule metadata
CHECK_DESCRIPTIONS = {
    "R001": "keys hint does not match the attributes the guard reads",
    "R002": "guard or action references an attribute no probed fact has",
    "R003": "equal-salience rules interfere without a deterministic order",
    "R004": "higher-salience rule shadows a lower one on the same facts",
    "R005": "rule keeps firing on its own output (divergence risk)",
    "R006": "rule can never fire on any probed working memory",
    "R007": "rules form a read/write dependency cycle",
    "R008": "salience is not a named policy tier",
    "R009": "multi-pattern rule misses the join plan or its keys hints",
    "R010": "rule name is defined more than once across packs",
    "P001": "plan DAG contains a dependency cycle",
    "P002": "stage-in transfers a file no job consumes",
    "P003": "cleanup removes a file a later job still needs",
    "P004": "job consumes a file nothing produces or stages",
    "V001": "rule pack is not confluent: final state depends on the "
            "agenda tie-break (counterexample attached)",
    "V002": "reserve-shaped charge is never released on a terminal path",
    "V003": "higher tier retracts facts a lower tier still matches",
    "V004": "engines reach different final states on the same fact soup "
            "(counterexample attached)",
    "V005": "compiler plan or reads declaration disagrees with the "
            "interaction graph",
    "S001": "suppression spec matched no finding (dead suppression)",
}

_LEVELS = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.INFO: "note",
}


def _location(finding: Finding) -> Optional[dict]:
    if not finding.location:
        return None
    path, _, line = finding.location.rpartition(":")
    if not path or not line.isdigit():
        path, line = finding.location, "1"
    return {
        "physicalLocation": {
            "artifactLocation": {"uri": path},
            "region": {"startLine": int(line)},
        }
    }


def _result(report: Report, finding: Finding) -> dict:
    properties = {"target": report.target, "subject": finding.subject}
    if finding.detail:
        properties["detail"] = finding.detail
    result = {
        "ruleId": finding.check,
        "level": _LEVELS[finding.severity],
        "message": {"text": f"{finding.subject}: {finding.message}"},
        "properties": properties,
    }
    location = _location(finding)
    if location:
        result["locations"] = [location]
    return result


def to_sarif(reports: Iterable[Report], tool_name: str = "repro-lint") -> dict:
    """Render reports as one SARIF 2.1.0 log (a plain-JSON dict)."""
    reports = list(reports)
    results = []
    used_checks: set[str] = set()
    for report in reports:
        for finding in report.sorted_findings():
            used_checks.add(finding.check)
            results.append(_result(report, finding))
    rules = [
        {
            "id": check,
            "shortDescription": {
                "text": CHECK_DESCRIPTIONS.get(check, "repro analysis check")
            },
        }
        for check in sorted(used_checks)
    ]
    suppressed: dict[str, int] = {}
    for report in reports:
        for spec, count in report.suppressed.items():
            suppressed[spec] = suppressed.get(spec, 0) + count
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": tool_name,
                        "informationUri":
                            "https://github.com/paper-repro/policy-wms",
                        "rules": rules,
                    }
                },
                "results": results,
                "properties": {
                    "targets": [r.target for r in reports],
                    "suppressed": suppressed,
                },
            }
        ],
    }


def render_sarif(reports: Iterable[Report], tool_name: str = "repro-lint") -> str:
    return json.dumps(to_sarif(reports, tool_name), indent=2)
