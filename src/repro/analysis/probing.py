"""Probing substrate shared by the rule-set linter's dynamic checks.

Two capabilities live here:

* **Randomized fact synthesis** — :class:`FactFactory` builds instances of
  arbitrary :class:`~repro.rules.facts.Fact` subclasses from their
  ``__init__`` signatures, then randomly perturbs attributes.  The value
  pools are seeded from the string/number constants harvested out of the
  rule set's own guard bytecode (so ``status`` really does take values
  like ``"new"`` and ``"in_progress"`` that the guards compare against),
  plus name-based heuristics for urls/hosts/ids.

* **Bytecode attribute scanning** — :func:`guard_attribute_refs` walks a
  guard's compiled code with a tiny symbolic stack and reports which
  attributes it reads off which bound fact (the guard parameter itself,
  ``b["name"]`` subscripts of the bindings dict, and locals assigned from
  either).  The scanner is deliberately conservative: anything it cannot
  follow is dropped, so it under-reports rather than inventing references.
"""

from __future__ import annotations

import dis
import inspect
import random
from typing import Any, Callable, Iterable, Optional, Type

from repro.rules.facts import Fact

__all__ = [
    "harvest_constants",
    "fact_schema",
    "signature_of",
    "FactFactory",
    "guard_attribute_refs",
    "callable_names",
    "referenced_fact_types",
    "entry_defaults",
    "snapshot_fact",
    "clone_fact",
    "snapshot_memory",
    "clone_memory",
    "ActionEffects",
    "action_effects",
    "guard_constraint_domains",
]


# --------------------------------------------------------------------------
# Constant harvesting
# --------------------------------------------------------------------------
def _walk_code(code) -> Iterable[Any]:
    for const in code.co_consts:
        if inspect.iscode(const):
            yield from _walk_code(const)
        else:
            yield const


def harvest_constants(functions: Iterable[Callable]) -> dict[str, list]:
    """Collect literal constants from the given callables' bytecode.

    Returns pools keyed by kind: ``"str"``, ``"int"``, ``"float"`` —
    the raw material for randomized fact attributes.
    """
    strings: set[str] = set()
    ints: set[int] = set()
    floats: set[float] = set()
    for func in functions:
        code = getattr(func, "__code__", None)
        if code is None:
            continue
        for const in _walk_code(code):
            if isinstance(const, str):
                if const and len(const) <= 32 and "\n" not in const:
                    strings.add(const)
            elif isinstance(const, bool):
                continue
            elif isinstance(const, int):
                if -1000 <= const <= 1000:
                    ints.add(const)
            elif isinstance(const, float):
                floats.add(const)
    return {
        "str": sorted(strings),
        "int": sorted(ints),
        "float": sorted(floats),
    }


# --------------------------------------------------------------------------
# Fact construction
# --------------------------------------------------------------------------
#: per-type constructor signatures — inspect.signature dominates the cost
#: of randomized fact synthesis, and fact classes never change mid-run.
_SIGNATURES: dict[type, Optional[inspect.Signature]] = {}


def signature_of(fact_type: Type[Fact]) -> Optional[inspect.Signature]:
    """Cached constructor signature of a fact class (None if unretrievable)."""
    try:
        return _SIGNATURES[fact_type]
    except KeyError:
        try:
            signature: Optional[inspect.Signature] = inspect.signature(fact_type)
        except (TypeError, ValueError):
            signature = None
        _SIGNATURES[fact_type] = signature
        return signature


_HOSTS = ["alpha-host", "beta-host"]
_LFNS = ["f1.dat", "f2.dat", "f3.dat"]
_WORKFLOWS = ["wf-a", "wf-b"]
_JOBS = ["job1", "job2"]


def fact_schema(fact_type: Type[Fact], factory: "FactFactory") -> set[str]:
    """Attribute names an instance of ``fact_type`` carries.

    Derived by building a sample instance (instance ``__dict__``) plus any
    non-callable class attributes — the set a guard may legally reference.
    """
    sample = factory.make(fact_type)
    attrs: set[str] = set()
    if sample is not None:
        attrs.update(vars(sample))
    for klass in fact_type.__mro__:
        if klass in (object, Fact):
            continue
        for name, value in vars(klass).items():
            if not name.startswith("_") and not callable(value):
                attrs.add(name)
    return attrs


class FactFactory:
    """Randomized constructor/perturber for Fact subclasses."""

    def __init__(self, rng: random.Random, pools: Optional[dict[str, list]] = None):
        self.rng = rng
        pools = pools or {"str": [], "int": [], "float": []}
        self.str_pool = list(pools.get("str", [])) or ["x"]
        self.int_pool = sorted(set(pools.get("int", [])) | {0, 1, 2, 5})
        self.float_pool = sorted(set(pools.get("float", [])) | {0.0, 1.0, 10.0})

    # -- constructor argument synthesis ------------------------------------
    def _value_for(self, name: str, attempt: int) -> Any:
        rng = self.rng
        lname = name.lower()
        if "url" in lname:
            return f"gsiftp://{rng.choice(_HOSTS)}/scratch/{rng.choice(_LFNS)}"
        if "host" in lname:
            return rng.choice(_HOSTS)
        if "direction" in lname:
            return rng.choice(["src", "dst", "any"])
        if "workflow" in lname:
            return rng.choice(_WORKFLOWS)
        if "job" in lname:
            return rng.choice(_JOBS)
        if "lfn" in lname or "file" in lname:
            return rng.choice(_LFNS)
        if "cluster" in lname:
            return rng.choice(["c0", "c1"])
        if "status" in lname or "reason" in lname or "note" in lname or "item" in lname:
            return rng.choice(self.str_pool)
        if "bytes" in lname or "size" in lname or "now" in lname or "level" in lname:
            return abs(rng.choice(self.float_pool)) + rng.random()
        if "streams" in lname or "count" in lname or "threshold" in lname:
            return rng.randint(1, 8)
        if (
            lname.endswith("id")
            or lname in ("tid", "cid", "oid", "priority", "batch", "qty", "value")
        ):
            return rng.randint(0, 9)
        # Fallback ladder: plain values most constructors tolerate.
        return [0, "x", 1.0, None][attempt % 4]

    def make(self, fact_type: Type[Fact], attempts: int = 8) -> Optional[Fact]:
        """Build one instance, or None if no argument synthesis succeeds."""
        signature = signature_of(fact_type)
        if signature is None:
            return None
        for attempt in range(attempts):
            kwargs = {}
            for name, param in signature.parameters.items():
                if param.kind in (param.VAR_POSITIONAL, param.VAR_KEYWORD):
                    continue
                if param.default is not param.empty and self.rng.random() < 0.4:
                    continue  # sometimes rely on the default
                kwargs[name] = self._value_for(name, attempt)
            try:
                return fact_type(**kwargs)
            except Exception:
                continue
        return None

    # -- perturbation -------------------------------------------------------
    def perturb(self, fact: Fact, rate: float = 0.6) -> Fact:
        """Randomly reassign instance attributes from the value pools."""
        rng = self.rng
        for name, value in list(vars(fact).items()):
            if rng.random() > rate:
                continue
            if isinstance(value, bool):
                setattr(fact, name, rng.random() < 0.5)
            elif isinstance(value, set):
                population = _WORKFLOWS + self.str_pool[:2]
                size = rng.randint(0, min(2, len(population)))
                setattr(fact, name, set(rng.sample(population, size)))
            elif isinstance(value, str):
                setattr(fact, name, rng.choice(self.str_pool))
            elif isinstance(value, float):
                setattr(fact, name, abs(rng.choice(self.float_pool)))
            elif isinstance(value, int):
                setattr(fact, name, rng.choice(self.int_pool))
            elif value is None:
                # Optional slots: occasionally fill with a small number so
                # guards over lease deadlines / stream counts see both arms.
                if rng.random() < 0.5:
                    setattr(fact, name, rng.choice([1, 2.5, 4]))
        return fact

    def make_random(self, fact_type: Type[Fact]) -> Optional[Fact]:
        fact = self.make(fact_type)
        if fact is None:
            return None
        return self.perturb(fact)

    # -- entry-shaped construction ------------------------------------------
    def make_entry(self, fact_type: Type[Fact], attempts: int = 8) -> Optional[Fact]:
        """Build an instance the way a service entry point would: only the
        required constructor parameters are synthesized, every defaulted
        parameter keeps its default, and nothing is perturbed afterwards —
        so all internal bookkeeping attributes start pristine."""
        signature = signature_of(fact_type)
        if signature is None:
            return None
        for attempt in range(attempts):
            kwargs = {}
            for name, param in signature.parameters.items():
                if param.kind in (param.VAR_POSITIONAL, param.VAR_KEYWORD):
                    continue
                if param.default is not param.empty:
                    continue
                kwargs[name] = self._value_for(name, attempt)
            try:
                return fact_type(**kwargs)
            except Exception:
                continue
        return None


# --------------------------------------------------------------------------
# Entry defaults: the pristine value of each bookkeeping attribute
# --------------------------------------------------------------------------
def entry_defaults(fact_type: Type[Fact], factory: "FactFactory") -> dict[str, Any]:
    """attr -> value an entry-shaped instance of ``fact_type`` starts with.

    Covers defaulted constructor parameters and attributes ``__init__``
    sets unconditionally (ledger counters, status machines).  Attributes
    derived from required parameters (hosts parsed out of urls, etc.) are
    excluded by building two samples with different random inputs and
    keeping only the attributes whose values agree.
    """
    samples = [factory.make_entry(fact_type) for _ in range(3)]
    if any(sample is None for sample in samples):
        return {}
    first, *rest = samples
    signature = signature_of(fact_type)
    required = {
        name
        for name, param in (signature.parameters.items() if signature else ())
        if param.default is param.empty
        and param.kind not in (param.VAR_POSITIONAL, param.VAR_KEYWORD)
    }
    # Strings sliced out of required inputs (hosts parsed from urls) can
    # coincide across samples by rng luck; anything that substrings a
    # required value is derived, not a default.
    required_strings = [
        v for n, v in vars(first).items() if n in required and isinstance(v, str)
    ]
    defaults: dict[str, Any] = {}
    for name, value in vars(first).items():
        if name in required:
            continue
        if isinstance(value, str) and any(value and value in rv for rv in required_strings):
            continue
        try:
            stable = all(getattr(s, name, _MISSING) == value for s in rest)
        except Exception:
            stable = False
        if stable:
            defaults[name] = value
    return defaults


_MISSING = object()


# --------------------------------------------------------------------------
# Fact snapshot / clone (probe-session caching and counterexample replay)
# --------------------------------------------------------------------------
def _copy_value(value: Any) -> Any:
    if isinstance(value, (set, frozenset)):
        return set(value)
    if isinstance(value, list):
        return [_copy_value(v) for v in value]
    if isinstance(value, dict):
        return {k: _copy_value(v) for k, v in value.items()}
    if isinstance(value, tuple):
        return tuple(_copy_value(v) for v in value)
    return value


def snapshot_fact(fact: Fact) -> tuple[Type[Fact], dict]:
    """(type, attribute dict) capturing one fact; values are deep-copied
    far enough (sets/lists/dicts) that mutating the original or a clone
    cannot leak through."""
    return type(fact), {name: _copy_value(v) for name, v in vars(fact).items()}


def clone_fact(spec: tuple[Type[Fact], dict]) -> Fact:
    """Rebuild a fact from a :func:`snapshot_fact` spec without calling its
    constructor (constructors validate/derive; snapshots are literal)."""
    fact_type, attrs = spec
    fact = object.__new__(fact_type)
    fact.__dict__.update({name: _copy_value(v) for name, v in attrs.items()})
    return fact


def snapshot_memory(memory) -> list[tuple[Type[Fact], dict]]:
    """Snapshot every live fact in fact-id (arrival) order."""
    return [snapshot_fact(fact) for fact in memory]


def clone_memory(soup: Iterable[tuple[Type[Fact], dict]], indexed: bool = True):
    """A fresh WorkingMemory holding clones of the snapshotted facts,
    inserted in snapshot order (fact ids restart from 1)."""
    from repro.rules.facts import WorkingMemory

    memory = WorkingMemory(indexed=indexed)
    for spec in soup:
        memory.insert(clone_fact(spec))
    return memory


# --------------------------------------------------------------------------
# Bytecode attribute scanning
# --------------------------------------------------------------------------
_ATTR_OPS = {"LOAD_ATTR", "LOAD_METHOD", "STORE_ATTR"}


def guard_attribute_refs(
    func: Callable, fact_param_tag: Optional[str], bindings_param: Optional[str]
) -> set[tuple[str, str]]:
    """``(binding_tag, attribute)`` pairs a guard reads.

    ``fact_param_tag`` names the tag to report for attribute reads on the
    guard's first parameter (the candidate fact); ``bindings_param`` is
    the name of the bindings-dict parameter whose string subscripts yield
    previously bound facts.  Locals assigned from either are followed one
    step (``t = b["t"]; t.lfn``).
    """
    code = getattr(func, "__code__", None)
    if code is None:
        return set()
    varnames = code.co_varnames
    param_names = varnames[: code.co_argcount]
    tags: dict[str, Optional[str]] = {}
    if fact_param_tag is not None and param_names:
        tags[param_names[0]] = fact_param_tag
    bindings_name = None
    if bindings_param is not None and bindings_param in param_names:
        bindings_name = bindings_param

    refs: set[tuple[str, str]] = set()
    cur: Optional[str] = None          # tag of the symbolic top of stack
    cur_is_bindings = False
    pending_const: Optional[str] = None

    for instr in dis.get_instructions(code):
        op = instr.opname
        if op in ("LOAD_FAST", "LOAD_FAST_CHECK", "LOAD_FAST_AND_CLEAR"):
            cur = tags.get(instr.argval)
            cur_is_bindings = instr.argval == bindings_name
            pending_const = None
        elif op == "LOAD_CONST":
            pending_const = instr.argval if isinstance(instr.argval, str) else None
            # the const is pushed above the current value; keep cur for
            # the BINARY_SUBSCR case
        elif op == "BINARY_SUBSCR":
            if cur_is_bindings and pending_const is not None:
                cur = f"binding:{pending_const}"
            else:
                cur = None
            cur_is_bindings = False
            pending_const = None
        elif op in _ATTR_OPS:
            if cur is not None:
                refs.add((cur, instr.argval))
            cur = None
            cur_is_bindings = False
            pending_const = None
        elif op == "STORE_FAST":
            tags[instr.argval] = cur
            cur = None
            cur_is_bindings = False
            pending_const = None
        elif op in ("COPY", "NOP", "RESUME", "CACHE", "PRECALL"):
            continue
        else:
            cur = None
            cur_is_bindings = False
            if op not in ("COMPARE_OP",):
                pending_const = None
    return refs


def callable_names(func: Callable, depth: int = 2) -> set[str]:
    """All names referenced by ``func``'s code, nested code objects, and
    module-level functions it calls (followed ``depth`` levels)."""
    names: set[str] = set()
    seen: set[int] = set()

    def visit(f: Callable, level: int) -> None:
        code = getattr(f, "__code__", None)
        if code is None or id(code) in seen:
            return
        seen.add(id(code))

        def collect(c) -> None:
            names.update(c.co_names)
            for const in c.co_consts:
                if inspect.iscode(const):
                    collect(const)

        collect(code)
        if level <= 0:
            return
        module_globals = getattr(f, "__globals__", {})
        for name in list(code.co_names):
            target = module_globals.get(name)
            if callable(target) and getattr(target, "__code__", None) is not None:
                visit(target, level - 1)

    visit(func, depth)
    return names


def referenced_fact_types(func: Callable, depth: int = 2) -> set[Type[Fact]]:
    """Fact subclasses a callable (or its callees) references by name."""
    module_globals = getattr(func, "__globals__", {})
    types: set[Type[Fact]] = set()
    for name in callable_names(func, depth):
        target = module_globals.get(name)
        if isinstance(target, type) and issubclass(target, Fact):
            types.add(target)
    return types


# --------------------------------------------------------------------------
# Symbolic action/guard evaluation (the verifier's interaction substrate)
# --------------------------------------------------------------------------
# Tokens are tagged tuples describing the best-effort provenance of a
# stack slot:  ("ctx",) the action context parameter, ("const", v),
# ("param", name), ("attr", base, name), ("global", name), ("inst", cls),
# ("elem", iterable) an item drawn from iterating a token, ("null",),
# ("unknown",).  The evaluator walks bytecode linearly; branches can
# misalign the model stack, but statement boundaries (POP_TOP / empty
# stack) resynchronize it, and every consumer treats an unresolved token
# as "could be anything" — degradation is conservative, never inventive.
_UNKNOWN = ("unknown",)
_NULL = ("null",)

_LOAD_FAST_OPS = {"LOAD_FAST", "LOAD_FAST_CHECK", "LOAD_FAST_AND_CLEAR"}


class _Event:
    """One observed operation: a call, a comparison, or a containment."""

    __slots__ = ("kind", "target", "args", "kwargs", "op")

    def __init__(self, kind, target=None, args=(), kwargs=None, op=None):
        self.kind = kind          # "call" | "cmp" | "contains"
        self.target = target      # callable token / left operand
        self.args = list(args)    # arg tokens / (right operand,)
        self.kwargs = kwargs or {}
        self.op = op              # comparison operator for "cmp"


def _symbolic_events(
    func: Callable,
    env: dict[str, tuple],
    depth: int = 3,
    _seen: Optional[set] = None,
) -> tuple[list[_Event], bool]:
    """(events, or_logic): calls/comparisons observed in ``func``'s code,
    with parameters substituted from ``env`` and module-level helper calls
    inlined ``depth`` levels.  ``or_logic`` reports whether the code uses
    OR-shaped control flow (so conjunctive constraint readers must bail).
    """
    code = getattr(func, "__code__", None)
    if code is None:
        return [], True
    if _seen is None:
        _seen = set()
    if id(code) in _seen:
        return [], False
    _seen.add(id(code))
    module_globals = getattr(func, "__globals__", {})

    events: list[_Event] = []
    or_logic = False
    stack: list[tuple] = []
    kwnames: tuple = ()

    def push(token):
        stack.append(token)

    def pop():
        return stack.pop() if stack else _UNKNOWN

    for instr in dis.get_instructions(code):
        op = instr.opname
        if op in _LOAD_FAST_OPS:
            push(env.get(instr.argval, ("param", instr.argval)))
        elif op == "LOAD_CONST":
            push(("const", instr.argval))
        elif op == "LOAD_GLOBAL":
            if instr.arg is not None and instr.arg & 1:
                push(_NULL)
            push(("global", instr.argval))
        elif op in ("LOAD_DEREF", "LOAD_CLASSDEREF"):
            push(("param", instr.argval))
        elif op in ("LOAD_ATTR", "LOAD_METHOD"):
            base = pop()
            if op == "LOAD_METHOD":
                # layout: callable, then self (the receiver is implicit
                # in the attr token, so a placeholder keeps CALL aligned)
                push(("attr", base, instr.argval))
                push(_NULL)
            else:
                push(("attr", base, instr.argval))
        elif op == "KW_NAMES":
            # dis leaves KW_NAMES' argval unresolved on 3.11: read co_consts.
            names = instr.argval
            if not isinstance(names, tuple) and instr.arg is not None:
                try:
                    names = code.co_consts[instr.arg]
                except IndexError:
                    names = ()
            kwnames = names if isinstance(names, tuple) else ()
        elif op == "BINARY_SUBSCR":
            index = pop()
            base = pop()
            if index[0] == "const" and isinstance(index[1], str):
                push(("item", base, index[1]))
            else:
                push(_UNKNOWN)
        elif op in ("PRECALL", "NOP", "RESUME", "CACHE"):
            continue
        elif op == "CALL":
            argc = instr.arg or 0
            args = [pop() for _ in range(argc)][::-1]
            second = pop()   # self / NULL placeholder
            first = pop()    # callable (or NULL before a plain global)
            if first == _NULL:
                callee = second
            else:
                callee = first
                if second != _NULL:
                    args = [second] + args
            kwargs: dict[str, tuple] = {}
            if kwnames:
                n = len(kwnames)
                kwargs = dict(zip(kwnames, args[-n:]))
                args = args[:-n]
            kwnames = ()
            events.append(_Event("call", callee, args, kwargs))
            result: tuple = _UNKNOWN
            if callee[0] == "global":
                target = module_globals.get(callee[1])
                if isinstance(target, type) and issubclass(target, Fact):
                    result = ("inst", target)
                elif (
                    depth > 0
                    and callable(target)
                    and getattr(target, "__code__", None) is not None
                ):
                    helper_code = target.__code__
                    names = helper_code.co_varnames[: helper_code.co_argcount]
                    helper_env = dict(zip(names, args))
                    sub_events, sub_or = _symbolic_events(
                        target, helper_env, depth - 1, _seen
                    )
                    events.extend(sub_events)
                    or_logic = or_logic or sub_or
            push(result)
        elif op == "COMPARE_OP":
            right = pop()
            left = pop()
            events.append(_Event("cmp", left, (right,), op=instr.argval))
            push(_UNKNOWN)
        elif op == "CONTAINS_OP":
            right = pop()
            left = pop()
            if instr.argval == 0 or instr.arg == 0:
                events.append(_Event("contains", left, (right,)))
            push(_UNKNOWN)
        elif op == "STORE_FAST":
            env[instr.argval] = pop()
        elif op == "GET_ITER":
            push(("iter", pop()))
        elif op == "FOR_ITER":
            top = stack[-1] if stack else _UNKNOWN
            source = top[1] if top[0] == "iter" else top
            push(("elem", source))
        elif op == "POP_TOP":
            pop()
        elif op in ("UNARY_NOT",):
            or_logic = True  # negation flips constraint polarity: bail
            pop()
            push(_UNKNOWN)
        elif "JUMP_IF_TRUE" in op or op == "JUMP_IF_TRUE_OR_POP":
            or_logic = True
        else:
            # Generic opcode: keep the stack depth roughly aligned, and
            # clobber the top token — a mis-tracked token would be worse
            # than an unknown one.
            try:
                effect = dis.stack_effect(instr.opcode, instr.arg)
            except ValueError:
                effect = 0
            if effect < 0:
                for _ in range(-effect):
                    pop()
            else:
                for _ in range(effect):
                    push(_UNKNOWN)
            if stack:
                stack[-1] = _UNKNOWN
    return events, or_logic


class ActionEffects:
    """What a rule action does to working memory, by fact type/attribute.

    ``updates`` maps fact type -> {attr: set of known written constants,
    or None when some written value is opaque}.  ``opaque`` is True when
    a working-memory operation's target could not be resolved — consumers
    must then over-approximate (as :func:`rulelint._action_writes` does).
    """

    __slots__ = ("inserts", "updates", "retracts", "opaque")

    def __init__(self) -> None:
        self.inserts: set[Type[Fact]] = set()
        self.updates: dict[Type[Fact], dict[str, Optional[set]]] = {}
        self.retracts: set[Type[Fact]] = set()
        self.opaque = False

    def updated_attrs(self, fact_type: Type[Fact]) -> set[str]:
        return set(self.updates.get(fact_type, ()))

    def written_values(self, fact_type: Type[Fact], attr: str) -> Optional[set]:
        """Known constants written to (type, attr); None = unknown value."""
        return self.updates.get(fact_type, {}).get(attr)


def _token_fact_type(
    token: tuple, bound_types: dict[str, Type[Fact]]
) -> Optional[Type[Fact]]:
    """Resolve a token to the fact type it denotes, if determinable."""
    if token[0] == "inst":
        return token[1]
    if token[0] == "attr" and token[1] == ("ctx",):
        return bound_types.get(token[2])
    if token[0] == "elem":
        return _token_fact_type(token[1], bound_types)
    if token[0] == "item" and token[1][0] == "attr":
        # bindings dict subscript inside helpers: b["t"]
        return bound_types.get(token[2])
    return None


def action_effects(
    then: Callable, bound_types: dict[str, Type[Fact]], depth: int = 3
) -> ActionEffects:
    """Scan a rule action for its working-memory effects.

    ``bound_types`` maps binding names to fact types (Pattern and Collect
    bindings), so ``ctx.update(ctx.t, ...)`` resolves to a concrete type.
    """
    effects = ActionEffects()
    code = getattr(then, "__code__", None)
    if code is None:
        effects.opaque = True
        return effects
    params = code.co_varnames[: code.co_argcount]
    env: dict[str, tuple] = {params[0]: ("ctx",)} if params else {}
    events, _ = _symbolic_events(then, env, depth)
    for event in events:
        if event.kind != "call":
            continue
        callee = event.target
        if callee[0] != "attr" or callee[1] != ("ctx",):
            continue
        method = callee[2]
        if method == "insert":
            target = event.args[0] if event.args else _UNKNOWN
            fact_type = _token_fact_type(target, bound_types)
            if fact_type is None:
                effects.opaque = True
            else:
                effects.inserts.add(fact_type)
        elif method == "update":
            target = event.args[0] if event.args else _UNKNOWN
            fact_type = _token_fact_type(target, bound_types)
            if fact_type is None:
                effects.opaque = True
                continue
            attrs = effects.updates.setdefault(fact_type, {})
            for attr, value in event.kwargs.items():
                known = attrs.get(attr, set())
                if known is None:
                    continue
                if value[0] == "const":
                    known.add(value[1])
                    attrs[attr] = known
                else:
                    attrs[attr] = None
            if not event.kwargs:
                effects.opaque = True
        elif method == "retract":
            target = event.args[0] if event.args else _UNKNOWN
            fact_type = _token_fact_type(target, bound_types)
            if fact_type is None:
                effects.opaque = True
            else:
                effects.retracts.add(fact_type)
    return effects


def guard_constraint_domains(
    func: Optional[Callable], depth: int = 2
) -> Optional[dict[str, frozenset]]:
    """Necessary equality constraints a guard imposes on its candidate fact.

    Returns ``{attr: allowed values}`` — the guard can only accept a fact
    whose ``attr`` is in the set — derived from ``==`` comparisons and
    ``in (const, ...)`` tests against the guard's first parameter, with
    module-level helper calls inlined.  Returns ``None`` when the guard
    uses OR-shaped control flow or negation (no conjunctive reading) and
    ``{}`` when no constraints are derivable.  Used by the verifier to
    prune infeasible rule-interaction edges; an empty result just means
    "no pruning", so under-reporting is safe.
    """
    if func is None:
        return {}
    code = getattr(func, "__code__", None)
    if code is None:
        return {}
    params = code.co_varnames[: code.co_argcount]
    if not params:
        return {}
    env: dict[str, tuple] = {params[0]: ("cand",)}
    events, or_logic = _symbolic_events(func, env, depth)
    if or_logic:
        return None

    def candidate_attr(token: tuple) -> Optional[str]:
        if token[0] == "attr" and token[1] == ("cand",):
            return token[2]
        return None

    domains: dict[str, frozenset] = {}

    def constrain(attr: str, values: Iterable) -> None:
        allowed = frozenset(values)
        if attr in domains:
            allowed = domains[attr] & allowed
        domains[attr] = allowed

    for event in events:
        if event.kind == "cmp" and event.op == "==":
            left, right = event.target, event.args[0]
            attr = candidate_attr(left)
            const = right if right[0] == "const" else None
            if attr is None:
                attr = candidate_attr(right)
                const = left if left[0] == "const" else None
            if attr is not None and const is not None:
                try:
                    constrain(attr, (const[1],))
                except TypeError:
                    pass  # unhashable constant
        elif event.kind == "contains":
            attr = candidate_attr(event.target)
            container = event.args[0]
            if (
                attr is not None
                and container[0] == "const"
                and isinstance(container[1], (tuple, frozenset))
            ):
                try:
                    constrain(attr, container[1])
                except TypeError:
                    pass
    return domains
