"""Probing substrate shared by the rule-set linter's dynamic checks.

Two capabilities live here:

* **Randomized fact synthesis** — :class:`FactFactory` builds instances of
  arbitrary :class:`~repro.rules.facts.Fact` subclasses from their
  ``__init__`` signatures, then randomly perturbs attributes.  The value
  pools are seeded from the string/number constants harvested out of the
  rule set's own guard bytecode (so ``status`` really does take values
  like ``"new"`` and ``"in_progress"`` that the guards compare against),
  plus name-based heuristics for urls/hosts/ids.

* **Bytecode attribute scanning** — :func:`guard_attribute_refs` walks a
  guard's compiled code with a tiny symbolic stack and reports which
  attributes it reads off which bound fact (the guard parameter itself,
  ``b["name"]`` subscripts of the bindings dict, and locals assigned from
  either).  The scanner is deliberately conservative: anything it cannot
  follow is dropped, so it under-reports rather than inventing references.
"""

from __future__ import annotations

import dis
import inspect
import random
from typing import Any, Callable, Iterable, Optional, Type

from repro.rules.facts import Fact

__all__ = [
    "harvest_constants",
    "fact_schema",
    "FactFactory",
    "guard_attribute_refs",
    "callable_names",
    "referenced_fact_types",
]


# --------------------------------------------------------------------------
# Constant harvesting
# --------------------------------------------------------------------------
def _walk_code(code) -> Iterable[Any]:
    for const in code.co_consts:
        if inspect.iscode(const):
            yield from _walk_code(const)
        else:
            yield const


def harvest_constants(functions: Iterable[Callable]) -> dict[str, list]:
    """Collect literal constants from the given callables' bytecode.

    Returns pools keyed by kind: ``"str"``, ``"int"``, ``"float"`` —
    the raw material for randomized fact attributes.
    """
    strings: set[str] = set()
    ints: set[int] = set()
    floats: set[float] = set()
    for func in functions:
        code = getattr(func, "__code__", None)
        if code is None:
            continue
        for const in _walk_code(code):
            if isinstance(const, str):
                if const and len(const) <= 32 and "\n" not in const:
                    strings.add(const)
            elif isinstance(const, bool):
                continue
            elif isinstance(const, int):
                if -1000 <= const <= 1000:
                    ints.add(const)
            elif isinstance(const, float):
                floats.add(const)
    return {
        "str": sorted(strings),
        "int": sorted(ints),
        "float": sorted(floats),
    }


# --------------------------------------------------------------------------
# Fact construction
# --------------------------------------------------------------------------
_HOSTS = ["alpha-host", "beta-host"]
_LFNS = ["f1.dat", "f2.dat", "f3.dat"]
_WORKFLOWS = ["wf-a", "wf-b"]
_JOBS = ["job1", "job2"]


def fact_schema(fact_type: Type[Fact], factory: "FactFactory") -> set[str]:
    """Attribute names an instance of ``fact_type`` carries.

    Derived by building a sample instance (instance ``__dict__``) plus any
    non-callable class attributes — the set a guard may legally reference.
    """
    sample = factory.make(fact_type)
    attrs: set[str] = set()
    if sample is not None:
        attrs.update(vars(sample))
    for klass in fact_type.__mro__:
        if klass in (object, Fact):
            continue
        for name, value in vars(klass).items():
            if not name.startswith("_") and not callable(value):
                attrs.add(name)
    return attrs


class FactFactory:
    """Randomized constructor/perturber for Fact subclasses."""

    def __init__(self, rng: random.Random, pools: Optional[dict[str, list]] = None):
        self.rng = rng
        pools = pools or {"str": [], "int": [], "float": []}
        self.str_pool = list(pools.get("str", [])) or ["x"]
        self.int_pool = sorted(set(pools.get("int", [])) | {0, 1, 2, 5})
        self.float_pool = sorted(set(pools.get("float", [])) | {0.0, 1.0, 10.0})

    # -- constructor argument synthesis ------------------------------------
    def _value_for(self, name: str, attempt: int) -> Any:
        rng = self.rng
        lname = name.lower()
        if "url" in lname:
            return f"gsiftp://{rng.choice(_HOSTS)}/scratch/{rng.choice(_LFNS)}"
        if "host" in lname:
            return rng.choice(_HOSTS)
        if "direction" in lname:
            return rng.choice(["src", "dst", "any"])
        if "workflow" in lname:
            return rng.choice(_WORKFLOWS)
        if "job" in lname:
            return rng.choice(_JOBS)
        if "lfn" in lname or "file" in lname:
            return rng.choice(_LFNS)
        if "cluster" in lname:
            return rng.choice(["c0", "c1"])
        if "status" in lname or "reason" in lname or "note" in lname or "item" in lname:
            return rng.choice(self.str_pool)
        if "bytes" in lname or "size" in lname or "now" in lname or "level" in lname:
            return abs(rng.choice(self.float_pool)) + rng.random()
        if "streams" in lname or "count" in lname or "threshold" in lname:
            return rng.randint(1, 8)
        if (
            lname.endswith("id")
            or lname in ("tid", "cid", "oid", "priority", "batch", "qty", "value")
        ):
            return rng.randint(0, 9)
        # Fallback ladder: plain values most constructors tolerate.
        return [0, "x", 1.0, None][attempt % 4]

    def make(self, fact_type: Type[Fact], attempts: int = 8) -> Optional[Fact]:
        """Build one instance, or None if no argument synthesis succeeds."""
        try:
            signature = inspect.signature(fact_type)
        except (TypeError, ValueError):
            return None
        for attempt in range(attempts):
            kwargs = {}
            for name, param in signature.parameters.items():
                if param.kind in (param.VAR_POSITIONAL, param.VAR_KEYWORD):
                    continue
                if param.default is not param.empty and self.rng.random() < 0.4:
                    continue  # sometimes rely on the default
                kwargs[name] = self._value_for(name, attempt)
            try:
                return fact_type(**kwargs)
            except Exception:
                continue
        return None

    # -- perturbation -------------------------------------------------------
    def perturb(self, fact: Fact, rate: float = 0.6) -> Fact:
        """Randomly reassign instance attributes from the value pools."""
        rng = self.rng
        for name, value in list(vars(fact).items()):
            if rng.random() > rate:
                continue
            if isinstance(value, bool):
                setattr(fact, name, rng.random() < 0.5)
            elif isinstance(value, set):
                population = _WORKFLOWS + self.str_pool[:2]
                size = rng.randint(0, min(2, len(population)))
                setattr(fact, name, set(rng.sample(population, size)))
            elif isinstance(value, str):
                setattr(fact, name, rng.choice(self.str_pool))
            elif isinstance(value, float):
                setattr(fact, name, abs(rng.choice(self.float_pool)))
            elif isinstance(value, int):
                setattr(fact, name, rng.choice(self.int_pool))
            elif value is None:
                # Optional slots: occasionally fill with a small number so
                # guards over lease deadlines / stream counts see both arms.
                if rng.random() < 0.5:
                    setattr(fact, name, rng.choice([1, 2.5, 4]))
        return fact

    def make_random(self, fact_type: Type[Fact]) -> Optional[Fact]:
        fact = self.make(fact_type)
        if fact is None:
            return None
        return self.perturb(fact)


# --------------------------------------------------------------------------
# Bytecode attribute scanning
# --------------------------------------------------------------------------
_ATTR_OPS = {"LOAD_ATTR", "LOAD_METHOD", "STORE_ATTR"}


def guard_attribute_refs(
    func: Callable, fact_param_tag: Optional[str], bindings_param: Optional[str]
) -> set[tuple[str, str]]:
    """``(binding_tag, attribute)`` pairs a guard reads.

    ``fact_param_tag`` names the tag to report for attribute reads on the
    guard's first parameter (the candidate fact); ``bindings_param`` is
    the name of the bindings-dict parameter whose string subscripts yield
    previously bound facts.  Locals assigned from either are followed one
    step (``t = b["t"]; t.lfn``).
    """
    code = getattr(func, "__code__", None)
    if code is None:
        return set()
    varnames = code.co_varnames
    param_names = varnames[: code.co_argcount]
    tags: dict[str, Optional[str]] = {}
    if fact_param_tag is not None and param_names:
        tags[param_names[0]] = fact_param_tag
    bindings_name = None
    if bindings_param is not None and bindings_param in param_names:
        bindings_name = bindings_param

    refs: set[tuple[str, str]] = set()
    cur: Optional[str] = None          # tag of the symbolic top of stack
    cur_is_bindings = False
    pending_const: Optional[str] = None

    for instr in dis.get_instructions(code):
        op = instr.opname
        if op in ("LOAD_FAST", "LOAD_FAST_CHECK", "LOAD_FAST_AND_CLEAR"):
            cur = tags.get(instr.argval)
            cur_is_bindings = instr.argval == bindings_name
            pending_const = None
        elif op == "LOAD_CONST":
            pending_const = instr.argval if isinstance(instr.argval, str) else None
            # the const is pushed above the current value; keep cur for
            # the BINARY_SUBSCR case
        elif op == "BINARY_SUBSCR":
            if cur_is_bindings and pending_const is not None:
                cur = f"binding:{pending_const}"
            else:
                cur = None
            cur_is_bindings = False
            pending_const = None
        elif op in _ATTR_OPS:
            if cur is not None:
                refs.add((cur, instr.argval))
            cur = None
            cur_is_bindings = False
            pending_const = None
        elif op == "STORE_FAST":
            tags[instr.argval] = cur
            cur = None
            cur_is_bindings = False
            pending_const = None
        elif op in ("COPY", "NOP", "RESUME", "CACHE", "PRECALL"):
            continue
        else:
            cur = None
            cur_is_bindings = False
            if op not in ("COMPARE_OP",):
                pending_const = None
    return refs


def callable_names(func: Callable, depth: int = 2) -> set[str]:
    """All names referenced by ``func``'s code, nested code objects, and
    module-level functions it calls (followed ``depth`` levels)."""
    names: set[str] = set()
    seen: set[int] = set()

    def visit(f: Callable, level: int) -> None:
        code = getattr(f, "__code__", None)
        if code is None or id(code) in seen:
            return
        seen.add(id(code))

        def collect(c) -> None:
            names.update(c.co_names)
            for const in c.co_consts:
                if inspect.iscode(const):
                    collect(const)

        collect(code)
        if level <= 0:
            return
        module_globals = getattr(f, "__globals__", {})
        for name in list(code.co_names):
            target = module_globals.get(name)
            if callable(target) and getattr(target, "__code__", None) is not None:
                visit(target, level - 1)

    visit(func, depth)
    return names


def referenced_fact_types(func: Callable, depth: int = 2) -> set[Type[Fact]]:
    """Fact subclasses a callable (or its callees) references by name."""
    module_globals = getattr(func, "__globals__", {})
    types: set[Type[Fact]] = set()
    for name in callable_names(func, depth):
        target = module_globals.get(name)
        if isinstance(target, type) and issubclass(target, Fact):
            types.add(target)
    return types
