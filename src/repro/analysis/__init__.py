"""Static analysis of policy rule sets and staged execution plans.

Two analyzers over a shared findings model:

* :mod:`repro.analysis.rulelint` — checks built rule sets for unsound
  ``keys`` hints, unknown fact attributes, salience ties/shadowing,
  divergence risk, unreachable rules, and dependency cycles.
* :mod:`repro.analysis.planlint` — checks planner output DAGs for cycles,
  useless stage-ins, premature cleanup, and unproduced inputs.

Run both from the command line with ``python -m repro lint``.
"""

from repro.analysis.findings import Finding, Report, Severity
from repro.analysis.planlint import lint_plan
from repro.analysis.rulelint import lint_rule_set, lint_rules, shipped_rule_sets

__all__ = [
    "Finding",
    "Report",
    "Severity",
    "lint_plan",
    "lint_rule_set",
    "lint_rules",
    "shipped_rule_sets",
]
