"""Static analysis of policy rule sets and staged execution plans.

Three analyzers over a shared findings model:

* :mod:`repro.analysis.rulelint` — checks built rule sets one rule at a
  time for unsound ``keys`` hints, unknown fact attributes, salience
  ties/shadowing, divergence risk, unreachable rules, and dependency
  cycles (R001–R010).
* :mod:`repro.analysis.planlint` — checks planner output DAGs for cycles,
  useless stage-ins, premature cleanup, and unproduced inputs
  (P001–P004).
* :mod:`repro.analysis.verifier` — checks whole *compositions* of rule
  packs for confluence, ledger balance, retract-while-referenced, engine
  parity, and compiler agreement (V001–V005); every dynamic error carries
  a machine-replayed counterexample.

Reports export as text, JSON, or SARIF 2.1.0
(:mod:`repro.analysis.sarif`); dead suppressions surface as S001
warnings (:func:`flag_dead_suppressions`).  Run everything from the
command line with ``python -m repro lint --all --verify``.
"""

from repro.analysis.findings import (
    Finding,
    Report,
    Severity,
    flag_dead_suppressions,
)
from repro.analysis.planlint import lint_plan
from repro.analysis.rulelint import lint_rule_set, lint_rules, shipped_rule_sets
from repro.analysis.sarif import render_sarif, to_sarif
from repro.analysis.verifier import (
    VERIFY_SUPPRESSIONS,
    VerifyOptions,
    replay_counterexample,
    verify_all,
    verify_compositions,
    verify_pack,
)

__all__ = [
    "Finding",
    "Report",
    "Severity",
    "flag_dead_suppressions",
    "lint_plan",
    "lint_rule_set",
    "lint_rules",
    "shipped_rule_sets",
    "render_sarif",
    "to_sarif",
    "VERIFY_SUPPRESSIONS",
    "VerifyOptions",
    "replay_counterexample",
    "verify_all",
    "verify_compositions",
    "verify_pack",
]
