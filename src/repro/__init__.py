"""repro — policy-driven data staging for scientific workflows.

A full reproduction of *"Integrating Policy with Scientific Workflow
Management for Data-Intensive Applications"* (Chervenak, Smith, Chen,
Deelman — SC 2012): a **Policy Service** that advises a Pegasus-like
workflow manager on data staging (de-duplication, safe cross-workflow
sharing, host-pair grouping, greedy/balanced parallel-stream allocation),
plus every substrate the paper depends on, built from scratch:

* a discrete-event simulation kernel (:mod:`repro.des`),
* a Drools-like production rule engine (:mod:`repro.rules`),
* a simulated GridFTP/WAN transfer fabric (:mod:`repro.net`),
* Pegasus-style catalogs, planner, and DAGMan-like executor
  (:mod:`repro.catalogs`, :mod:`repro.planner`, :mod:`repro.engine`),
* the Montage workflow generator and the paper's evaluation harness
  (:mod:`repro.workflow`, :mod:`repro.experiments`).

Quickstart
----------
>>> from repro import PolicyConfig, PolicyService
>>> service = PolicyService(PolicyConfig(policy="greedy", max_streams=50))
>>> advice = service.submit_transfers(
...     "wf-1", "stage_in_job", [{
...         "lfn": "data.fits",
...         "src_url": "gsiftp://remote/data.fits",
...         "dst_url": "gsiftp://cluster/scratch/data.fits",
...         "nbytes": 2_000_000, "streams": 8,
...     }])
>>> advice[0].action, advice[0].streams
('transfer', 8)

See ``examples/`` for end-to-end scenarios and ``benchmarks/`` for the
paper's tables and figures.
"""

from repro.catalogs import ReplicaCatalog, SiteCatalog, SiteEntry, TransformationCatalog
from repro.engine import (
    CleanupTool,
    ClusterScheduler,
    DAGMan,
    PegasusTransferTool,
    StorageTracker,
)
from repro.experiments import ExperimentConfig, TestbedParams, build_testbed, run_cell
from repro.experiments.campaign import CampaignConfig, run_staging_campaign
from repro.experiments.runner import (
    WorkflowExecution,
    run_concurrent_workflows,
    run_ensemble,
    run_replicates,
    run_workflow,
)
from repro.metrics import RunMetrics, ascii_timeline, run_provenance
from repro.planner import JobKind, Planner, PlanOptions, constrain_staging_footprint
from repro.policy import (
    InProcessPolicyClient,
    PolicyConfig,
    PolicyService,
    max_streams_table,
)
from repro.policy.adaptive import AdaptiveSettings, AdaptiveThresholdController
from repro.policy.client import HTTPPolicyClient
from repro.policy.rest import PolicyRestServer
from repro.policy.tuning import ThresholdTuner
from repro.workflow import (
    File,
    Job,
    MontageConfig,
    Workflow,
    augmented_montage,
    cybershake_workflow,
    epigenomics_workflow,
    montage_workflow,
)

__version__ = "1.0.0"

__all__ = [
    "AdaptiveSettings",
    "AdaptiveThresholdController",
    "CampaignConfig",
    "CleanupTool",
    "ClusterScheduler",
    "DAGMan",
    "ExperimentConfig",
    "File",
    "HTTPPolicyClient",
    "InProcessPolicyClient",
    "Job",
    "JobKind",
    "MontageConfig",
    "PegasusTransferTool",
    "PlanOptions",
    "Planner",
    "PolicyConfig",
    "PolicyRestServer",
    "PolicyService",
    "ReplicaCatalog",
    "RunMetrics",
    "SiteCatalog",
    "SiteEntry",
    "StorageTracker",
    "TestbedParams",
    "ThresholdTuner",
    "TransformationCatalog",
    "Workflow",
    "WorkflowExecution",
    "ascii_timeline",
    "augmented_montage",
    "build_testbed",
    "constrain_staging_footprint",
    "cybershake_workflow",
    "epigenomics_workflow",
    "max_streams_table",
    "montage_workflow",
    "run_cell",
    "run_concurrent_workflows",
    "run_ensemble",
    "run_provenance",
    "run_replicates",
    "run_staging_campaign",
    "run_workflow",
]
