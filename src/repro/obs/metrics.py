"""A zero-dependency metrics registry (Prometheus-style).

Counters, gauges, and histograms, each optionally labelled; one
:class:`MetricsRegistry` per service/run owns the families and renders
the whole census as Prometheus text exposition format
(:meth:`MetricsRegistry.render`) or a JSON-able dict
(:meth:`MetricsRegistry.to_dict`).

Hot paths pre-resolve label children once
(``child = family.labels(action="approved")``) so each increment is one
attribute lookup and a float add — the same cost as the ad-hoc counter
dicts this replaces.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

__all__ = ["MetricsRegistry", "Counter", "Gauge", "Histogram"]

#: default histogram buckets (seconds-flavoured, like Prometheus')
DEFAULT_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

_VALID_FIRST = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_:")


def _check_name(name: str) -> str:
    if not name or name[0] not in _VALID_FIRST or not all(
        c.isalnum() or c in "_:" for c in name
    ):
        raise ValueError(f"invalid metric name {name!r}")
    return name


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    as_int = int(value)
    if value == as_int:
        return str(as_int)
    return repr(value)


def _label_suffix(labelnames: Sequence[str], labelvalues: tuple) -> str:
    if not labelnames:
        return ""
    pairs = ",".join(
        f'{name}="{_escape_label(str(value))}"'
        for name, value in zip(labelnames, labelvalues)
    )
    return "{" + pairs + "}"


class _Family:
    """Common machinery: a named metric with labelled children."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labelnames: Sequence[str]):
        self.name = _check_name(name)
        self.help = help
        self.labelnames = tuple(labelnames)
        self._children: dict[tuple, object] = {}

    def _child_for(self, labelvalues: tuple):
        child = self._children.get(labelvalues)
        if child is None:
            child = self._children[labelvalues] = self._new_child()
        return child

    def labels(self, **labels: object):
        """The child for one label combination (created on first use)."""
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} takes labels {list(self.labelnames)}, "
                f"got {sorted(labels)}"
            )
        return self._child_for(tuple(str(labels[n]) for n in self.labelnames))

    def _only_child(self):
        if self.labelnames:
            raise ValueError(f"metric {self.name!r} is labelled; use .labels(...)")
        return self._child_for(())

    def _new_child(self):  # pragma: no cover - abstract
        raise NotImplementedError

    def samples(self) -> Iterable[tuple[str, str, float]]:
        """(name, label-suffix, value) triples, labels sorted for stable text."""
        for labelvalues in sorted(self._children):
            child = self._children[labelvalues]
            suffix = _label_suffix(self.labelnames, labelvalues)
            yield from child._samples(self.name, self.labelnames, labelvalues, suffix)


class _CounterChild:
    __slots__ = ("_value",)

    def __init__(self):
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def _samples(self, name, labelnames, labelvalues, suffix):
        yield (name, suffix, self._value)


class Counter(_Family):
    """Monotonically increasing count."""

    kind = "counter"

    def _new_child(self):
        return _CounterChild()

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        (self.labels(**labels) if labels else self._only_child()).inc(amount)

    def value(self, **labels: object) -> float:
        child = self.labels(**labels) if labels else self._children.get(())
        return child.value if child is not None else 0.0


class _GaugeChild:
    __slots__ = ("_value",)

    def __init__(self):
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._value -= amount

    @property
    def value(self) -> float:
        return self._value

    def _samples(self, name, labelnames, labelvalues, suffix):
        yield (name, suffix, self._value)


class Gauge(_Family):
    """A value that can go up and down."""

    kind = "gauge"

    def _new_child(self):
        return _GaugeChild()

    def set(self, value: float, **labels: object) -> None:
        (self.labels(**labels) if labels else self._only_child()).set(value)

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        (self.labels(**labels) if labels else self._only_child()).inc(amount)

    def dec(self, amount: float = 1.0, **labels: object) -> None:
        (self.labels(**labels) if labels else self._only_child()).dec(amount)

    def value(self, **labels: object) -> float:
        child = self.labels(**labels) if labels else self._children.get(())
        return child.value if child is not None else 0.0


class _HistogramChild:
    __slots__ = ("buckets", "counts", "total", "count")

    def __init__(self, buckets: tuple[float, ...]):
        self.buckets = buckets
        self.counts = [0] * len(buckets)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.total += value
        self.count += 1
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1

    def _samples(self, name, labelnames, labelvalues, suffix):
        # ``observe`` increments every bucket whose bound admits the value,
        # so the stored counts are already cumulative (Prometheus "le").
        for bound, bucket_count in zip(self.buckets, self.counts):
            le = _label_suffix(
                labelnames + ("le",), labelvalues + (_format_value(bound),)
            )
            yield (name + "_bucket", le, float(bucket_count))
        inf = _label_suffix(labelnames + ("le",), labelvalues + ("+Inf",))
        yield (name + "_bucket", inf, float(self.count))
        yield (name + "_sum", suffix, self.total)
        yield (name + "_count", suffix, float(self.count))


class Histogram(_Family):
    """Cumulative-bucket histogram of observed values."""

    kind = "histogram"

    def __init__(self, name, help, labelnames, buckets: Sequence[float] = DEFAULT_BUCKETS):
        super().__init__(name, help, labelnames)
        cleaned = tuple(sorted(float(b) for b in buckets))
        if not cleaned:
            raise ValueError("histogram needs at least one bucket")
        self.buckets = cleaned

    def _new_child(self):
        return _HistogramChild(self.buckets)

    def observe(self, value: float, **labels: object) -> None:
        (self.labels(**labels) if labels else self._only_child()).observe(value)


class MetricsRegistry:
    """Owns metric families; renders the Prometheus text census."""

    def __init__(self):
        self._families: dict[str, _Family] = {}

    def _register(self, cls, name: str, help: str, labelnames: Sequence[str], **kwargs):
        existing = self._families.get(name)
        if existing is not None:
            if type(existing) is not cls or existing.labelnames != tuple(labelnames):
                raise ValueError(
                    f"metric {name!r} already registered as {existing.kind} "
                    f"with labels {list(existing.labelnames)}"
                )
            return existing
        family = cls(name, help, labelnames, **kwargs)
        self._families[name] = family
        return family

    def counter(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> Counter:
        return self._register(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> Gauge:
        return self._register(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._register(Histogram, name, help, labelnames, buckets=buckets)

    def get(self, name: str) -> Optional[_Family]:
        return self._families.get(name)

    # ------------------------------------------------------------------ export
    def render(self) -> str:
        """Prometheus text exposition format (families in name order)."""
        lines: list[str] = []
        for name in sorted(self._families):
            family = self._families[name]
            if family.help:
                lines.append(f"# HELP {name} {family.help}")
            lines.append(f"# TYPE {name} {family.kind}")
            for sample_name, suffix, value in family.samples():
                lines.append(f"{sample_name}{suffix} {_format_value(value)}")
        return "\n".join(lines) + "\n"

    def to_dict(self) -> dict:
        """JSON-able census: {family: {label-suffix or "": value}}."""
        doc: dict = {}
        for name in sorted(self._families):
            family = self._families[name]
            series: dict[str, float] = {}
            for sample_name, suffix, value in family.samples():
                key = sample_name + suffix
                series[key] = value
            doc[name] = series
        return doc
