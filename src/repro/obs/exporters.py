"""Serialise tracer/registry/profiler state to files.

Three formats:

* **Chrome ``trace_event`` JSON** — open in Perfetto
  (https://ui.perfetto.dev) or ``about:tracing``.  Simulated seconds are
  mapped to microseconds (``ts = sim_time * 1e6``) and each tracer track
  becomes a named thread.
* **JSONL event log** — one canonically-encoded JSON object per line
  (sorted keys, no whitespace), so same-seed runs diff/byte-compare
  cleanly.
* **Prometheus text** — :meth:`MetricsRegistry.render` verbatim.
"""

from __future__ import annotations

import json
from typing import IO, TYPE_CHECKING, Union

if TYPE_CHECKING:  # pragma: no cover
    from .metrics import MetricsRegistry
    from .profiler import RuleProfiler
    from .tracer import Tracer

__all__ = [
    "chrome_trace_doc",
    "write_chrome_trace",
    "jsonl_lines",
    "write_jsonl",
    "write_prometheus",
    "write_rule_profile",
    "decision_lines",
    "write_decisions",
]

_PID = 1
_PHASE_SCOPE_GLOBAL = "g"


def chrome_trace_doc(tracer: "Tracer") -> dict:
    """The tracer's stream as a Chrome ``trace_event`` document (dict)."""
    events: list[dict] = []
    # Name the process and each track so Perfetto shows readable lanes.
    events.append({
        "ph": "M", "pid": _PID, "tid": 0, "name": "process_name",
        "args": {"name": "repro"},
    })
    seen_tracks: set[str] = set()
    for record in tracer.events:
        track = record["track"]
        tid = tracer.track_id(track)
        if track not in seen_tracks:
            seen_tracks.add(track)
            events.append({
                "ph": "M", "pid": _PID, "tid": tid, "name": "thread_name",
                "args": {"name": track},
            })
        event = {
            "ph": record["ph"],
            "ts": record["ts"] * 1e6,
            "pid": _PID,
            "tid": tid,
            "cat": record["cat"],
            "name": record["name"],
            "args": record["args"],
        }
        if record["ph"] == "X":
            event["dur"] = record["dur"] * 1e6
        elif record["ph"] == "i":
            event["s"] = _PHASE_SCOPE_GLOBAL
        events.append(event)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(tracer: "Tracer", dest: Union[str, IO[str]]) -> None:
    """Write the Chrome ``trace_event`` JSON to a path or open text file."""
    doc = chrome_trace_doc(tracer)
    if hasattr(dest, "write"):
        json.dump(doc, dest, indent=1)
    else:
        with open(dest, "w", encoding="utf-8") as handle:
            json.dump(doc, handle, indent=1)


def jsonl_lines(tracer: "Tracer") -> list[str]:
    """Canonical one-object-per-line encoding of the event stream."""
    return [
        json.dumps(record, sort_keys=True, separators=(",", ":"))
        for record in tracer.events
    ]


def write_jsonl(tracer: "Tracer", dest: Union[str, IO[str]]) -> None:
    text = "\n".join(jsonl_lines(tracer))
    if text:
        text += "\n"
    if hasattr(dest, "write"):
        dest.write(text)
    else:
        with open(dest, "w", encoding="utf-8") as handle:
            handle.write(text)


def write_prometheus(registry: "MetricsRegistry", dest: Union[str, IO[str]]) -> None:
    text = registry.render()
    if hasattr(dest, "write"):
        dest.write(text)
    else:
        with open(dest, "w", encoding="utf-8") as handle:
            handle.write(text)


def write_rule_profile(profiler: "RuleProfiler", dest: Union[str, IO[str]]) -> None:
    text = profiler.report() + "\n"
    if hasattr(dest, "write"):
        dest.write(text)
    else:
        with open(dest, "w", encoding="utf-8") as handle:
            handle.write(text)


def decision_lines(records: list[dict]) -> list[str]:
    """Decision-provenance records as canonical JSONL (one per line).

    Same canonical encoding as the event log: sorted keys, no
    whitespace — same-seed runs byte-compare cleanly.
    """
    return [
        json.dumps(record, sort_keys=True, separators=(",", ":"))
        for record in records
    ]


def write_decisions(records: list[dict], dest: Union[str, IO[str]]) -> None:
    """Write decision records to ``decisions.jsonl`` (path or open file)."""
    text = "\n".join(decision_lines(records))
    if text:
        text += "\n"
    if hasattr(dest, "write"):
        dest.write(text)
    else:
        with open(dest, "w", encoding="utf-8") as handle:
            handle.write(text)
