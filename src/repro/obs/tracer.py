"""Structured tracing keyed on simulated time.

A :class:`Tracer` collects an append-only stream of *events* — instants,
counter samples, and completed spans — each stamped with the current
clock reading (the simulation clock inside a DES run, wall time behind
the REST frontend) and a monotonically increasing sequence number.  The
stream is exported by :mod:`repro.obs.exporters` as Chrome
``trace_event`` JSON (loadable in ``about:tracing`` / Perfetto) or as a
JSONL event log.

Determinism
-----------
Inside a simulation every field of every event derives from simulated
time and run state, never from wall clocks or object ids, so two runs
with the same seed produce **byte-identical** JSONL streams — across the
``seed`` and ``indexed`` policy engines too (they fire the same rules in
the same order).  Wall-clock measurements (rule action latency, journal
commit latency) belong in :class:`~repro.obs.metrics.MetricsRegistry`
histograms or the :class:`~repro.obs.profiler.RuleProfiler`, never in
trace events.

Overhead
--------
Tracing is off unless a tracer is attached *and* enabled.  Hot paths
guard emission with ``if tracer is not None and tracer.enabled:`` so a
run without tracing pays one attribute test per potential event
(``benchmarks/bench_trace_overhead.py`` keeps that honest).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Callable, Iterator, Optional

__all__ = ["Tracer", "SpanHandle", "NullTracer", "as_tracer"]


class SpanHandle:
    """An open span: created by :meth:`Tracer.begin`, closed by ``end``."""

    __slots__ = ("cat", "name", "track", "t_start", "args", "_closed")

    def __init__(self, cat: str, name: str, track: str, t_start: float, args: dict):
        self.cat = cat
        self.name = name
        self.track = track
        self.t_start = t_start
        self.args = args
        self._closed = False


class Tracer:
    """Collects trace events; the run's single source of timeline truth.

    Parameters
    ----------
    clock:
        Zero-argument callable returning the current time (seconds).  A
        tracer passed to :class:`~repro.des.core.Environment` is bound to
        the simulation clock automatically; the REST frontend binds wall
        time.  Unbound tracers stamp ``0.0``.
    enabled:
        Initial state; flip :attr:`enabled` at any time.  While disabled
        every emit method is a no-op.
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None, enabled: bool = True):
        self.clock = clock
        self.enabled = bool(enabled)
        #: the event stream, in emission order
        self.events: list[dict] = []
        self._seq = 0
        #: track name -> stable integer id (Chrome "tid")
        self._tracks: dict[str, int] = {}

    # ------------------------------------------------------------------ clock
    def now(self) -> float:
        """Current clock reading (0.0 when no clock is bound)."""
        return self.clock() if self.clock is not None else 0.0

    # ------------------------------------------------------------------ emits
    def _emit(self, record: dict) -> None:
        self._seq += 1
        record["seq"] = self._seq
        self.events.append(record)

    def track_id(self, track: str) -> int:
        """Stable small integer for a track name (Chrome thread id)."""
        tid = self._tracks.get(track)
        if tid is None:
            tid = self._tracks[track] = len(self._tracks) + 1
        return tid

    def instant(self, cat: str, name: str, track: str = "main", **args: Any) -> None:
        """Emit a point-in-time event."""
        if not self.enabled:
            return
        self._emit({
            "ph": "i", "ts": self.now(), "cat": cat, "name": name,
            "track": track, "args": args,
        })

    def counter(self, cat: str, name: str, track: str = "counters", **values: float) -> None:
        """Emit a counter sample (rendered as a stacked area in Perfetto)."""
        if not self.enabled:
            return
        self._emit({
            "ph": "C", "ts": self.now(), "cat": cat, "name": name,
            "track": track, "args": values,
        })

    def begin(self, cat: str, name: str, track: str = "main", **args: Any) -> Optional[SpanHandle]:
        """Open a span; returns a handle for :meth:`end` (None when disabled)."""
        if not self.enabled:
            return None
        return SpanHandle(cat, name, track, self.now(), dict(args))

    def end(self, handle: Optional[SpanHandle], **args: Any) -> None:
        """Close a span, emitting one complete event covering its lifetime."""
        if handle is None or not self.enabled or handle._closed:
            return
        handle._closed = True
        merged = handle.args
        if args:
            merged.update(args)
        self._emit({
            "ph": "X", "ts": handle.t_start, "dur": self.now() - handle.t_start,
            "cat": handle.cat, "name": handle.name, "track": handle.track,
            "args": merged,
        })

    @contextmanager
    def span(self, cat: str, name: str, track: str = "main", **args: Any) -> Iterator[Optional[SpanHandle]]:
        """``with tracer.span(...)``: span over the block, closed on exit.

        The span is emitted even when the block raises (the exception type
        is recorded in the span's args) — error paths stay visible.
        """
        handle = self.begin(cat, name, track, **args)
        try:
            yield handle
        except BaseException as exc:
            self.end(handle, error=type(exc).__name__)
            raise
        else:
            self.end(handle)

    # ------------------------------------------------------------------ views
    def __len__(self) -> int:
        return len(self.events)

    def spans(self) -> list[dict]:
        """All completed span events."""
        return [e for e in self.events if e["ph"] == "X"]

    def by_category(self, cat: str) -> list[dict]:
        return [e for e in self.events if e["cat"] == cat]

    def summary(self) -> dict:
        """Compact census of the stream (attached to provenance docs)."""
        categories: dict[str, int] = {}
        spans = 0
        for event in self.events:
            categories[event["cat"]] = categories.get(event["cat"], 0) + 1
            if event["ph"] == "X":
                spans += 1
        return {
            "events": len(self.events),
            "spans": spans,
            "categories": dict(sorted(categories.items())),
        }


class NullTracer(Tracer):
    """A permanently disabled tracer: every emit method is a no-op.

    Instrumented code holds a tracer unconditionally and calls it without
    ``if tracer is not None and tracer.enabled`` guards — the null object
    absorbs the calls.  :attr:`enabled` is pinned ``False`` so existing
    ``tracer.enabled`` checks keep working.
    """

    def __init__(self) -> None:
        super().__init__(clock=None, enabled=False)

    @property
    def enabled(self) -> bool:  # type: ignore[override]
        return False

    @enabled.setter
    def enabled(self, value: bool) -> None:
        if value:
            raise ValueError("a NullTracer cannot be enabled; use Tracer()")

    def _emit(self, record: dict) -> None:  # pragma: no cover - never reached
        raise AssertionError("NullTracer must not emit events")


#: shared instance — NullTracer keeps no state, so one is enough
NULL_TRACER = NullTracer()


def as_tracer(tracer: Optional[Tracer]) -> Tracer:
    """``tracer`` itself, or the shared :class:`NullTracer` for ``None``.

    The uniform-instrumentation helper: call sites keep a tracer from
    ``as_tracer(tracer)`` and invoke ``begin``/``end``/``instant``
    unconditionally instead of re-testing ``tracer is not None``.
    """
    return tracer if tracer is not None else NULL_TRACER
