"""Observability: tracing, metrics, and rule-engine profiling.

See ``docs/observability.md`` for the span taxonomy, metric names, and
exporter formats.
"""

from .exporters import (
    chrome_trace_doc,
    decision_lines,
    jsonl_lines,
    write_chrome_trace,
    write_decisions,
    write_jsonl,
    write_prometheus,
    write_rule_profile,
)
from .metrics import DEFAULT_BUCKETS, Counter, Gauge, Histogram, MetricsRegistry
from .profiler import RuleProfiler, RuleStats
from .tracer import NullTracer, SpanHandle, Tracer, as_tracer

__all__ = [
    "Tracer",
    "NullTracer",
    "as_tracer",
    "SpanHandle",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_BUCKETS",
    "RuleProfiler",
    "RuleStats",
    "chrome_trace_doc",
    "decision_lines",
    "jsonl_lines",
    "write_chrome_trace",
    "write_decisions",
    "write_jsonl",
    "write_prometheus",
    "write_rule_profile",
]
