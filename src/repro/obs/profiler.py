"""Rule-engine profiling: which rules dominate the decision hot path.

A :class:`RuleProfiler` is attached to rule
:class:`~repro.rules.engine.Session` objects (the Policy Service passes
one long-lived profiler to every session it opens) and tallies, per rule:

* **activations** — activations discovered while (re)deriving agendas,
* **fires** — how often the rule's action actually ran,
* **match_s / action_s** — wall time spent matching the rule's LHS and
  executing its RHS,

plus a stream of **agenda-size samples** (total not-yet-fired
activations at each firing) showing how much work the incremental engine
carries between firings.

Wall-clock tallies live here and in the metrics registry — deliberately
*not* in the tracer, whose event stream must stay deterministic.
"""

from __future__ import annotations

import time
from typing import Callable, Iterable

__all__ = ["RuleProfiler", "RuleStats"]


class RuleStats:
    """Per-rule tallies (one row of the profile report)."""

    __slots__ = ("name", "activations", "fires", "match_s", "action_s", "nodes")

    def __init__(self, name: str):
        self.name = name
        self.activations = 0
        self.fires = 0
        self.match_s = 0.0
        self.action_s = 0.0
        #: per-node event counters from the compiled join network
        #: (e.g. ``probe_steps``: beta-memory slots walked by lazy probes)
        self.nodes: dict[str, int] = {}

    @property
    def total_s(self) -> float:
        return self.match_s + self.action_s

    def to_dict(self) -> dict:
        return {
            "rule": self.name,
            "activations": self.activations,
            "fires": self.fires,
            "match_s": self.match_s,
            "action_s": self.action_s,
            "total_s": self.total_s,
            "nodes": dict(self.nodes),
        }


class RuleProfiler:
    """Accumulates rule-engine cost across many sessions.

    ``time_fn`` is injectable for tests; sessions call :meth:`clock`
    around their match/action work only when a profiler is attached, so
    unprofiled runs never touch ``perf_counter``.
    """

    def __init__(self, time_fn: Callable[[], float] = time.perf_counter):
        self.clock = time_fn
        self.stats: dict[str, RuleStats] = {}
        self.agenda_samples: list[int] = []
        self.sessions = 0
        self.total_firings = 0

    # ------------------------------------------------------------------ intake
    def register(self, rule_names: Iterable[str]) -> None:
        """Ensure every rule of a session appears in the report (0 rows too)."""
        self.sessions += 1
        for name in rule_names:
            if name not in self.stats:
                self.stats[name] = RuleStats(name)

    def _row(self, rule_name: str) -> RuleStats:
        row = self.stats.get(rule_name)
        if row is None:
            row = self.stats[rule_name] = RuleStats(rule_name)
        return row

    def record_match(self, rule_name: str, new_activations: int, elapsed_s: float) -> None:
        row = self._row(rule_name)
        row.activations += new_activations
        row.match_s += elapsed_s

    def record_fire(self, rule_name: str, elapsed_s: float) -> None:
        row = self._row(rule_name)
        row.fires += 1
        row.action_s += elapsed_s
        self.total_firings += 1

    def record_node(self, rule_name: str, event: str, n: int = 1) -> None:
        """Count a join-network node event (compiled engine only)."""
        nodes = self._row(rule_name).nodes
        nodes[event] = nodes.get(event, 0) + n

    def sample_agenda(self, size: int) -> None:
        self.agenda_samples.append(size)

    # ------------------------------------------------------------------ report
    def rows(self) -> list[RuleStats]:
        """Rows sorted by total elapsed (desc), name-tie-broken."""
        return sorted(
            self.stats.values(), key=lambda r: (-r.total_s, -r.fires, r.name)
        )

    def to_dict(self) -> dict:
        samples = self.agenda_samples
        return {
            "sessions": self.sessions,
            "total_firings": self.total_firings,
            "agenda": {
                "samples": len(samples),
                "max": max(samples) if samples else 0,
                "mean": sum(samples) / len(samples) if samples else 0.0,
            },
            "rules": [row.to_dict() for row in self.rows()],
        }

    def report(self) -> str:
        """Human-readable profile table, hottest rules first."""
        rows = self.rows()
        header = (
            f"{'rule':<42} {'activ':>7} {'fires':>7} "
            f"{'match ms':>9} {'action ms':>10} {'total ms':>9}"
        )
        lines = [header, "-" * len(header)]
        for row in rows:
            lines.append(
                f"{row.name:<42} {row.activations:>7} {row.fires:>7} "
                f"{row.match_s * 1e3:>9.2f} {row.action_s * 1e3:>10.2f} "
                f"{row.total_s * 1e3:>9.2f}"
            )
        samples = self.agenda_samples
        mean = sum(samples) / len(samples) if samples else 0.0
        lines.append("-" * len(header))
        lines.append(
            f"{len(rows)} rules, {self.total_firings} firings across "
            f"{self.sessions} sessions; agenda size mean {mean:.1f}, "
            f"max {max(samples) if samples else 0} "
            f"({len(samples)} samples)"
        )
        return "\n".join(lines)
