"""Simulated distributed data-transfer substrate.

The paper's testbed (GridFTP over a ~28 Mbit/s WAN from a FutureGrid VM to
the ISI Obelix cluster) is replaced by a fluid-flow network simulation:

* :mod:`repro.net.topology` — sites, hosts, links, routes;
* :mod:`repro.net.tcp` — the per-stream throughput model (window cap,
  congestion knee, setup/ramp costs);
* :mod:`repro.net.flows` — a max–min fair fluid-flow engine over the DES
  kernel: active transfers share link capacity in proportion to their
  parallel-stream counts;
* :mod:`repro.net.gridftp` — a GridFTP-like client/server pair with
  session/stream setup costs and failure injection.

The model is calibrated so the qualitative findings of the paper hold: more
parallel streams help until the pipe fills; allocating far beyond a
congestion knee degrades throughput; very large transfers are dominated by
the bandwidth floor regardless of allocation (see DESIGN.md §5).
"""

from repro.net.flows import Flow, FlowNetwork
from repro.net.gridftp import GridFTPClient, GridFTPServer, TransferError, parse_url
from repro.net.tcp import StreamModel
from repro.net.topology import Host, Link, Network, Route, Site

__all__ = [
    "Flow",
    "FlowNetwork",
    "GridFTPClient",
    "GridFTPServer",
    "Host",
    "Link",
    "Network",
    "Route",
    "Site",
    "StreamModel",
    "TransferError",
    "parse_url",
]
