"""Per-stream throughput model (the "TCP physics" of the simulation).

Three effects, each with an explicit rationale and a calibration target in
the paper's results (see DESIGN.md §5):

1. **Window cap** — one stream reaches at most ``stream_rate_cap`` on a
   link (TCP window / RTT product).  Aggregate rate grows roughly linearly
   with total streams until the pipe fills.  Consequence: once ~a dozen
   streams are active on the paper's WAN, adding *default streams per
   transfer* changes little (the flat curves of Fig. 5).

2. **Congestion knee** — past ``knee`` total concurrent streams, loss,
   retransmission, and endpoint pressure (GridFTP server VM, NFS at the
   destination) reduce aggregate efficiency linearly down to a floor.
   Consequence: greedy thresholds of 100/200 (allocating 103–203 streams)
   underperform a threshold of 50 (57–65 streams) for mid-size files
   (Figs. 7–8).

3. **Setup & ramp** — each transfer pays a control-channel setup, a
   per-stream connection establishment, and a slow-start ramp whose
   length grows with the number of streams already active.  These
   per-transfer costs dominate for small files and vanish relative to the
   ``bytes/capacity`` floor for 1 GB files (Fig. 9's "no clear advantage").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.topology import Link

__all__ = ["StreamModel"]


@dataclass
class StreamModel:
    """Tunable constants for transfer setup/ramp behaviour.

    Parameters
    ----------
    session_setup:
        Seconds to establish a transfer session (control channel, auth).
    stream_setup:
        Additional seconds per parallel stream opened.
    ramp_time:
        Base slow-start ramp duration for an uncontended route.  The
        effective ramp grows with contention:
        ``ramp_time * (1 + total_streams / ramp_ref)``; during the ramp
        the transfer moves no data (a pure latency approximation that
        keeps the fluid model piecewise linear).
    ramp_ref:
        Stream count at which contention doubles the ramp.
    """

    session_setup: float = 1.0
    stream_setup: float = 0.15
    ramp_time: float = 1.0
    ramp_ref: float = 50.0

    def __post_init__(self) -> None:
        if min(self.session_setup, self.stream_setup, self.ramp_time) < 0:
            raise ValueError("setup/ramp times must be non-negative")
        if self.ramp_ref <= 0:
            raise ValueError("ramp_ref must be positive")

    def setup_delay(
        self,
        streams: int,
        total_streams_on_route: int,
        session_established: bool = False,
    ) -> float:
        """Latency before a transfer's data starts to move.

        ``total_streams_on_route`` counts streams already active on the
        route (excluding this transfer's own).  ``session_established``
        skips the control-channel setup — the efficiency the paper gains
        by grouping transfers with the same source and destination into a
        single transfer-client session.
        """
        if streams < 1:
            raise ValueError("a transfer uses at least one stream")
        ramp = self.ramp_time * (1.0 + total_streams_on_route / self.ramp_ref)
        session = 0.0 if session_established else self.session_setup
        return session + self.stream_setup * streams + ramp


def congestion_factor(link: Link, total_streams: int) -> float:
    """Efficiency multiplier on ``link`` when ``total_streams`` are active.

    1.0 up to the knee; a rational decline past it, clamped at the floor:

    ``f = max(floor, 1 / (1 + slope * (S - knee) / knee))``  for S > knee.

    The rational form is concave: the first streams past the knee hurt
    most (loss synchronization sets in), while far past the knee each
    additional stream adds little — matching the paper's observation that
    a threshold of 200 is markedly worse than 50 yet not catastrophic.
    """
    if total_streams < 0:
        raise ValueError("total_streams must be >= 0")
    if link.knee is None or total_streams <= link.knee:
        return 1.0
    excess = (total_streams - link.knee) / link.knee
    return max(link.congestion_floor, 1.0 / (1.0 + link.congestion_slope * excess))


def effective_capacity(link: Link, total_streams: int) -> float:
    """Aggregate bytes/second the link delivers at this contention level."""
    return link.capacity * congestion_factor(link, total_streams)
