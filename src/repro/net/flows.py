"""Fluid-flow transfer engine over the DES kernel.

Active transfers are *flows*; each flow holds ``streams`` parallel streams
across every link of its route.  Whenever the flow set changes, the engine
re-solves a weighted max–min fair allocation (progressive filling):

* a flow's weight is its stream count — transfers with more streams get a
  proportionally larger share of a contended link (the reason stream
  allocation policy matters at all);
* a flow's rate is additionally capped at
  ``streams x min(stream_rate_cap)`` over its route (TCP window cap);
* each link's aggregate capacity is scaled by the congestion factor for
  the total streams *announced* on it (including flows still in their
  setup/ramp phase, which have opened connections but move no data yet).

Between events rates are constant, so completions are scheduled exactly
(no polling).  The engine is deterministic.
"""

from __future__ import annotations

import itertools
import math
from typing import Optional

from repro.des.core import Environment, Event
from repro.net.tcp import StreamModel, effective_capacity
from repro.net.topology import Host, Link, Network, Route

__all__ = ["Flow", "FlowNetwork"]

_EPS = 1e-7
#: Minimum scheduling quantum (seconds).  Flows whose residual bytes would
#: drain in less than this are completed immediately; completion timers are
#: never scheduled closer than this.  Guards against float-precision
#: livelock: at large simulation times a sub-ULP delay would not advance
#: the clock at all.
_QUANTUM = 1e-6


class Flow:
    """One transfer in flight.

    Attributes
    ----------
    done:
        Event fired with the flow when the last byte arrives (or failed
        via :meth:`FlowNetwork.abort`).
    state:
        ``"setup"`` -> ``"active"`` -> ``"done"`` (or ``"aborted"``).
    """

    __slots__ = (
        "fid",
        "src",
        "dst",
        "route",
        "streams",
        "nbytes",
        "remaining",
        "rate",
        "state",
        "done",
        "t_submit",
        "t_data_start",
        "t_done",
    )

    def __init__(self, fid: int, route: Route, nbytes: float, streams: int, env: Environment):
        self.fid = fid
        self.src = route.src
        self.dst = route.dst
        self.route = route
        self.streams = streams
        self.nbytes = float(nbytes)
        self.remaining = float(nbytes)
        self.rate = 0.0
        self.state = "setup"
        self.done: Event = env.event()
        self.t_submit = env.now
        self.t_data_start: Optional[float] = None
        self.t_done: Optional[float] = None

    @property
    def duration(self) -> Optional[float]:
        """Wall time from submit to completion (None while in flight)."""
        if self.t_done is None:
            return None
        return self.t_done - self.t_submit

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<Flow {self.fid} {self.src.name}->{self.dst.name} "
            f"{self.streams}s {self.state} {self.remaining:.0f}/{self.nbytes:.0f}B>"
        )


class FlowNetwork:
    """The shared transfer fabric for a simulation run.

    Parameters
    ----------
    env, network:
        DES environment and the static topology.
    model:
        Setup/ramp constants (:class:`~repro.net.tcp.StreamModel`).
    """

    def __init__(self, env: Environment, network: Network, model: Optional[StreamModel] = None):
        self.env = env
        self.network = network
        self.model = model or StreamModel()
        self._flows: dict[int, Flow] = {}          # all non-finished flows
        self._active: dict[int, Flow] = {}         # flows moving data
        self._fid = itertools.count(1)
        self._gen = 0                              # reschedule generation
        self._last_update = env.now
        # metrics
        self.completed: list[Flow] = []
        self.peak_streams: dict[str, int] = {}     # link name -> max observed
        self.bytes_moved = 0.0
        # last traced per-link stream counts / flow census (emit on change
        # only, so trace volume is bounded by actual allocation dynamics)
        self._last_traced: dict[str, int] = {}
        self._last_flow_census: Optional[tuple[int, int]] = None

    # ------------------------------------------------------------- public
    def start_transfer(
        self,
        src: Host | str,
        dst: Host | str,
        nbytes: float,
        streams: int,
        session_established: bool = False,
    ) -> Flow:
        """Begin a transfer; returns its :class:`Flow` (wait on ``flow.done``).

        ``session_established`` skips the control-channel setup cost
        (grouped transfers reusing one client session).
        """
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        if streams < 1:
            raise ValueError("streams must be >= 1")
        route = self.network.route(src, dst)
        flow = Flow(next(self._fid), route, nbytes, int(streams), self.env)
        contention = self._streams_on_route(route)
        self._flows[flow.fid] = flow
        self._note_peaks()
        delay = self.model.setup_delay(flow.streams, contention, session_established)
        self.env.process(self._enter_after_setup(flow, delay), name=f"flow-{flow.fid}-setup")
        return flow

    def abort(self, flow: Flow, reason: Exception) -> None:
        """Fail a flow in flight (failure injection / cancels)."""
        if flow.state in ("done", "aborted"):
            raise ValueError(f"flow {flow.fid} already finished")
        flow.state = "aborted"
        flow.t_done = self.env.now
        self._flows.pop(flow.fid, None)
        self._active.pop(flow.fid, None)
        flow.done.fail(reason)
        self._reschedule()

    def streams_between(self, src: Host | str, dst: Host | str) -> int:
        """Streams currently announced on the (src, dst) route's first link
        shared path — i.e. total concurrent streams for this host pair."""
        route = self.network.route(src, dst)
        return self._streams_on_route(route)

    @property
    def active_flow_count(self) -> int:
        return len(self._active)

    @property
    def announced_flow_count(self) -> int:
        return len(self._flows)

    # ------------------------------------------------------------ internals
    def _streams_on_link(self, link: Link) -> int:
        return sum(f.streams for f in self._flows.values() if link in f.route.links)

    def _streams_on_route(self, route: Route) -> int:
        return max((self._streams_on_link(l) for l in route.links), default=0)

    def _note_peaks(self) -> None:
        tracer = self.env.tracer
        trace = tracer is not None and tracer.enabled
        for link in self.network.links.values():
            s = self._streams_on_link(link)
            if s > self.peak_streams.get(link.name, 0):
                self.peak_streams[link.name] = s
            if trace and s != self._last_traced.get(link.name):
                self._last_traced[link.name] = s
                tracer.counter(
                    "net", f"streams:{link.name}", track="net", streams=s
                )
        if trace:
            census = (len(self._active), len(self._flows))
            if census != self._last_flow_census:
                self._last_flow_census = census
                tracer.counter(
                    "net", "flows", track="net",
                    active=census[0], announced=census[1],
                )

    def _enter_after_setup(self, flow: Flow, delay: float):
        yield self.env.timeout(delay)
        if flow.state != "setup":  # aborted during setup
            return
        flow.state = "active"
        flow.t_data_start = self.env.now
        self._active[flow.fid] = flow
        if flow.remaining <= _EPS:
            self._complete(flow)
        self._reschedule()

    def _settle(self) -> None:
        """Credit progress since the last rate computation."""
        elapsed = self.env.now - self._last_update
        if elapsed > 0:
            for flow in self._active.values():
                moved = flow.rate * elapsed
                flow.remaining = max(0.0, flow.remaining - moved)
                self.bytes_moved += moved
        self._last_update = self.env.now

    def _solve_rates(self) -> None:
        """Weighted max–min fair progressive filling with per-flow caps."""
        flows = list(self._active.values())
        for flow in flows:
            flow.rate = 0.0
        if not flows:
            return

        # Effective capacities use announced streams (setup flows included).
        cap_left: dict[str, float] = {}
        link_by_name: dict[str, Link] = {}
        for link in self.network.links.values():
            total = self._streams_on_link(link)
            if total > 0:
                cap_left[link.name] = effective_capacity(link, total)
                link_by_name[link.name] = link

        unfixed = set(f.fid for f in flows)
        flow_by_id = {f.fid: f for f in flows}

        def flow_cap(flow: Flow) -> float:
            caps = [
                l.stream_rate_cap
                for l in flow.route.links
                if l.stream_rate_cap is not None
            ]
            return flow.streams * min(caps) if caps else math.inf

        guard = 0
        while unfixed:
            guard += 1
            if guard > len(flows) + 2:  # pragma: no cover - defensive
                raise RuntimeError("water-filling failed to converge")

            # Weight of unfixed flows per link.
            weight: dict[str, int] = {}
            for fid in unfixed:
                for link in flow_by_id[fid].route.links:
                    weight[link.name] = weight.get(link.name, 0) + flow_by_id[fid].streams

            # Tentative fair share for each unfixed flow.
            share: dict[int, float] = {}
            for fid in unfixed:
                flow = flow_by_id[fid]
                share[fid] = min(
                    cap_left[l.name] * flow.streams / weight[l.name]
                    for l in flow.route.links
                )

            # 1) Fix all cap-limited flows first (they free capacity).
            capped = [fid for fid in unfixed if flow_cap(flow_by_id[fid]) <= share[fid] + _EPS]
            if capped:
                for fid in capped:
                    flow = flow_by_id[fid]
                    flow.rate = flow_cap(flow)
                    for link in flow.route.links:
                        cap_left[link.name] = max(0.0, cap_left[link.name] - flow.rate)
                    unfixed.discard(fid)
                continue

            # 2) Otherwise saturate the tightest link and fix its flows.
            tight = min(
                (name for name in weight),
                key=lambda name: cap_left[name] / weight[name],
            )
            for fid in list(unfixed):
                flow = flow_by_id[fid]
                if any(l.name == tight for l in flow.route.links):
                    flow.rate = cap_left[tight] * flow.streams / weight[tight]
                    for link in flow.route.links:
                        if link.name != tight:
                            cap_left[link.name] = max(0.0, cap_left[link.name] - flow.rate)
                    unfixed.discard(fid)
            cap_left[tight] = 0.0

    def _complete(self, flow: Flow) -> None:
        flow.state = "done"
        flow.t_done = self.env.now
        flow.remaining = 0.0
        self._flows.pop(flow.fid, None)
        self._active.pop(flow.fid, None)
        self.completed.append(flow)
        flow.done.succeed(flow)

    def _finish_due(self) -> None:
        """Complete flows that are done or within one quantum of done."""
        for flow in list(self._active.values()):
            if flow.remaining <= _EPS or flow.remaining <= flow.rate * _QUANTUM:
                self._complete(flow)

    def _reschedule(self) -> None:
        self._settle()
        self._finish_due()
        while True:
            self._solve_rates()
            before = len(self._active)
            # Newly raised rates may put residuals within a quantum; keep
            # resolving until the active set is stable so no flow runs on
            # a stale (lower) rate.
            self._finish_due()
            if len(self._active) == before:
                break
        self._note_peaks()
        self._gen += 1
        gen = self._gen
        horizon = math.inf
        for flow in self._active.values():
            if flow.rate > 0:
                horizon = min(horizon, flow.remaining / flow.rate)
        if math.isfinite(horizon):
            self.env.process(
                self._timer(gen, max(horizon, _QUANTUM)), name=f"net-timer-{gen}"
            )

    def _timer(self, gen: int, delay: float):
        yield self.env.timeout(delay)
        if gen != self._gen:
            return  # superseded by a newer schedule
        self._reschedule()
