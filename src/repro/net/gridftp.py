"""GridFTP-like transfer client/server over the fluid-flow fabric.

The paper stages data with GridFTP 6.5 (parallel TCP streams per transfer).
Here a :class:`GridFTPServer` registers a host as a data source and a
:class:`GridFTPClient` executes transfers as DES processes with:

* per-transfer protocol overhead jitter (lognormal-ish, a few percent),
* optional failure injection (the workflow engine retries, as Pegasus does
  with its five-retries-per-job configuration),
* the setup/ramp/sharing physics of :class:`~repro.net.flows.FlowNetwork`.

URLs follow the ``gsiftp://host/path`` convention.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.net.flows import FlowNetwork
from repro.net.topology import Host

__all__ = ["GridFTPServer", "GridFTPClient", "TransferError", "TransferRecord", "parse_url"]


class TransferError(RuntimeError):
    """A transfer failed in flight (connection loss, server error...)."""

    def __init__(self, message: str, src_url: str = "", dst_url: str = ""):
        super().__init__(message)
        self.src_url = src_url
        self.dst_url = dst_url


def parse_url(url: str) -> tuple[str, str]:
    """Split ``scheme://host/path`` into (host, path).

    Accepts ``gsiftp``, ``http``, ``https``, and ``file`` schemes (the
    Pegasus Transfer Tool is protocol-agnostic; so are we).
    """
    scheme, sep, rest = url.partition("://")
    if not sep or not scheme:
        raise ValueError(f"malformed url: {url!r}")
    if scheme not in ("gsiftp", "http", "https", "file", "ftp"):
        raise ValueError(f"unsupported scheme {scheme!r} in {url!r}")
    host, slash, path = rest.partition("/")
    if not host:
        raise ValueError(f"missing host in url: {url!r}")
    return host, "/" + path


@dataclass
class TransferRecord:
    """Outcome of one completed transfer (for metrics)."""

    src_url: str
    dst_url: str
    nbytes: float
    streams: int
    t_submit: float
    t_done: float
    attempts: int = 1

    @property
    def duration(self) -> float:
        return self.t_done - self.t_submit

    @property
    def throughput(self) -> float:
        """Bytes/second over the whole transfer (0 for zero-duration)."""
        return self.nbytes / self.duration if self.duration > 0 else 0.0


class GridFTPServer:
    """Registers a host as a transfer endpoint on the fabric."""

    def __init__(self, fabric: FlowNetwork, host: Host, version: str = "6.5"):
        self.fabric = fabric
        self.host = host
        self.version = version
        registry = getattr(fabric, "_gridftp_servers", None)
        if registry is None:
            registry = {}
            fabric._gridftp_servers = registry  # type: ignore[attr-defined]
        if host.name in registry:
            raise ValueError(f"GridFTP server already running on {host.name!r}")
        registry[host.name] = self


class GridFTPClient:
    """Executes transfers on the fabric as DES processes.

    Parameters
    ----------
    fabric:
        The shared :class:`FlowNetwork`.
    rng:
        numpy Generator for jitter/failures (deterministic per run).
    overhead_jitter:
        Std-dev of the multiplicative protocol-overhead factor applied to
        the byte count (0 disables).
    failure_rate:
        Probability that a transfer fails partway (the caller retries).
    require_server:
        When True, transfers from hosts with no registered
        :class:`GridFTPServer` raise immediately.
    """

    def __init__(
        self,
        fabric: FlowNetwork,
        rng: Optional[np.random.Generator] = None,
        overhead_jitter: float = 0.0,
        failure_rate: float = 0.0,
        require_server: bool = False,
    ):
        if overhead_jitter < 0:
            raise ValueError("overhead_jitter must be >= 0")
        if not 0 <= failure_rate < 1:
            raise ValueError("failure_rate must be in [0, 1)")
        self.fabric = fabric
        self.env = fabric.env
        self.rng = rng or np.random.default_rng(0)
        self.overhead_jitter = overhead_jitter
        self.failure_rate = failure_rate
        self.require_server = require_server
        self.records: list[TransferRecord] = []

    def transfer(
        self,
        src_url: str,
        dst_url: str,
        nbytes: float,
        streams: int,
        session_established: bool = False,
    ):
        """Process generator: move ``nbytes`` from src to dst.

        Yields inside the DES; returns a :class:`TransferRecord`; raises
        :class:`TransferError` on injected failure.  Pass
        ``session_established=True`` for follow-on transfers in a grouped
        session (skips control-channel setup).
        """
        src_host, _ = parse_url(src_url)
        dst_host, _ = parse_url(dst_url)
        if self.require_server:
            servers = getattr(self.fabric, "_gridftp_servers", {})
            if src_host not in servers:
                raise TransferError(
                    f"no GridFTP server on source host {src_host!r}", src_url, dst_url
                )
        t_submit = self.env.now

        effective = float(nbytes)
        if self.overhead_jitter > 0 and nbytes > 0:
            factor = 1.0 + abs(self.rng.normal(0.0, self.overhead_jitter))
            effective *= factor

        fails = self.failure_rate > 0 and self.rng.random() < self.failure_rate
        if fails:
            frac = self.rng.uniform(0.05, 0.95)
            flow = self.fabric.start_transfer(
                src_host, dst_host, effective * frac, streams, session_established
            )
            yield flow.done
            raise TransferError(
                f"transfer interrupted after {frac:.0%} of {src_url}", src_url, dst_url
            )

        flow = self.fabric.start_transfer(
            src_host, dst_host, effective, streams, session_established
        )
        yield flow.done
        record = TransferRecord(
            src_url=src_url,
            dst_url=dst_url,
            nbytes=float(nbytes),
            streams=streams,
            t_submit=t_submit,
            t_done=self.env.now,
        )
        self.records.append(record)
        return record
