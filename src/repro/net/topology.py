"""Network topology: sites, hosts, links, and routes.

A :class:`Network` is a registry of hosts and links plus a route table
mapping (source host, destination host) pairs to ordered link lists.  The
fluid-flow engine (:mod:`repro.net.flows`) charges each active transfer
against every link on its route.

Convention: capacities are **bytes per second**, sizes bytes, times seconds.
``MB`` / ``GB`` / ``mbit`` helpers are provided for readability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["Site", "Host", "Link", "Route", "Network", "MB", "GB", "mbit"]

#: One megabyte (decimal, matching the paper's "MBytes").
MB = 1_000_000
#: One gigabyte.
GB = 1_000_000_000


def mbit(n: float) -> float:
    """n megabits/second expressed in bytes/second."""
    return n * 1_000_000 / 8


@dataclass(frozen=True)
class Site:
    """A computing or storage site (cluster, cloud, campus)."""

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("site name must be non-empty")


@dataclass(frozen=True)
class Host:
    """A named endpoint (storage server, head node, VM)."""

    name: str
    site: Site

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("host name must be non-empty")

    @property
    def url_prefix(self) -> str:
        return f"gsiftp://{self.name}"


@dataclass(eq=False)
class Link:
    """A shared capacity segment (identity semantics: registry object).

    Parameters
    ----------
    name:
        Identifier used in traces.
    capacity:
        Aggregate bytes/second the link can carry.
    stream_rate_cap:
        Maximum bytes/second a *single* stream can achieve on this link
        (the TCP window / RTT limit).  ``None`` means uncapped.
    knee:
        Total concurrent streams beyond which efficiency degrades
        (endpoint/NFS/loss pressure).  ``None`` disables congestion.
    congestion_slope:
        Fractional efficiency lost per ``knee``-worth of excess streams
        (see :meth:`repro.net.tcp.StreamModel.congestion_factor`).
    congestion_floor:
        Lower bound on the efficiency factor.
    """

    name: str
    capacity: float
    stream_rate_cap: Optional[float] = None
    knee: Optional[int] = None
    congestion_slope: float = 0.5
    congestion_floor: float = 0.35

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError(f"link {self.name!r}: capacity must be positive")
        if self.stream_rate_cap is not None and self.stream_rate_cap <= 0:
            raise ValueError(f"link {self.name!r}: stream_rate_cap must be positive")
        if self.knee is not None and self.knee < 1:
            raise ValueError(f"link {self.name!r}: knee must be >= 1")
        if not 0 < self.congestion_floor <= 1:
            raise ValueError(f"link {self.name!r}: congestion_floor in (0, 1]")
        if self.congestion_slope < 0:
            raise ValueError(f"link {self.name!r}: congestion_slope must be >= 0")


@dataclass(frozen=True)
class Route:
    """An ordered path of links between a host pair."""

    src: Host
    dst: Host
    links: tuple[Link, ...]

    def __post_init__(self) -> None:
        if not self.links:
            raise ValueError(f"route {self.src.name}->{self.dst.name}: needs >= 1 link")


class Network:
    """Host/link registry with a (src, dst) route table."""

    def __init__(self) -> None:
        self.sites: dict[str, Site] = {}
        self.hosts: dict[str, Host] = {}
        self.links: dict[str, Link] = {}
        self._routes: dict[tuple[str, str], Route] = {}

    # -- construction -------------------------------------------------------
    def add_site(self, name: str) -> Site:
        if name in self.sites:
            raise ValueError(f"duplicate site {name!r}")
        site = Site(name)
        self.sites[name] = site
        return site

    def add_host(self, name: str, site: Site) -> Host:
        if name in self.hosts:
            raise ValueError(f"duplicate host {name!r}")
        if site.name not in self.sites:
            raise ValueError(f"unknown site {site.name!r}")
        host = Host(name, site)
        self.hosts[name] = host
        return host

    def add_link(self, link: Link) -> Link:
        if link.name in self.links:
            raise ValueError(f"duplicate link {link.name!r}")
        self.links[link.name] = link
        return link

    def add_route(self, src: Host, dst: Host, links: list[Link]) -> Route:
        for link in links:
            if link.name not in self.links:
                raise ValueError(f"route uses unregistered link {link.name!r}")
        key = (src.name, dst.name)
        if key in self._routes:
            raise ValueError(f"duplicate route {src.name}->{dst.name}")
        route = Route(src, dst, tuple(links))
        self._routes[key] = route
        return route

    # -- lookup ------------------------------------------------------------
    def route(self, src: Host | str, dst: Host | str) -> Route:
        src_name = src if isinstance(src, str) else src.name
        dst_name = dst if isinstance(dst, str) else dst.name
        try:
            return self._routes[(src_name, dst_name)]
        except KeyError:
            raise KeyError(f"no route {src_name} -> {dst_name}") from None

    def has_route(self, src: Host | str, dst: Host | str) -> bool:
        src_name = src if isinstance(src, str) else src.name
        dst_name = dst if isinstance(dst, str) else dst.name
        return (src_name, dst_name) in self._routes

    def host(self, name: str) -> Host:
        try:
            return self.hosts[name]
        except KeyError:
            raise KeyError(f"unknown host {name!r}") from None
