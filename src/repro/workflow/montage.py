"""The Montage astronomy workflow (the paper's evaluation workload).

Montage builds sky mosaics: input images are re-projected (``mProjectPP``),
overlapping pairs are difference-fitted (``mDiffFit``), the fits are
concatenated (``mConcatFit``) and a background model solved (``mBgModel``),
backgrounds are rectified per image (``mBackground``), and the corrected
images are tabulated (``mImgtbl``), co-added into the mosaic (``mAdd``),
shrunk (``mShrink``) and rendered (``mJPEG``).

Sizing: the paper's one-degree-square run has **89 data staging jobs** with
Pegasus configured for one stage-in job per compute job, and ~2 MB mean
stage-in size for mProjectPP.  We therefore size the default configuration
at 89 input images (our planner emits one stage-in job per compute job with
remote inputs, i.e. one per ``mProjectPP``).  The big-data augmentation of
Fig. 3 — one additional file per data staging job — is
:func:`augmented_montage`: each ``mProjectPP`` gains one extra input file
of the requested size, which the planner will fetch from wherever the
replica catalog locates it (the FutureGrid-like site in the experiments).

Runtime models follow published Montage task profiles, scaled so
``mProjectPP`` runs "several seconds" as the paper states.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.catalogs.transformation import TransformationCatalog
from repro.workflow.dag import File, Job, Workflow

__all__ = [
    "MontageConfig",
    "montage_workflow",
    "augmented_montage",
    "montage_transformations",
    "MONTAGE_RUNTIMES",
    "EXTRA_FILE_PREFIX",
]

KB = 1_000
MB = 1_000_000

#: Prefix of the augmentation files staged from the remote big-data source.
EXTRA_FILE_PREFIX = "montage_extra_"

#: (mean seconds, std-dev seconds) per transformation.
MONTAGE_RUNTIMES: dict[str, tuple[float, float]] = {
    "mProjectPP": (6.0, 1.0),
    "mDiffFit": (2.0, 0.4),
    "mConcatFit": (20.0, 3.0),
    "mBgModel": (40.0, 5.0),
    "mBackground": (2.0, 0.4),
    "mImgtbl": (8.0, 1.0),
    "mAdd": (50.0, 8.0),
    "mShrink": (12.0, 2.0),
    "mJPEG": (2.0, 0.3),
}


@dataclass(frozen=True)
class MontageConfig:
    """Shape and file-size parameters of a Montage run.

    ``n_images=89`` reproduces the paper's staging-job count.
    ``lfn_prefix`` namespaces every file name — give two concurrently
    running instances different prefixes when they should stage *disjoint*
    datasets (identical names mean shared datasets, the paper's
    cross-workflow sharing scenario).
    """

    n_images: int = 89
    image_size: float = 2 * MB
    projected_size: float = 4 * MB
    table_size: float = 1 * KB
    name: str = "montage-1deg"
    lfn_prefix: str = ""

    def __post_init__(self) -> None:
        if self.n_images < 1:
            raise ValueError("n_images must be >= 1")
        if min(self.image_size, self.projected_size, self.table_size) <= 0:
            raise ValueError("file sizes must be positive")

    @property
    def grid_cols(self) -> int:
        return max(1, math.ceil(math.sqrt(self.n_images)))


def _overlap_pairs(config: MontageConfig) -> list[tuple[int, int]]:
    """Adjacent image pairs on the mosaic grid (horizontal + vertical)."""
    cols = config.grid_cols
    pairs: list[tuple[int, int]] = []
    for i in range(config.n_images):
        right = i + 1
        if right % cols != 0 and right < config.n_images:
            pairs.append((i, right))
        below = i + cols
        if below < config.n_images:
            pairs.append((i, below))
    return pairs


def montage_workflow(config: MontageConfig | None = None) -> Workflow:
    """Build the abstract Montage workflow for ``config``."""
    cfg = config or MontageConfig()
    wf = Workflow(cfg.name)
    width = len(str(max(cfg.n_images - 1, 1)))
    px = cfg.lfn_prefix

    region = File(f"{px}region.hdr", 1 * KB)
    raw = [File(f"{px}raw_{i:0{width}d}.fits", cfg.image_size) for i in range(cfg.n_images)]
    proj = [File(f"{px}proj_{i:0{width}d}.fits", cfg.projected_size) for i in range(cfg.n_images)]
    corr = [File(f"{px}corr_{i:0{width}d}.fits", cfg.projected_size) for i in range(cfg.n_images)]

    for i in range(cfg.n_images):
        wf.add_job(
            Job(
                id=f"mProjectPP_{i:0{width}d}",
                transform="mProjectPP",
                inputs=(raw[i], region),
                outputs=(proj[i],),
            )
        )

    pairs = _overlap_pairs(cfg)
    diffs = []
    for k, (i, j) in enumerate(pairs):
        out = File(f"{px}diff_{k:04d}.tbl", cfg.table_size)
        diffs.append(out)
        wf.add_job(
            Job(
                id=f"mDiffFit_{k:04d}",
                transform="mDiffFit",
                inputs=(proj[i], proj[j]),
                outputs=(out,),
            )
        )

    fits_tbl = File(f"{px}fits.tbl", 10 * KB)
    wf.add_job(
        Job(id="mConcatFit", transform="mConcatFit", inputs=tuple(diffs), outputs=(fits_tbl,))
    )

    corrections = File(f"{px}corrections.tbl", 10 * KB)
    wf.add_job(
        Job(id="mBgModel", transform="mBgModel", inputs=(fits_tbl,), outputs=(corrections,))
    )

    for i in range(cfg.n_images):
        wf.add_job(
            Job(
                id=f"mBackground_{i:0{width}d}",
                transform="mBackground",
                inputs=(proj[i], corrections),
                outputs=(corr[i],),
            )
        )

    newimages = File(f"{px}newimages.tbl", 50 * KB)
    wf.add_job(
        Job(id="mImgtbl", transform="mImgtbl", inputs=tuple(corr), outputs=(newimages,))
    )

    mosaic = File(f"{px}mosaic.fits", cfg.projected_size * cfg.n_images * 0.75)
    wf.add_job(
        Job(
            id="mAdd",
            transform="mAdd",
            inputs=(*corr, newimages),
            outputs=(mosaic,),
        )
    )

    shrunk = File(f"{px}mosaic_small.fits", 5 * MB)
    wf.add_job(Job(id="mShrink", transform="mShrink", inputs=(mosaic,), outputs=(shrunk,)))
    jpeg = File(f"{px}mosaic.jpg", 1 * MB)
    wf.add_job(Job(id="mJPEG", transform="mJPEG", inputs=(shrunk,), outputs=(jpeg,)))

    wf.validate()
    return wf


def augmented_montage(
    extra_file_size: float, config: MontageConfig | None = None
) -> Workflow:
    """Montage augmented with one extra input file per data staging job.

    The paper (Fig. 3) attaches one additional large file (10 MB – 1 GB)
    to every data staging job.  Since the planner creates one stage-in job
    per compute job with remote inputs (= each ``mProjectPP``), adding one
    extra input per ``mProjectPP`` yields exactly one extra file per
    staging job.  ``extra_file_size == 0`` returns the plain workflow.
    """
    if extra_file_size < 0:
        raise ValueError("extra_file_size must be >= 0")
    cfg = config or MontageConfig()
    if extra_file_size == 0:
        return montage_workflow(cfg)

    wf = Workflow(f"{cfg.name}-extra{int(extra_file_size / MB)}MB")
    base = montage_workflow(cfg)
    width = len(str(max(cfg.n_images - 1, 1)))
    for job_id in sorted(base.jobs):
        job = base.jobs[job_id]
        if job.transform == "mProjectPP":
            idx = job_id.split("_")[-1]
            extra = File(
                f"{cfg.lfn_prefix}{EXTRA_FILE_PREFIX}{idx:>0{width}}.dat",
                extra_file_size,
            )
            job = Job(
                id=job.id,
                transform=job.transform,
                inputs=(*job.inputs, extra),
                outputs=job.outputs,
            )
        wf.add_job(job)
    wf.validate()
    return wf


def montage_transformations() -> TransformationCatalog:
    """Transformation catalog with the Montage runtime models."""
    catalog = TransformationCatalog()
    for name, (mean, std) in MONTAGE_RUNTIMES.items():
        catalog.add(name, mean, std)
    return catalog
