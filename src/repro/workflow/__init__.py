"""Abstract scientific workflows (DAGs of jobs and files).

* :mod:`repro.workflow.dag` — ``File``, ``Job``, ``Workflow`` with data-flow
  derived dependencies, validation and traversals;
* :mod:`repro.workflow.montage` — the Montage mosaicking workflow generator
  used in the paper's evaluation (plus the big-data staging augmentation);
* :mod:`repro.workflow.synthetic` — diamond / chain / fork-join / layered
  random generators for tests and ablations;
* :mod:`repro.workflow.priorities` — the paper's structure-based priority
  algorithms (BFS, DFS, direct-dependent-based, dependent-based);
* :mod:`repro.workflow.dax` — JSON (de)serialization of abstract workflows.
"""

from repro.workflow.dag import File, Job, Workflow, WorkflowError
from repro.workflow.dax import workflow_from_json, workflow_to_json
from repro.workflow.montage import MontageConfig, augmented_montage, montage_workflow
from repro.workflow.priorities import (
    bfs_priorities,
    dependent_priorities,
    dfs_priorities,
    direct_dependent_priorities,
)
from repro.workflow.synthetic import (
    chain_workflow,
    cybershake_workflow,
    diamond_workflow,
    epigenomics_workflow,
    fork_join_workflow,
    random_layered_workflow,
)

__all__ = [
    "File",
    "Job",
    "MontageConfig",
    "Workflow",
    "WorkflowError",
    "augmented_montage",
    "bfs_priorities",
    "chain_workflow",
    "cybershake_workflow",
    "dependent_priorities",
    "dfs_priorities",
    "diamond_workflow",
    "direct_dependent_priorities",
    "epigenomics_workflow",
    "fork_join_workflow",
    "montage_workflow",
    "random_layered_workflow",
    "workflow_from_json",
    "workflow_to_json",
]
