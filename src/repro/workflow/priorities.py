"""Structure-based job priorities (paper §III.c).

The paper proposes prioritising data staging by workflow structure, naming
four algorithms; higher numbers mean *stage earlier*:

* **BFS** — breadth-first traversal from the roots; earlier-visited jobs
  get higher priorities.
* **DFS** — depth-first traversal; likewise.
* **direct-dependent-based** — a job's priority is its fan-out (number of
  direct children): feeding a wide job first unblocks the most work.
* **dependent-based** — a job's priority is its total descendant count.

All functions return ``{job_id: priority}`` with non-negative integers.
Ties are broken deterministically (lexicographic job id) so planning is
reproducible.
"""

from __future__ import annotations

from repro.workflow.dag import Workflow

__all__ = [
    "bfs_priorities",
    "dfs_priorities",
    "direct_dependent_priorities",
    "dependent_priorities",
    "PRIORITY_ALGORITHMS",
]


def _order_to_priority(order: list[str], total: int) -> dict[str, int]:
    return {job_id: total - idx for idx, job_id in enumerate(order)}


def bfs_priorities(workflow: Workflow) -> dict[str, int]:
    """Priorities by breadth-first traversal order from the roots."""
    workflow.validate()
    g = workflow.graph()
    visited: list[str] = []
    seen: set[str] = set()
    frontier = workflow.roots()
    while frontier:
        next_frontier: list[str] = []
        for node in frontier:
            if node in seen:
                continue
            seen.add(node)
            visited.append(node)
            next_frontier.extend(sorted(g.successors(node)))
        frontier = next_frontier
    return _order_to_priority(visited, len(workflow))


def dfs_priorities(workflow: Workflow) -> dict[str, int]:
    """Priorities by depth-first traversal order from the roots."""
    workflow.validate()
    g = workflow.graph()
    visited: list[str] = []
    seen: set[str] = set()

    def visit(node: str) -> None:
        if node in seen:
            return
        seen.add(node)
        visited.append(node)
        for child in sorted(g.successors(node)):
            visit(child)

    for root in workflow.roots():
        visit(root)
    return _order_to_priority(visited, len(workflow))


def direct_dependent_priorities(workflow: Workflow) -> dict[str, int]:
    """Priority = number of direct children (fan-out)."""
    workflow.validate()
    g = workflow.graph()
    return {node: g.out_degree(node) for node in g}


def dependent_priorities(workflow: Workflow) -> dict[str, int]:
    """Priority = number of total descendants (transitive fan-out)."""
    workflow.validate()
    return {job_id: len(workflow.descendants(job_id)) for job_id in workflow.jobs}


#: Registry used by the policy layer and CLI-ish helpers.
PRIORITY_ALGORITHMS = {
    "bfs": bfs_priorities,
    "dfs": dfs_priorities,
    "direct-dependent": direct_dependent_priorities,
    "dependent": dependent_priorities,
}
