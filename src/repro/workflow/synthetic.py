"""Synthetic workflow generators for tests and ablations."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.workflow.dag import File, Job, Workflow

__all__ = [
    "chain_workflow",
    "cybershake_workflow",
    "diamond_workflow",
    "epigenomics_workflow",
    "fork_join_workflow",
    "random_layered_workflow",
]

MB = 1_000_000


def chain_workflow(length: int = 4, file_size: float = 1 * MB, name: str = "chain") -> Workflow:
    """A linear pipeline: job_0 -> job_1 -> ... -> job_{n-1}."""
    if length < 1:
        raise ValueError("length must be >= 1")
    wf = Workflow(name)
    prev_out = File("chain_input.dat", file_size)
    for i in range(length):
        out = File(f"chain_stage_{i}.dat", file_size)
        wf.add_job(
            Job(id=f"stage_{i}", transform="process", inputs=(prev_out,), outputs=(out,))
        )
        prev_out = out
    wf.validate()
    return wf


def diamond_workflow(file_size: float = 1 * MB, name: str = "diamond") -> Workflow:
    """The classic 4-job diamond: split -> (left, right) -> join."""
    wf = Workflow(name)
    src = File("diamond_input.dat", file_size)
    left_in = File("left_in.dat", file_size)
    right_in = File("right_in.dat", file_size)
    left_out = File("left_out.dat", file_size)
    right_out = File("right_out.dat", file_size)
    final = File("diamond_output.dat", file_size)
    wf.add_job(Job("split", "split", inputs=(src,), outputs=(left_in, right_in)))
    wf.add_job(Job("left", "process", inputs=(left_in,), outputs=(left_out,)))
    wf.add_job(Job("right", "process", inputs=(right_in,), outputs=(right_out,)))
    wf.add_job(Job("join", "join", inputs=(left_out, right_out), outputs=(final,)))
    wf.validate()
    return wf


def fork_join_workflow(
    width: int = 8, file_size: float = 1 * MB, name: str = "fork-join"
) -> Workflow:
    """One fan-out job feeding ``width`` parallel workers and a join."""
    if width < 1:
        raise ValueError("width must be >= 1")
    wf = Workflow(name)
    src = File("fj_input.dat", file_size)
    branch_ins = [File(f"fj_branch_in_{i}.dat", file_size) for i in range(width)]
    branch_outs = [File(f"fj_branch_out_{i}.dat", file_size) for i in range(width)]
    final = File("fj_output.dat", file_size)
    wf.add_job(Job("fork", "split", inputs=(src,), outputs=tuple(branch_ins)))
    for i in range(width):
        wf.add_job(
            Job(f"work_{i}", "process", inputs=(branch_ins[i],), outputs=(branch_outs[i],))
        )
    wf.add_job(Job("join", "join", inputs=tuple(branch_outs), outputs=(final,)))
    wf.validate()
    return wf


def random_layered_workflow(
    layers: int = 4,
    width: int = 6,
    edge_prob: float = 0.4,
    file_size: float = 1 * MB,
    rng: Optional[np.random.Generator] = None,
    name: str = "layered",
) -> Workflow:
    """A random layered DAG: each job consumes a random subset of the
    previous layer's outputs (at least one, so layers stay connected).

    Every layer-0 job reads its own external input file, exercising the
    planner's stage-in path on arbitrary shapes.
    """
    if layers < 1 or width < 1:
        raise ValueError("layers and width must be >= 1")
    if not 0 <= edge_prob <= 1:
        raise ValueError("edge_prob must be in [0, 1]")
    rng = rng or np.random.default_rng(0)
    wf = Workflow(name)
    prev_outputs: list[File] = []
    for layer in range(layers):
        outputs_this_layer: list[File] = []
        for w in range(width):
            out = File(f"l{layer}_j{w}_out.dat", file_size)
            outputs_this_layer.append(out)
            if layer == 0:
                inputs: tuple[File, ...] = (File(f"l0_j{w}_in.dat", file_size),)
            else:
                mask = rng.random(len(prev_outputs)) < edge_prob
                chosen = [f for f, m in zip(prev_outputs, mask) if m]
                if not chosen:
                    chosen = [prev_outputs[int(rng.integers(len(prev_outputs)))]]
                inputs = tuple(chosen)
            wf.add_job(
                Job(f"l{layer}_j{w}", transform="process", inputs=inputs, outputs=(out,))
            )
        prev_outputs = outputs_this_layer
    wf.validate()
    return wf


def epigenomics_workflow(
    lanes: int = 4,
    chunks: int = 6,
    read_size: float = 20 * MB,
    name: str = "epigenomics",
) -> Workflow:
    """An Epigenomics-like pipeline-parallel workflow.

    Each sequencing *lane* splits its read file into ``chunks`` pieces that
    flow through a per-chunk pipeline (filter -> align -> dedup), are merged
    per lane, and finally combined into a genome-wide density map.  Heavy
    external inputs (the raw read files) make the staging phase matter, and
    the deep per-chunk pipelines give structure-based priorities something
    to order.
    """
    if lanes < 1 or chunks < 1:
        raise ValueError("lanes and chunks must be >= 1")
    wf = Workflow(name)
    lane_merges = []
    for lane in range(lanes):
        raw = File(f"epi_l{lane}_reads.fastq", read_size)
        pieces = [
            File(f"epi_l{lane}_c{c}_raw.fastq", read_size / chunks)
            for c in range(chunks)
        ]
        wf.add_job(
            Job(f"split_l{lane}", "fastqSplit", inputs=(raw,), outputs=tuple(pieces))
        )
        aligned = []
        for c, piece in enumerate(pieces):
            filtered = File(f"epi_l{lane}_c{c}_filtered.fastq", piece.size * 0.9)
            mapped = File(f"epi_l{lane}_c{c}_mapped.sam", piece.size * 1.2)
            deduped = File(f"epi_l{lane}_c{c}_dedup.sam", piece.size * 1.1)
            wf.add_job(Job(f"filter_l{lane}_c{c}", "filterContams",
                           inputs=(piece,), outputs=(filtered,)))
            wf.add_job(Job(f"map_l{lane}_c{c}", "mapReads",
                           inputs=(filtered,), outputs=(mapped,)))
            wf.add_job(Job(f"dedup_l{lane}_c{c}", "pileup",
                           inputs=(mapped,), outputs=(deduped,)))
            aligned.append(deduped)
        merged = File(f"epi_l{lane}_merged.bam", read_size)
        wf.add_job(Job(f"merge_l{lane}", "mergeBam",
                       inputs=tuple(aligned), outputs=(merged,)))
        lane_merges.append(merged)
    density = File("epi_density.wig", sum(f.size for f in lane_merges) * 0.1)
    wf.add_job(Job("density_map", "mapMerge", inputs=tuple(lane_merges),
                   outputs=(density,)))
    wf.validate()
    return wf


def cybershake_workflow(
    rupture_sites: int = 5,
    variations: int = 4,
    sgt_size: float = 50 * MB,
    name: str = "cybershake",
) -> Workflow:
    """A CyberShake-like seismic hazard workflow.

    Per rupture site, a large strain-green-tensor (SGT) pair is staged in
    and shared by ``variations`` seismogram syntheses, each followed by a
    peak-ground-acceleration extraction; a final curve generator combines
    everything.  The shared multi-consumer SGT inputs exercise the
    planner's staged-once bookkeeping and the policy service's
    resource-sharing rules on a non-Montage shape.
    """
    if rupture_sites < 1 or variations < 1:
        raise ValueError("rupture_sites and variations must be >= 1")
    wf = Workflow(name)
    peak_files = []
    for site in range(rupture_sites):
        sgt_x = File(f"cs_s{site}_sgt_x.bin", sgt_size)
        sgt_y = File(f"cs_s{site}_sgt_y.bin", sgt_size)
        for var in range(variations):
            seismogram = File(f"cs_s{site}_v{var}_seis.grm", sgt_size * 0.02)
            peak = File(f"cs_s{site}_v{var}_peak.bsa", 1_000.0)
            wf.add_job(
                Job(
                    f"seisgen_s{site}_v{var}",
                    "SeismogramSynthesis",
                    inputs=(sgt_x, sgt_y),
                    outputs=(seismogram,),
                )
            )
            wf.add_job(
                Job(
                    f"peakval_s{site}_v{var}",
                    "PeakValCalc",
                    inputs=(seismogram,),
                    outputs=(peak,),
                )
            )
            peak_files.append(peak)
    curves = File("cs_hazard_curves.dat", 10_000.0)
    wf.add_job(Job("hazard_curves", "HazardCurveCalc",
                   inputs=tuple(peak_files), outputs=(curves,)))
    wf.validate()
    return wf
