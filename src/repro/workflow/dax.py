"""(De)serialization of abstract workflows.

Pegasus exchanges abstract workflows as DAX XML documents.  We provide
both a compact JSON encoding and a DAX-flavoured XML encoding with the
same information content: jobs, their transforms, input/output files with
sizes (``link="input"``/``link="output"`` uses-elements, as in DAX), and
explicit control edges (``<child>``/``<parent>`` elements).
"""

from __future__ import annotations

import json
import xml.etree.ElementTree as ET
from typing import Any

from repro.workflow.dag import File, Job, Workflow, WorkflowError

__all__ = [
    "workflow_to_json",
    "workflow_from_json",
    "workflow_to_dax_xml",
    "workflow_from_dax_xml",
]

_FORMAT = "repro-dax-1"


def workflow_to_json(workflow: Workflow, indent: int | None = None) -> str:
    """Serialize a workflow (stable job order) to a JSON document."""
    doc: dict[str, Any] = {
        "format": _FORMAT,
        "name": workflow.name,
        "jobs": [
            {
                "id": job.id,
                "transform": job.transform,
                "inputs": [{"lfn": f.lfn, "size": f.size} for f in job.inputs],
                "outputs": [{"lfn": f.lfn, "size": f.size} for f in job.outputs],
            }
            for job in (workflow.jobs[jid] for jid in sorted(workflow.jobs))
        ],
        "control_edges": sorted(workflow._control_edges),
    }
    return json.dumps(doc, indent=indent)


def workflow_from_json(text: str) -> Workflow:
    """Parse a workflow serialized by :func:`workflow_to_json`."""
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise WorkflowError(f"invalid workflow JSON: {exc}") from exc
    if not isinstance(doc, dict) or doc.get("format") != _FORMAT:
        raise WorkflowError(f"unrecognized workflow document format: {doc.get('format')!r}")
    wf = Workflow(doc["name"])
    for job_doc in doc.get("jobs", []):
        wf.add_job(
            Job(
                id=job_doc["id"],
                transform=job_doc["transform"],
                inputs=tuple(File(f["lfn"], f["size"]) for f in job_doc.get("inputs", [])),
                outputs=tuple(File(f["lfn"], f["size"]) for f in job_doc.get("outputs", [])),
            )
        )
    for parent, child in doc.get("control_edges", []):
        wf.add_control_edge(parent, child)
    wf.validate()
    return wf


# ---------------------------------------------------------------------------
# DAX-flavoured XML
# ---------------------------------------------------------------------------
def workflow_to_dax_xml(workflow: Workflow) -> str:
    """Serialize a workflow as a DAX-flavoured XML document."""
    root = ET.Element("adag", {"name": workflow.name, "jobCount": str(len(workflow))})
    for job_id in sorted(workflow.jobs):
        job = workflow.jobs[job_id]
        job_el = ET.SubElement(root, "job", {"id": job.id, "name": job.transform})
        for f in job.inputs:
            ET.SubElement(
                job_el, "uses",
                {"file": f.lfn, "link": "input", "size": repr(f.size)},
            )
        for f in job.outputs:
            ET.SubElement(
                job_el, "uses",
                {"file": f.lfn, "link": "output", "size": repr(f.size)},
            )
    # Control edges: DAX expresses dependencies as <child><parent/></child>.
    by_child: dict[str, list[str]] = {}
    for parent, child in sorted(workflow._control_edges):
        by_child.setdefault(child, []).append(parent)
    for child, parents in sorted(by_child.items()):
        child_el = ET.SubElement(root, "child", {"ref": child})
        for parent in parents:
            ET.SubElement(child_el, "parent", {"ref": parent})
    ET.indent(root)
    return ET.tostring(root, encoding="unicode")


def workflow_from_dax_xml(text: str) -> Workflow:
    """Parse a workflow serialized by :func:`workflow_to_dax_xml`."""
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise WorkflowError(f"invalid DAX XML: {exc}") from exc
    if root.tag != "adag":
        raise WorkflowError(f"not a DAX document (root element {root.tag!r})")
    name = root.get("name")
    if not name:
        raise WorkflowError("DAX document is missing the workflow name")
    wf = Workflow(name)
    for job_el in root.findall("job"):
        job_id, transform = job_el.get("id"), job_el.get("name")
        if not job_id or not transform:
            raise WorkflowError("DAX job element requires id and name")
        inputs, outputs = [], []
        for uses in job_el.findall("uses"):
            f = File(uses.get("file", ""), float(uses.get("size", "0")))
            link = uses.get("link")
            if link == "input":
                inputs.append(f)
            elif link == "output":
                outputs.append(f)
            else:
                raise WorkflowError(f"uses element with bad link {link!r}")
        wf.add_job(Job(job_id, transform, inputs=tuple(inputs), outputs=tuple(outputs)))
    for child_el in root.findall("child"):
        child = child_el.get("ref", "")
        for parent_el in child_el.findall("parent"):
            wf.add_control_edge(parent_el.get("ref", ""), child)
    wf.validate()
    return wf
