"""Abstract workflow DAG: files, jobs, and data-flow dependencies.

A :class:`Workflow` is a DAG whose edges are *derived from data flow*: if
job A outputs a file that job B inputs, A precedes B.  Explicit control
edges can be added as well.  Validation enforces acyclicity, single
producers per file, and consistent file sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import networkx as nx

__all__ = ["File", "Job", "Workflow", "WorkflowError"]


class WorkflowError(ValueError):
    """Raised for malformed workflows (cycles, duplicate producers...)."""


@dataclass(frozen=True)
class File:
    """A logical file: name + size in bytes."""

    lfn: str
    size: float = 0.0

    def __post_init__(self) -> None:
        if not self.lfn:
            raise WorkflowError("file requires a logical file name")
        if self.size < 0:
            raise WorkflowError(f"file {self.lfn!r}: negative size")


@dataclass(frozen=True)
class Job:
    """An abstract compute job.

    ``transform`` names the executable (resolved through the transformation
    catalog); ``inputs``/``outputs`` are :class:`File` tuples.
    """

    id: str
    transform: str
    inputs: tuple[File, ...] = ()
    outputs: tuple[File, ...] = ()

    def __post_init__(self) -> None:
        if not self.id:
            raise WorkflowError("job requires an id")
        if not self.transform:
            raise WorkflowError(f"job {self.id!r}: requires a transform name")
        in_names = [f.lfn for f in self.inputs]
        if len(set(in_names)) != len(in_names):
            raise WorkflowError(f"job {self.id!r}: duplicate input files")
        out_names = [f.lfn for f in self.outputs]
        if len(set(out_names)) != len(out_names):
            raise WorkflowError(f"job {self.id!r}: duplicate output files")
        if set(in_names) & set(out_names):
            raise WorkflowError(f"job {self.id!r}: file both input and output")


class Workflow:
    """A named DAG of jobs with data-flow dependencies."""

    def __init__(self, name: str):
        if not name:
            raise WorkflowError("workflow requires a name")
        self.name = name
        self.jobs: dict[str, Job] = {}
        self._producer: dict[str, str] = {}      # lfn -> job id
        self._consumers: dict[str, list[str]] = {}  # lfn -> job ids
        self._files: dict[str, File] = {}
        self._control_edges: set[tuple[str, str]] = set()
        self._graph_cache: Optional[nx.DiGraph] = None

    # -- construction --------------------------------------------------------
    def add_job(self, job: Job) -> Job:
        if job.id in self.jobs:
            raise WorkflowError(f"duplicate job id {job.id!r}")
        for f in job.outputs:
            if f.lfn in self._producer:
                raise WorkflowError(
                    f"file {f.lfn!r} produced by both "
                    f"{self._producer[f.lfn]!r} and {job.id!r}"
                )
        for f in (*job.inputs, *job.outputs):
            known = self._files.get(f.lfn)
            if known is not None and known.size != f.size:
                raise WorkflowError(
                    f"file {f.lfn!r}: inconsistent sizes {known.size} vs {f.size}"
                )
            self._files[f.lfn] = f
        self.jobs[job.id] = job
        for f in job.outputs:
            self._producer[f.lfn] = job.id
        for f in job.inputs:
            self._consumers.setdefault(f.lfn, []).append(job.id)
        self._graph_cache = None
        return job

    def add_control_edge(self, parent_id: str, child_id: str) -> None:
        """Add an explicit (non-data) ordering constraint."""
        for jid in (parent_id, child_id):
            if jid not in self.jobs:
                raise WorkflowError(f"unknown job {jid!r}")
        if parent_id == child_id:
            raise WorkflowError("self edge")
        self._control_edges.add((parent_id, child_id))
        self._graph_cache = None

    # -- structure -------------------------------------------------------------
    def graph(self) -> nx.DiGraph:
        """The dependency DAG (cached until the workflow changes)."""
        if self._graph_cache is None:
            g = nx.DiGraph()
            g.add_nodes_from(self.jobs)
            for lfn, producer in self._producer.items():
                for consumer in self._consumers.get(lfn, ()):
                    g.add_edge(producer, consumer)
            # Sorted for hash-randomization-independent adjacency order.
            g.add_edges_from(sorted(self._control_edges))
            self._graph_cache = g
        return self._graph_cache

    def validate(self) -> None:
        """Raise :class:`WorkflowError` unless the workflow is a DAG."""
        g = self.graph()
        if not nx.is_directed_acyclic_graph(g):
            cycle = nx.find_cycle(g)
            raise WorkflowError(f"workflow has a cycle: {cycle}")

    def parents(self, job_id: str) -> list[str]:
        return sorted(self.graph().predecessors(self._check(job_id)))

    def children(self, job_id: str) -> list[str]:
        return sorted(self.graph().successors(self._check(job_id)))

    def descendants(self, job_id: str) -> set[str]:
        return nx.descendants(self.graph(), self._check(job_id))

    def roots(self) -> list[str]:
        g = self.graph()
        return sorted(n for n in g if g.in_degree(n) == 0)

    def leaves(self) -> list[str]:
        g = self.graph()
        return sorted(n for n in g if g.out_degree(n) == 0)

    def topological_order(self) -> list[str]:
        self.validate()
        return list(nx.lexicographical_topological_sort(self.graph()))

    def levels(self) -> dict[str, int]:
        """Longest-path depth of each job (roots are level 0).

        Pegasus' horizontal clustering groups jobs of the same level.
        """
        self.validate()
        g = self.graph()
        level: dict[str, int] = {}
        for node in nx.topological_sort(g):
            preds = list(g.predecessors(node))
            level[node] = 1 + max((level[p] for p in preds), default=-1)
        return level

    # -- files ----------------------------------------------------------------
    def file(self, lfn: str) -> File:
        try:
            return self._files[lfn]
        except KeyError:
            raise WorkflowError(f"unknown file {lfn!r}") from None

    def producer_of(self, lfn: str) -> Optional[str]:
        return self._producer.get(lfn)

    def consumers_of(self, lfn: str) -> list[str]:
        return list(self._consumers.get(lfn, ()))

    def input_files(self) -> list[File]:
        """Workflow-level inputs: files no job produces (must be staged in)."""
        return sorted(
            (f for lfn, f in self._files.items() if lfn not in self._producer),
            key=lambda f: f.lfn,
        )

    def output_files(self) -> list[File]:
        """Workflow-level outputs: produced files nobody consumes."""
        return sorted(
            (
                self._files[lfn]
                for lfn in self._producer
                if lfn not in self._consumers
            ),
            key=lambda f: f.lfn,
        )

    def transform_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for job in self.jobs.values():
            counts[job.transform] = counts.get(job.transform, 0) + 1
        return counts

    # -- misc --------------------------------------------------------------------
    def _check(self, job_id: str) -> str:
        if job_id not in self.jobs:
            raise WorkflowError(f"unknown job {job_id!r}")
        return job_id

    def __len__(self) -> int:
        return len(self.jobs)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Workflow({self.name!r}, jobs={len(self.jobs)})"
