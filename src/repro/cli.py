"""Command-line interface.

Subcommands::

    repro table4                      print Table IV (max simultaneous streams)
    repro run [...]                   run one experiment cell, print metrics
    repro figure {5,6,7,8,9} [...]    regenerate one of the paper's figures
    repro campaign [...]              run a steady staging campaign
    repro serve [...]                 start the RESTful Policy Service
    repro lint [...]                  statically verify rule sets and plans
    repro trace [scenario] [...]      run a traced cell, write trace artifacts
    repro explain <tid> [...]         replay a seeded cell, explain one advice
    repro ensemble [...]              run a multi-tenant workflow ensemble

(`python -m repro ...` works identically.)
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Policy-driven data staging for scientific workflows "
            "(SC 2012 reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table4", help="print Table IV (maximum simultaneous streams)")

    run = sub.add_parser("run", help="run one experiment cell")
    run.add_argument("--extra-mb", type=float, default=100.0,
                     help="extra staged file size per staging job (MB)")
    run.add_argument("--streams", type=int, default=4,
                     help="default parallel streams per transfer")
    run.add_argument("--policy", choices=["greedy", "balanced", "fifo", "none"],
                     default="greedy")
    run.add_argument("--threshold", type=int, default=50,
                     help="max streams between a host pair")
    run.add_argument("--adaptive", action="store_true",
                     help="adapt the threshold from observed throughput")
    run.add_argument("--images", type=int, default=89,
                     help="Montage input images (= staging jobs)")
    run.add_argument("--max-staging-gb", type=float, default=None,
                     help="storage-constrained staging budget (GB)")
    run.add_argument("--output-site", default=None,
                     help="stage final outputs to this site (e.g. archive)")
    run.add_argument("--seed", type=int, default=0)

    figure = sub.add_parser("figure", help="regenerate one of Figs. 5-9")
    figure.add_argument("number", type=int, choices=[5, 6, 7, 8, 9])
    figure.add_argument("--replicates", type=int, default=3)
    figure.add_argument("--quick", action="store_true",
                        help="reduced sweep (endpoints only)")

    campaign = sub.add_parser("campaign", help="run a steady staging campaign")
    campaign.add_argument("--transfers", type=int, default=200)
    campaign.add_argument("--mb", type=float, default=200.0)
    campaign.add_argument("--workers", type=int, default=20)
    campaign.add_argument("--streams", type=int, default=8)
    campaign.add_argument("--policy", choices=["greedy", "none"], default="greedy")
    campaign.add_argument("--threshold", type=int, default=50)
    campaign.add_argument("--adaptive", action="store_true")
    campaign.add_argument("--seed", type=int, default=0)

    serve = sub.add_parser("serve", help="start the RESTful Policy Service")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="0 picks a free port")
    serve.add_argument("--policy", choices=["greedy", "balanced", "fifo"],
                       default="greedy")
    serve.add_argument("--threshold", type=int, default=50)
    serve.add_argument("--default-streams", type=int, default=4)
    serve.add_argument("--cluster-count", type=int, default=None)
    serve.add_argument("--engine", choices=["indexed", "seed", "compiled"],
                       default="indexed",
                       help="rule engine variant (advice is identical; "
                            "compiled is the fastest on large batches)")
    serve.add_argument("--frontend", choices=["threaded", "async"],
                       default="threaded",
                       help="HTTP frontend: thread-per-connection or a "
                            "single asyncio loop with keep-alive pipelining")
    serve.add_argument("--access-control", action="store_true",
                       help="enable host denials and staging quotas")
    serve.add_argument("--shards", type=int, default=0,
                       help="partition policy memory across N shards behind "
                            "a consistent-hash router (0 = single service)")
    serve.add_argument("--journal-root", default=None,
                       help="per-shard journal directories under this path "
                            "(shards only; enables crash replay)")

    lint = sub.add_parser(
        "lint",
        help="statically verify policy rule sets and staged plans",
        description=(
            "Run the repro.analysis checkers: the rule-set linter over "
            "shipped (or all) rule sets, the plan validator over a "
            "planned Montage workflow, and (with --verify) the semantic "
            "verifier over every composed rule pack.  Exits 1 when any "
            "error-severity finding survives suppression; dead "
            "suppressions are surfaced as S001 warnings."
        ),
    )
    lint.add_argument("--all", action="store_true",
                      help="lint every shipped rule set and a Montage plan")
    lint.add_argument("--rules", default=None, metavar="SET[,SET...]",
                      help="comma-separated rule sets to lint "
                           "(fifo, greedy, balanced, access, priority, ...)")
    lint.add_argument("--plan", choices=["montage"], default=None,
                      help="also lint a freshly planned workflow")
    lint.add_argument("--images", type=int, default=20,
                      help="Montage input images for --plan (default 20)")
    lint.add_argument("--format", choices=["text", "json", "sarif"],
                      default="text")
    lint.add_argument("--seed", type=int, default=0,
                      help="probing RNG seed (results are deterministic)")
    lint.add_argument("--trials", type=int, default=25,
                      help="randomized probe memories per rule set")
    lint.add_argument("--suppress", action="append", default=[],
                      metavar="CHECK[:substring]",
                      help="suppress findings of a check id, optionally "
                           "only for subjects containing the substring "
                           "(repeatable)")
    lint.add_argument("--verify", action="store_true",
                      help="run the semantic verifier (V001-V005: "
                           "confluence, ledger balance, engine parity, "
                           "compiler agreement) over every composition "
                           "the Policy Service instantiates — or only "
                           "those named in --rules; every dynamic error "
                           "carries a machine-replayed counterexample")
    lint.add_argument("--engines", default=None, metavar="ENGINE[,ENGINE...]",
                      help="engines the verifier cross-checks for V004 "
                           "parity (default: seed,indexed,compiled)")

    trace = sub.add_parser(
        "trace",
        help="run one traced experiment cell and write trace artifacts",
        description=(
            "Run an experiment cell with the observability stack attached "
            "(tracer + metrics registry + rule profiler) and write "
            "trace.json (Chrome trace_event, opens in Perfetto), "
            "events.jsonl, metrics.prom, rule_profile.txt, and "
            "provenance.json into the output directory."
        ),
    )
    trace.add_argument("scenario", nargs="?", default="examples-montage",
                       choices=["examples-montage", "chaos-montage",
                                "tenant-ensemble"],
                       help="examples-montage: a small augmented-Montage cell; "
                            "chaos-montage: the same cell under a mid-run "
                            "service outage (fault events on the trace); "
                            "tenant-ensemble: a 3-tenant fair-share ensemble "
                            "(tenant.* events on the trace)")
    trace.add_argument("--out", default=None, metavar="DIR",
                       help="artifact directory (default traces/<scenario>)")
    trace.add_argument("--extra-mb", type=float, default=20.0,
                       help="extra staged file size per staging job (MB)")
    trace.add_argument("--streams", type=int, default=4,
                       help="default parallel streams per transfer")
    trace.add_argument("--policy", choices=["greedy", "balanced", "fifo", "none"],
                       default="greedy")
    trace.add_argument("--threshold", type=int, default=50,
                       help="max streams between a host pair")
    trace.add_argument("--images", type=int, default=12,
                       help="Montage input images (= staging jobs)")
    trace.add_argument("--engine", choices=["indexed", "seed", "compiled"], default="indexed",
                       help="rule engine variant (traces are identical)")
    trace.add_argument("--seed", type=int, default=0)

    explain = sub.add_parser(
        "explain",
        help="replay a seeded cell and print one transfer's decision record",
        description=(
            "Re-run a deterministic experiment cell and print the "
            "decision-provenance record for one transfer id: the rule "
            "firings (with salience tiers and working-memory operations), "
            "the ledger values that gated the advice, and the group/lease "
            "ids it minted.  The same seed yields the same record — same "
            "digest — whatever --engine or --shards is chosen."
        ),
    )
    explain.add_argument("tid", type=int, help="transfer id to explain")
    explain.add_argument("--extra-mb", type=float, default=20.0,
                         help="extra staged file size per staging job (MB)")
    explain.add_argument("--streams", type=int, default=4,
                         help="default parallel streams per transfer")
    explain.add_argument("--policy", choices=["greedy", "balanced", "fifo"],
                         default="greedy")
    explain.add_argument("--threshold", type=int, default=50,
                         help="max streams between a host pair")
    explain.add_argument("--images", type=int, default=12,
                         help="Montage input images (= staging jobs)")
    explain.add_argument("--engine", choices=["indexed", "seed", "compiled"],
                         default="indexed",
                         help="rule engine variant (records are identical)")
    explain.add_argument("--shards", type=int, default=0,
                         help="shard the policy service N ways "
                              "(0 = single service; records are identical)")
    explain.add_argument("--format", choices=["text", "json"], default="text")
    explain.add_argument("--seed", type=int, default=0)

    ensemble = sub.add_parser(
        "ensemble",
        help="run a multi-tenant workflow ensemble with fair-share admission",
        description=(
            "Run a queue of Montage workflows owned by several tenants "
            "against one testbed and one Policy Service.  The admission "
            "controller orders the queue by the chosen scheduler (weighted "
            "fair share over bytes staged, strict priority, or FIFO), "
            "enforces per-tenant concurrency caps and byte quotas, and the "
            "policy rules meter per-tenant aggregate stream budgets.  "
            "Without --config a built-in 3-tenant demo (weights 1/2/4, "
            "mixed priority) runs."
        ),
    )
    ensemble.add_argument("--config", default=None, metavar="FILE",
                          help="JSON ensemble description: {tenants: [...], "
                               "submissions: [...], scheduler, max_concurrent, "
                               "backpressure: [high, low]}")
    ensemble.add_argument("--scheduler", choices=["fair", "priority", "fifo"],
                          default=None, help="override the queue ordering")
    ensemble.add_argument("--max-concurrent", type=int, default=None,
                          help="override the global workflow slot count")
    ensemble.add_argument("--policy", choices=["greedy", "balanced", "fifo", "none"],
                          default="greedy")
    ensemble.add_argument("--streams", type=int, default=4,
                          help="default parallel streams per transfer")
    ensemble.add_argument("--threshold", type=int, default=50,
                          help="max streams between a host pair")
    ensemble.add_argument("--engine", choices=["indexed", "seed", "compiled"], default="indexed")
    ensemble.add_argument("--seed", type=int, default=0)

    return parser


# ------------------------------------------------------------------ commands
def _cmd_table4(out) -> int:
    from repro.policy.allocation import format_table4, max_streams_table

    print("Table IV — maximum streams for simultaneous transfers", file=out)
    print(format_table4(max_streams_table()), file=out)
    return 0


def _cmd_run(args, out) -> int:
    from repro.experiments import ExperimentConfig, run_cell

    policy = None if args.policy == "none" else args.policy
    cfg = ExperimentConfig(
        extra_file_mb=args.extra_mb,
        default_streams=args.streams,
        policy=policy,
        threshold=args.threshold,
        adaptive=args.adaptive,
        cluster_factor=2 if policy == "balanced" else None,
        n_images=args.images,
        max_staging_bytes=args.max_staging_gb * 1e9 if args.max_staging_gb else None,
        output_site=args.output_site,
        seed=args.seed,
    )
    metrics = run_cell(cfg)
    print(f"workflow      : {metrics.workflow_id}", file=out)
    print(f"success       : {metrics.success}", file=out)
    print(f"makespan      : {metrics.makespan:.1f} s", file=out)
    print(f"staging time  : {metrics.staging_time:.1f} s", file=out)
    print(f"bytes staged  : {metrics.bytes_staged / 1e9:.2f} GB", file=out)
    print(f"peak WAN load : {metrics.peak_streams.get('wan', 0)} streams", file=out)
    print(f"peak footprint: {metrics.peak_footprint / 1e9:.2f} GB", file=out)
    if policy:
        print(f"policy calls  : {metrics.policy_calls} "
              f"({metrics.policy_overhead:.1f} s total latency)", file=out)
    return 0 if metrics.success else 1


def _cmd_figure(args, out) -> int:
    from repro.experiments.figures import (
        DEFAULT_STREAM_SWEEP,
        FIG5_SIZES_MB,
        FIG_SIZE_MB,
        fig5_series,
        fig_threshold_series,
        no_policy_point,
    )
    from repro.metrics import format_series_table

    defaults = (4, 8, 12) if args.quick else DEFAULT_STREAM_SWEEP
    if args.number == 5:
        sizes = (0, 100, 1000) if args.quick else FIG5_SIZES_MB
        series = fig5_series(sizes_mb=sizes, defaults=defaults,
                             replicates=args.replicates)
        print(format_series_table(
            "Fig. 5 — execution time (s), greedy threshold 50",
            "streams", series), file=out)
        return 0
    size = FIG_SIZE_MB[args.number]
    series = fig_threshold_series(size, defaults=defaults,
                                  replicates=args.replicates)
    nop = no_policy_point(size, replicates=args.replicates)
    print(format_series_table(
        f"Fig. {args.number} — execution time (s), {size} MB extra files",
        "streams", series), file=out)
    mean, std = nop.at(4)
    print(f"\nno policy (default Pegasus, 4 streams): {mean:.1f} ± {std:.1f} s",
          file=out)
    return 0


def _cmd_campaign(args, out) -> int:
    from repro.experiments.campaign import CampaignConfig, run_staging_campaign

    cfg = CampaignConfig(
        n_transfers=args.transfers,
        transfer_mb=args.mb,
        workers=args.workers,
        default_streams=args.streams,
        policy=None if args.policy == "none" else args.policy,
        threshold=args.threshold,
        adaptive=args.adaptive,
        seed=args.seed,
    )
    result = run_staging_campaign(cfg)
    print(f"transfers    : {result.transfers_done}", file=out)
    print(f"duration     : {result.duration:.1f} s", file=out)
    print(f"throughput   : {result.aggregate_throughput / 1e6:.1f} MB/s", file=out)
    print(f"peak streams : {result.peak_streams}", file=out)
    if result.final_threshold is not None:
        trajectory = [h[1] for h in result.threshold_history]
        print(f"adaptive     : final threshold {result.final_threshold}, "
              f"trajectory {trajectory}", file=out)
    return 0


def _cmd_serve(args, out) -> int:
    from repro.policy import PolicyConfig, PolicyService
    from repro.policy.rest import PolicyRestServer

    config = PolicyConfig(
        policy=args.policy,
        default_streams=args.default_streams,
        max_streams=args.threshold,
        cluster_count=args.cluster_count,
        access_control=args.access_control,
    )
    if args.shards >= 1:
        from repro.policy.sharding import ShardedPolicyService

        service = ShardedPolicyService(
            config,
            num_shards=args.shards,
            engine=args.engine,
            journal_root=args.journal_root,
        )
        flavor = f"{args.shards}-shard router"
    else:
        service = PolicyService(config, engine=args.engine)
        flavor = "single service"
    if args.frontend == "async":
        from repro.policy.rest_async import AsyncPolicyRestServer

        server = AsyncPolicyRestServer(service, host=args.host, port=args.port)
    else:
        server = PolicyRestServer(service, host=args.host, port=args.port)
    server.start()
    print(
        f"Policy Service ({args.policy}, {args.engine} engine, "
        f"{args.frontend} frontend, {flavor}) listening on {server.url}",
        file=out,
    )
    print("Ctrl-C to stop.", file=out)
    try:
        import threading

        threading.Event().wait()
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
    return 0


def _lint_montage_plan(n_images: int):
    """Plan a Montage workflow against the paper's catalog trio."""
    from repro.catalogs import ReplicaCatalog, SiteCatalog, SiteEntry
    from repro.planner import Planner, PlanOptions
    from repro.workflow.montage import (
        EXTRA_FILE_PREFIX,
        MontageConfig,
        montage_transformations,
        montage_workflow,
    )

    sites = SiteCatalog()
    sites.add(SiteEntry(name="isi", storage_host="obelix",
                        scratch_dir="/nfs/scratch", nodes=9, cores_per_node=6))
    sites.add(SiteEntry(name="archive", storage_host="archive-host",
                        scratch_dir="/archive"))
    replicas = ReplicaCatalog()
    workflow = montage_workflow(MontageConfig(n_images=n_images))
    for f in workflow.input_files():
        if f.lfn.startswith(EXTRA_FILE_PREFIX):
            replicas.register(f.lfn, "futuregrid", f"gsiftp://fg-vm/data/{f.lfn}")
        else:
            replicas.register(f.lfn, "isi-web", f"http://web-isi/images/{f.lfn}")
    planner = Planner(sites, montage_transformations(), replicas)
    return planner.plan(workflow, "isi", PlanOptions(output_site="archive"))


def _cmd_lint(args, out) -> int:
    import json

    from repro.analysis import (
        flag_dead_suppressions,
        lint_plan,
        lint_rule_set,
        shipped_rule_sets,
    )

    selected: list[str] = []
    if args.rules:
        selected = [name.strip() for name in args.rules.split(",") if name.strip()]
    rule_sets = list(selected)
    if rule_sets:
        unknown = sorted(set(rule_sets) - set(shipped_rule_sets()))
        if unknown:
            print(f"unknown rule set(s): {', '.join(unknown)}", file=out)
            return 2
    plan_targets = [args.plan] if args.plan else []
    if args.all:
        rule_sets = sorted(shipped_rule_sets())
        plan_targets = ["montage"]
    if not rule_sets and not plan_targets and not args.verify:
        print("nothing to lint: pass --all, --rules, --plan, or --verify",
              file=out)
        return 2

    reports = []
    for name in rule_sets:
        reports.append(lint_rule_set(name, seed=args.seed, trials=args.trials))
    for target in plan_targets:
        reports.append(lint_plan(_lint_montage_plan(args.images)))
    for report in reports:
        report.suppress(args.suppress)

    if args.verify:
        from repro.analysis import VerifyOptions, verify_compositions, verify_pack
        from repro.analysis.verifier import ENGINES

        compositions = verify_compositions()
        if selected and not args.all:
            unknown = sorted(set(selected) - set(compositions))
            if unknown:
                print(f"unknown composition(s): {', '.join(unknown)}", file=out)
                return 2
            compositions = {n: compositions[n] for n in selected}
        engines = tuple(ENGINES)
        if args.engines:
            engines = tuple(
                e.strip() for e in args.engines.split(",") if e.strip()
            )
            bad = sorted(set(engines) - set(ENGINES))
            if bad:
                print(f"unknown engine(s): {', '.join(bad)}", file=out)
                return 2
        options = VerifyOptions(
            seed=args.seed,
            engines=engines,
            extra_suppressions=tuple(args.suppress),
        )
        for name, (_rules, session_globals, builders) in compositions.items():
            reports.append(verify_pack(name, builders, session_globals, options))

    dead = flag_dead_suppressions(reports)
    if dead.findings:
        reports.append(dead)

    if args.format == "json":
        print(json.dumps([r.to_dict() for r in reports], indent=2), file=out)
    elif args.format == "sarif":
        from repro.analysis.sarif import render_sarif

        print(render_sarif(reports), file=out)
    else:
        for report in reports:
            print(report.render_text(), file=out)
            print(file=out)
        errors = sum(len(r.errors()) for r in reports)
        warnings = sum(len(r.by_severity("warning")) for r in reports)
        print(f"{len(reports)} target(s) analyzed: "
              f"{errors} error(s), {warnings} warning(s)", file=out)
    return 1 if any(r.errors() for r in reports) else 0


#: The built-in demo ensemble: three tenants of unequal weight (1/2/4),
#: one of them in a higher priority class, two small workflows each.
DEMO_ENSEMBLE = {
    "tenants": [
        {"tenant": "bronze", "weight": 1},
        {"tenant": "silver", "weight": 2},
        {"tenant": "gold", "weight": 4, "priority_class": 1},
    ],
    "submissions": [
        {"tenant": "bronze", "count": 2},
        {"tenant": "silver", "count": 2},
        {"tenant": "gold", "count": 2},
    ],
    "scheduler": "fair",
    "max_concurrent": 2,
}


def _ensemble_inputs(doc: dict):
    """Turn a JSON ensemble description into runner arguments."""
    from repro.tenancy import AdmissionConfig
    from repro.workflow.montage import MB, MontageConfig, augmented_montage

    tenants = doc.get("tenants") or []
    if not tenants:
        raise ValueError("ensemble config needs a non-empty 'tenants' list")
    submissions = []
    for entry in doc.get("submissions") or []:
        tenant = entry["tenant"]
        for i in range(int(entry.get("count", 1))):
            name = entry.get("name", f"{tenant}-wf{i}")
            if int(entry.get("count", 1)) > 1 and "name" in entry:
                name = f"{entry['name']}-{i}"
            workflow = augmented_montage(
                float(entry.get("extra_mb", 10.0)) * MB,
                MontageConfig(
                    n_images=int(entry.get("images", 6)),
                    name=name,
                    lfn_prefix=f"{name}_" if not entry.get("shared_dataset") else "",
                ),
            )
            submissions.append((tenant, workflow))
    if not submissions:
        raise ValueError("ensemble config needs a non-empty 'submissions' list")
    watermarks = doc.get("backpressure")
    admission = AdmissionConfig(
        max_concurrent=int(doc.get("max_concurrent", 2)),
        backpressure_high=watermarks[0] if watermarks else None,
        backpressure_low=watermarks[1] if watermarks else None,
    )
    return tenants, submissions, admission, doc.get("scheduler", "fair")


def _cmd_ensemble(args, out) -> int:
    import json

    from repro.experiments import ExperimentConfig
    from repro.experiments.runner import run_tenant_ensemble
    from repro.tenancy import AdmissionConfig

    if args.config:
        with open(args.config) as fh:
            doc = json.load(fh)
    else:
        doc = DEMO_ENSEMBLE
    tenants, submissions, admission, scheduler = _ensemble_inputs(doc)
    if args.scheduler:
        scheduler = args.scheduler
    if args.max_concurrent is not None:
        admission = AdmissionConfig(
            max_concurrent=args.max_concurrent,
            backpressure_high=admission.backpressure_high,
            backpressure_low=admission.backpressure_low,
        )
    cfg = ExperimentConfig(
        extra_file_mb=10.0,
        default_streams=args.streams,
        policy=None if args.policy == "none" else args.policy,
        threshold=args.threshold,
        n_images=6,
        engine=args.engine,
        seed=args.seed,
    )
    result = run_tenant_ensemble(
        cfg, tenants, submissions, admission=admission, scheduler=scheduler
    )
    print(f"scheduler      : {scheduler} "
          f"(max {admission.max_concurrent} concurrent)", file=out)
    print(f"admitted       : {len(result.metrics)} workflow(s) in order "
          f"{', '.join(result.admission_order)}", file=out)
    for tenant in sorted(result.tenant_bytes):
        share = result.tenant_shares.get(tenant, 0.0)
        print(f"  {tenant:<12s} {result.tenant_bytes[tenant] / 1e9:7.2f} GB staged "
              f"(fair share {share:.0%})", file=out)
    for tenant, name, reason in result.rejected:
        print(f"rejected       : {name} ({tenant}): {reason}", file=out)
    ok = all(m.success for m in result.metrics)
    print(f"success        : {ok}", file=out)
    return 0 if ok else 1


def _cmd_trace(args, out) -> int:
    from pathlib import Path

    from repro.experiments import ExperimentConfig
    from repro.experiments.tracing import (
        run_traced_cell,
        run_traced_chaos,
        run_traced_ensemble,
    )

    policy = None if args.policy == "none" else args.policy
    if args.scenario == "chaos-montage" and policy is None:
        print("chaos-montage needs a policy (got --policy none)", file=out)
        return 2
    cfg = ExperimentConfig(
        extra_file_mb=args.extra_mb,
        default_streams=args.streams,
        policy=policy,
        threshold=args.threshold,
        n_images=args.images,
        engine=args.engine,
        seed=args.seed,
    )
    if args.scenario == "tenant-ensemble":
        tenants, submissions, admission, scheduler = _ensemble_inputs(DEMO_ENSEMBLE)
        run = run_traced_ensemble(
            cfg, tenants, submissions, admission=admission, scheduler=scheduler
        )
        outdir = Path(args.out) if args.out else Path("traces") / args.scenario
        paths = run.write_artifacts(outdir)
        summary = run.tracer.summary()
        ok = all(m.success for m in run.result.metrics)
        print(f"workflows: {len(run.result.metrics)} "
              f"({', '.join(run.result.admission_order)})", file=out)
        print(f"success  : {ok}", file=out)
        print(f"events   : {summary['events']} ({summary['spans']} spans, "
              f"{summary['categories'].get('tenant', 0)} tenant events)", file=out)
        print("artifacts:", file=out)
        for name in sorted(paths):
            print(f"  {name:<16s} {paths[name]}", file=out)
        return 0 if ok else 1
    if args.scenario == "chaos-montage":
        run = run_traced_chaos(cfg)
    else:
        run = run_traced_cell(cfg)
    outdir = Path(args.out) if args.out else Path("traces") / args.scenario
    paths = run.write_artifacts(outdir)
    summary = run.tracer.summary()
    print(f"workflow : {run.metrics.workflow_id}", file=out)
    print(f"success  : {run.metrics.success}", file=out)
    print(f"makespan : {run.metrics.makespan:.1f} s", file=out)
    print(f"events   : {summary['events']} ({summary['spans']} spans)", file=out)
    print("artifacts:", file=out)
    for name in sorted(paths):
        print(f"  {name:<16s} {paths[name]}", file=out)
    if policy is not None:
        print(file=out)
        print(run.profiler.report(), file=out)
    return 0 if run.metrics.success else 1


def _cmd_explain(args, out) -> int:
    import json as _json

    from repro.experiments import ExperimentConfig
    from repro.experiments.environment import build_testbed
    from repro.experiments.runner import WorkflowExecution, build_policy_client
    from repro.planner.planner import fresh_plan_ids
    from repro.policy.provenance import render_narrative
    from repro.workflow.montage import MB, MontageConfig, augmented_montage

    cfg = ExperimentConfig(
        extra_file_mb=args.extra_mb,
        default_streams=args.streams,
        policy=args.policy,
        threshold=args.threshold,
        n_images=args.images,
        engine=args.engine,
        shards=args.shards,
        seed=args.seed,
    )
    workflow = augmented_montage(
        cfg.extra_file_mb * MB,
        MontageConfig(n_images=cfg.n_images, name=f"montage-{cfg.n_images}img"),
    )
    bed = build_testbed(cfg.testbed, seed=cfg.seed)
    policy = build_policy_client(cfg, bed)
    with fresh_plan_ids():
        execution = WorkflowExecution(cfg, workflow, bed, policy)
        process = execution.start()
        bed.env.run(until=process)
    record = policy.service.explain(args.tid)
    if record is None:
        print(f"no decision record for transfer {args.tid} "
              f"(this cell issued transfer ids starting at 1)", file=out)
        return 1
    if args.format == "json":
        print(_json.dumps(record, indent=2, sort_keys=True), file=out)
    else:
        print(render_narrative(record), file=out)
    return 0


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out or sys.stdout
    args = build_parser().parse_args(argv)
    handlers = {
        "table4": lambda: _cmd_table4(out),
        "run": lambda: _cmd_run(args, out),
        "figure": lambda: _cmd_figure(args, out),
        "campaign": lambda: _cmd_campaign(args, out),
        "serve": lambda: _cmd_serve(args, out),
        "lint": lambda: _cmd_lint(args, out),
        "trace": lambda: _cmd_trace(args, out),
        "explain": lambda: _cmd_explain(args, out),
        "ensemble": lambda: _cmd_ensemble(args, out),
    }
    return handlers[args.command]()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
