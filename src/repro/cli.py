"""Command-line interface.

Subcommands::

    repro table4                      print Table IV (max simultaneous streams)
    repro run [...]                   run one experiment cell, print metrics
    repro figure {5,6,7,8,9} [...]    regenerate one of the paper's figures
    repro campaign [...]              run a steady staging campaign
    repro serve [...]                 start the RESTful Policy Service

(`python -m repro ...` works identically.)
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Policy-driven data staging for scientific workflows "
            "(SC 2012 reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table4", help="print Table IV (maximum simultaneous streams)")

    run = sub.add_parser("run", help="run one experiment cell")
    run.add_argument("--extra-mb", type=float, default=100.0,
                     help="extra staged file size per staging job (MB)")
    run.add_argument("--streams", type=int, default=4,
                     help="default parallel streams per transfer")
    run.add_argument("--policy", choices=["greedy", "balanced", "fifo", "none"],
                     default="greedy")
    run.add_argument("--threshold", type=int, default=50,
                     help="max streams between a host pair")
    run.add_argument("--adaptive", action="store_true",
                     help="adapt the threshold from observed throughput")
    run.add_argument("--images", type=int, default=89,
                     help="Montage input images (= staging jobs)")
    run.add_argument("--max-staging-gb", type=float, default=None,
                     help="storage-constrained staging budget (GB)")
    run.add_argument("--output-site", default=None,
                     help="stage final outputs to this site (e.g. archive)")
    run.add_argument("--seed", type=int, default=0)

    figure = sub.add_parser("figure", help="regenerate one of Figs. 5-9")
    figure.add_argument("number", type=int, choices=[5, 6, 7, 8, 9])
    figure.add_argument("--replicates", type=int, default=3)
    figure.add_argument("--quick", action="store_true",
                        help="reduced sweep (endpoints only)")

    campaign = sub.add_parser("campaign", help="run a steady staging campaign")
    campaign.add_argument("--transfers", type=int, default=200)
    campaign.add_argument("--mb", type=float, default=200.0)
    campaign.add_argument("--workers", type=int, default=20)
    campaign.add_argument("--streams", type=int, default=8)
    campaign.add_argument("--policy", choices=["greedy", "none"], default="greedy")
    campaign.add_argument("--threshold", type=int, default=50)
    campaign.add_argument("--adaptive", action="store_true")
    campaign.add_argument("--seed", type=int, default=0)

    serve = sub.add_parser("serve", help="start the RESTful Policy Service")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="0 picks a free port")
    serve.add_argument("--policy", choices=["greedy", "balanced", "fifo"],
                       default="greedy")
    serve.add_argument("--threshold", type=int, default=50)
    serve.add_argument("--default-streams", type=int, default=4)
    serve.add_argument("--cluster-count", type=int, default=None)
    serve.add_argument("--access-control", action="store_true",
                       help="enable host denials and staging quotas")

    return parser


# ------------------------------------------------------------------ commands
def _cmd_table4(out) -> int:
    from repro.policy.allocation import format_table4, max_streams_table

    print("Table IV — maximum streams for simultaneous transfers", file=out)
    print(format_table4(max_streams_table()), file=out)
    return 0


def _cmd_run(args, out) -> int:
    from repro.experiments import ExperimentConfig, run_cell

    policy = None if args.policy == "none" else args.policy
    cfg = ExperimentConfig(
        extra_file_mb=args.extra_mb,
        default_streams=args.streams,
        policy=policy,
        threshold=args.threshold,
        adaptive=args.adaptive,
        cluster_factor=2 if policy == "balanced" else None,
        n_images=args.images,
        max_staging_bytes=args.max_staging_gb * 1e9 if args.max_staging_gb else None,
        output_site=args.output_site,
        seed=args.seed,
    )
    metrics = run_cell(cfg)
    print(f"workflow      : {metrics.workflow_id}", file=out)
    print(f"success       : {metrics.success}", file=out)
    print(f"makespan      : {metrics.makespan:.1f} s", file=out)
    print(f"staging time  : {metrics.staging_time:.1f} s", file=out)
    print(f"bytes staged  : {metrics.bytes_staged / 1e9:.2f} GB", file=out)
    print(f"peak WAN load : {metrics.peak_streams.get('wan', 0)} streams", file=out)
    print(f"peak footprint: {metrics.peak_footprint / 1e9:.2f} GB", file=out)
    if policy:
        print(f"policy calls  : {metrics.policy_calls} "
              f"({metrics.policy_overhead:.1f} s total latency)", file=out)
    return 0 if metrics.success else 1


def _cmd_figure(args, out) -> int:
    from repro.experiments.figures import (
        DEFAULT_STREAM_SWEEP,
        FIG5_SIZES_MB,
        FIG_SIZE_MB,
        fig5_series,
        fig_threshold_series,
        no_policy_point,
    )
    from repro.metrics import format_series_table

    defaults = (4, 8, 12) if args.quick else DEFAULT_STREAM_SWEEP
    if args.number == 5:
        sizes = (0, 100, 1000) if args.quick else FIG5_SIZES_MB
        series = fig5_series(sizes_mb=sizes, defaults=defaults,
                             replicates=args.replicates)
        print(format_series_table(
            "Fig. 5 — execution time (s), greedy threshold 50",
            "streams", series), file=out)
        return 0
    size = FIG_SIZE_MB[args.number]
    series = fig_threshold_series(size, defaults=defaults,
                                  replicates=args.replicates)
    nop = no_policy_point(size, replicates=args.replicates)
    print(format_series_table(
        f"Fig. {args.number} — execution time (s), {size} MB extra files",
        "streams", series), file=out)
    mean, std = nop.at(4)
    print(f"\nno policy (default Pegasus, 4 streams): {mean:.1f} ± {std:.1f} s",
          file=out)
    return 0


def _cmd_campaign(args, out) -> int:
    from repro.experiments.campaign import CampaignConfig, run_staging_campaign

    cfg = CampaignConfig(
        n_transfers=args.transfers,
        transfer_mb=args.mb,
        workers=args.workers,
        default_streams=args.streams,
        policy=None if args.policy == "none" else args.policy,
        threshold=args.threshold,
        adaptive=args.adaptive,
        seed=args.seed,
    )
    result = run_staging_campaign(cfg)
    print(f"transfers    : {result.transfers_done}", file=out)
    print(f"duration     : {result.duration:.1f} s", file=out)
    print(f"throughput   : {result.aggregate_throughput / 1e6:.1f} MB/s", file=out)
    print(f"peak streams : {result.peak_streams}", file=out)
    if result.final_threshold is not None:
        trajectory = [h[1] for h in result.threshold_history]
        print(f"adaptive     : final threshold {result.final_threshold}, "
              f"trajectory {trajectory}", file=out)
    return 0


def _cmd_serve(args, out) -> int:
    from repro.policy import PolicyConfig, PolicyService
    from repro.policy.rest import PolicyRestServer

    config = PolicyConfig(
        policy=args.policy,
        default_streams=args.default_streams,
        max_streams=args.threshold,
        cluster_count=args.cluster_count,
        access_control=args.access_control,
    )
    server = PolicyRestServer(PolicyService(config), host=args.host, port=args.port)
    server.start()
    print(f"Policy Service ({args.policy}) listening on {server.url}", file=out)
    print("Ctrl-C to stop.", file=out)
    try:
        import threading

        threading.Event().wait()
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
    return 0


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out or sys.stdout
    args = build_parser().parse_args(argv)
    handlers = {
        "table4": lambda: _cmd_table4(out),
        "run": lambda: _cmd_run(args, out),
        "figure": lambda: _cmd_figure(args, out),
        "campaign": lambda: _cmd_campaign(args, out),
        "serve": lambda: _cmd_serve(args, out),
    }
    return handlers[args.command]()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
