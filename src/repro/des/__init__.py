"""Discrete-event simulation kernel.

A small, dependency-free, SimPy-flavoured kernel used as the execution
substrate for the simulated distributed testbed (network, hosts, cluster
scheduler, workflow engine).  Processes are plain Python generators that
yield :class:`~repro.des.core.Event` objects; the :class:`Environment`
advances virtual time deterministically.

The kernel is deliberately deterministic: events scheduled for the same
timestamp fire in schedule order (FIFO tie-breaking), so simulations are
reproducible bit-for-bit for a fixed seed.

Public API
----------
``Environment``
    The simulation clock and event loop.
``Event``, ``Timeout``, ``Process``, ``AllOf``, ``AnyOf``, ``Interrupt``
    Event primitives usable from process generators.
``Resource``, ``PriorityResource``, ``Store``, ``Container``
    Queued capacity primitives built on events.
``RngRegistry``
    Named deterministic random substreams per simulation component.
"""

from repro.des.core import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
)
from repro.des.resources import Container, PriorityResource, Resource, Store
from repro.des.rng import RngRegistry

__all__ = [
    "AllOf",
    "AnyOf",
    "Container",
    "Environment",
    "Event",
    "Interrupt",
    "PriorityResource",
    "Process",
    "Resource",
    "RngRegistry",
    "SimulationError",
    "Store",
    "Timeout",
]
