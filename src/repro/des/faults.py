"""Fault injection for chaos experiments.

A :class:`FaultPlan` declares *when* things break; a
:class:`FaultInjector` turns the plan into DES processes that break them:

* :class:`ServiceOutage` — the Policy Service crashes at ``at`` and is
  unreachable for ``duration`` seconds.  When the injector was given a
  ``restart`` callable, the service comes back as whatever it returns —
  typically ``PolicyService.recover(journal_dir)``, which is how the
  chaos tests exercise the durable policy memory end to end.
* :class:`RpcDropWindow` — individual policy RPCs are dropped with
  probability ``rate`` during the window (flaky network, not a crash).
* :class:`GridFTPStorm` — the transfer fabric's failure rate is raised
  to ``failure_rate`` for the window, then restored.

The injector hooks the simulation through the
:class:`~repro.policy.client.InProcessPolicyClient` ``fault_gate`` and
the :class:`~repro.net.gridftp.GridFTPClient` ``failure_rate`` knob; it
lives in :mod:`repro.des` but is imported explicitly (not re-exported
from the package) so the DES kernel itself stays policy-agnostic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Optional

from repro.des.core import Environment

__all__ = [
    "ServiceOutage",
    "RpcDropWindow",
    "GridFTPStorm",
    "FaultPlan",
    "FaultInjector",
]


@dataclass(frozen=True)
class ServiceOutage:
    """The Policy Service is down during ``[at, at + duration)``."""

    at: float
    duration: float

    def __post_init__(self):
        if self.at < 0 or self.duration <= 0:
            raise ValueError("outage needs at >= 0 and duration > 0")


@dataclass(frozen=True)
class RpcDropWindow:
    """Policy RPCs are dropped with probability ``rate`` in the window."""

    at: float
    duration: float
    rate: float = 1.0

    def __post_init__(self):
        if self.at < 0 or self.duration <= 0:
            raise ValueError("drop window needs at >= 0 and duration > 0")
        if not 0 < self.rate <= 1:
            raise ValueError("rate must be in (0, 1]")


@dataclass(frozen=True)
class GridFTPStorm:
    """The fabric's transfer failure rate spikes during the window."""

    at: float
    duration: float
    failure_rate: float

    def __post_init__(self):
        if self.at < 0 or self.duration <= 0:
            raise ValueError("storm needs at >= 0 and duration > 0")
        if not 0 <= self.failure_rate <= 1:
            raise ValueError("failure_rate must be in [0, 1]")


@dataclass(frozen=True)
class FaultPlan:
    """A declarative schedule of faults for one simulation run."""

    outages: tuple[ServiceOutage, ...] = ()
    rpc_drops: tuple[RpcDropWindow, ...] = ()
    storms: tuple[GridFTPStorm, ...] = ()

    @classmethod
    def single_crash(cls, at: float, duration: float) -> "FaultPlan":
        """The canonical chaos scenario: one mid-run service outage."""
        return cls(outages=(ServiceOutage(at=at, duration=duration),))


class FaultInjector:
    """Schedules a :class:`FaultPlan` onto a simulation environment.

    Attach the targets first, then :meth:`start` (before ``env.run``)::

        injector = FaultInjector(env, plan, rng=rng)
        injector.attach_policy(client, restart=lambda: PolicyService.recover(d))
        injector.attach_gridftp(gridftp)
        injector.start()
    """

    def __init__(
        self,
        env: Environment,
        plan: FaultPlan,
        rng: Optional[random.Random] = None,
    ):
        self.env = env
        self.plan = plan
        self._rng = rng or random.Random(0)
        self._policy_client = None
        self._restart: Optional[Callable[[], object]] = None
        self._gridftp = None
        self.service_down = False
        self._drop_rate = 0.0
        #: (time, description) trace of everything the injector did
        self.log: list[tuple[float, str]] = []

    def _trace(self, name: str, **args) -> None:
        """Mark a fault transition on the trace's ``fault`` track."""
        tracer = self.env.tracer
        if tracer is not None and tracer.enabled:
            tracer.instant("fault", name, track="fault", **args)

    # ------------------------------------------------------------------ wiring
    def attach_policy(self, client, restart: Optional[Callable[[], object]] = None) -> None:
        """Gate ``client``'s RPCs through this injector.

        ``restart`` (optional) is called when an outage ends; its return
        value replaces ``client.service`` — the recovery path.
        """
        from repro.policy.client import PolicyUnavailableError  # local: layering

        self._policy_client = client
        self._restart = restart

        def gate(method: str) -> None:
            if self.service_down:
                raise PolicyUnavailableError(
                    f"policy service is down (fault injection, call={method})"
                )
            if self._drop_rate > 0 and self._rng.random() < self._drop_rate:
                raise PolicyUnavailableError(
                    f"policy rpc dropped (fault injection, call={method})"
                )

        client.fault_gate = gate

    def attach_gridftp(self, gridftp) -> None:
        """Let storms drive ``gridftp.failure_rate``."""
        self._gridftp = gridftp

    # ------------------------------------------------------------------ running
    def start(self) -> None:
        """Spawn one DES process per scheduled fault."""
        if self.plan.outages and self._policy_client is None:
            raise RuntimeError("plan has outages but no policy client attached")
        if self.plan.rpc_drops and self._policy_client is None:
            raise RuntimeError("plan has rpc drops but no policy client attached")
        if self.plan.storms and self._gridftp is None:
            raise RuntimeError("plan has storms but no gridftp client attached")
        for outage in self.plan.outages:
            self.env.process(self._run_outage(outage), name="fault-outage")
        for window in self.plan.rpc_drops:
            self.env.process(self._run_drop_window(window), name="fault-rpc-drop")
        for storm in self.plan.storms:
            self.env.process(self._run_storm(storm), name="fault-storm")

    def _run_outage(self, outage: ServiceOutage):
        yield self.env.timeout(outage.at)
        self.service_down = True
        self.log.append((self.env.now, "service crashed"))
        self._trace("fault.outage.begin", duration=outage.duration)
        yield self.env.timeout(outage.duration)
        if self._restart is not None:
            self._policy_client.service = self._restart()
            self.log.append((self.env.now, "service recovered from journal"))
            self._trace("fault.outage.end", recovered="journal")
        else:
            self.log.append((self.env.now, "service back up"))
            self._trace("fault.outage.end", recovered="restart")
        self.service_down = False

    def _run_drop_window(self, window: RpcDropWindow):
        yield self.env.timeout(window.at)
        self._drop_rate = window.rate
        self.log.append((self.env.now, f"dropping rpcs at rate {window.rate:g}"))
        self._trace("fault.rpc_drop.begin", rate=window.rate, duration=window.duration)
        yield self.env.timeout(window.duration)
        self._drop_rate = 0.0
        self.log.append((self.env.now, "rpc drops ended"))
        self._trace("fault.rpc_drop.end")

    def _run_storm(self, storm: GridFTPStorm):
        yield self.env.timeout(storm.at)
        previous = self._gridftp.failure_rate
        self._gridftp.failure_rate = storm.failure_rate
        self.log.append(
            (self.env.now, f"gridftp storm: failure rate {storm.failure_rate:g}")
        )
        self._trace(
            "fault.storm.begin",
            failure_rate=storm.failure_rate, duration=storm.duration,
        )
        yield self.env.timeout(storm.duration)
        self._gridftp.failure_rate = previous
        self.log.append((self.env.now, "gridftp storm ended"))
        self._trace("fault.storm.end")
