"""Fault injection for chaos experiments.

A :class:`FaultPlan` declares *when* things break; a
:class:`FaultInjector` turns the plan into DES processes that break them:

* :class:`ServiceOutage` — the Policy Service crashes at ``at`` and is
  unreachable for ``duration`` seconds.  When the injector was given a
  ``restart`` callable, the service comes back as whatever it returns —
  typically ``PolicyService.recover(journal_dir)``, which is how the
  chaos tests exercise the durable policy memory end to end.
* :class:`RpcDropWindow` — individual policy RPCs are dropped with
  probability ``rate`` during the window (flaky network, not a crash).
* :class:`GridFTPStorm` — the transfer fabric's failure rate is raised
  to ``failure_rate`` for the window, then restored.
* :class:`ShardCrash` — one shard of a
  :class:`~repro.policy.sharding.router.ShardedPolicyService` dies at
  ``at`` (working memory lost, journal kept) and is replayed from its
  WAL/snapshot ``down_for`` seconds later; the other shards serve
  uninterrupted throughout.
* :class:`ShardSlowdown` — a fraction of one shard's calls time out
  during the window, driving its circuit breaker.
* :class:`RouterPartition` — one shard is unreachable from the router
  for the window; its memory stays intact (no replay needed).

The injector hooks the simulation through the
:class:`~repro.policy.client.InProcessPolicyClient` ``fault_gate`` and
the :class:`~repro.net.gridftp.GridFTPClient` ``failure_rate`` knob; it
lives in :mod:`repro.des` but is imported explicitly (not re-exported
from the package) so the DES kernel itself stays policy-agnostic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Optional

from repro.des.core import Environment

__all__ = [
    "ServiceOutage",
    "RpcDropWindow",
    "GridFTPStorm",
    "ShardCrash",
    "ShardSlowdown",
    "RouterPartition",
    "FaultPlan",
    "FaultInjector",
]


@dataclass(frozen=True)
class ServiceOutage:
    """The Policy Service is down during ``[at, at + duration)``."""

    at: float
    duration: float

    def __post_init__(self):
        if self.at < 0 or self.duration <= 0:
            raise ValueError("outage needs at >= 0 and duration > 0")


@dataclass(frozen=True)
class RpcDropWindow:
    """Policy RPCs are dropped with probability ``rate`` in the window."""

    at: float
    duration: float
    rate: float = 1.0

    def __post_init__(self):
        if self.at < 0 or self.duration <= 0:
            raise ValueError("drop window needs at >= 0 and duration > 0")
        if not 0 < self.rate <= 1:
            raise ValueError("rate must be in (0, 1]")


@dataclass(frozen=True)
class GridFTPStorm:
    """The fabric's transfer failure rate spikes during the window."""

    at: float
    duration: float
    failure_rate: float

    def __post_init__(self):
        if self.at < 0 or self.duration <= 0:
            raise ValueError("storm needs at >= 0 and duration > 0")
        if not 0 <= self.failure_rate <= 1:
            raise ValueError("failure_rate must be in [0, 1]")


@dataclass(frozen=True)
class ShardCrash:
    """Shard ``shard`` crashes at ``at``; journal replay after ``down_for``."""

    at: float
    shard: int
    down_for: float

    def __post_init__(self):
        if self.at < 0 or self.down_for <= 0:
            raise ValueError("shard crash needs at >= 0 and down_for > 0")
        if self.shard < 0:
            raise ValueError("shard index must be >= 0")


@dataclass(frozen=True)
class ShardSlowdown:
    """A fraction of shard ``shard``'s calls time out in the window."""

    at: float
    duration: float
    shard: int
    timeout_rate: float = 1.0

    def __post_init__(self):
        if self.at < 0 or self.duration <= 0:
            raise ValueError("slowdown needs at >= 0 and duration > 0")
        if self.shard < 0:
            raise ValueError("shard index must be >= 0")
        if not 0 < self.timeout_rate <= 1:
            raise ValueError("timeout_rate must be in (0, 1]")


@dataclass(frozen=True)
class RouterPartition:
    """Shard ``shard`` is unreachable (memory intact) during the window."""

    at: float
    duration: float
    shard: int

    def __post_init__(self):
        if self.at < 0 or self.duration <= 0:
            raise ValueError("partition needs at >= 0 and duration > 0")
        if self.shard < 0:
            raise ValueError("shard index must be >= 0")


@dataclass(frozen=True)
class FaultPlan:
    """A declarative schedule of faults for one simulation run."""

    outages: tuple[ServiceOutage, ...] = ()
    rpc_drops: tuple[RpcDropWindow, ...] = ()
    storms: tuple[GridFTPStorm, ...] = ()
    shard_crashes: tuple[ShardCrash, ...] = ()
    shard_slowdowns: tuple[ShardSlowdown, ...] = ()
    partitions: tuple[RouterPartition, ...] = ()

    @classmethod
    def single_crash(cls, at: float, duration: float) -> "FaultPlan":
        """The canonical chaos scenario: one mid-run service outage."""
        return cls(outages=(ServiceOutage(at=at, duration=duration),))

    @classmethod
    def single_shard_crash(
        cls, at: float, shard: int, down_for: float
    ) -> "FaultPlan":
        """The canonical shard chaos scenario: one shard dies and replays."""
        return cls(
            shard_crashes=(ShardCrash(at=at, shard=shard, down_for=down_for),)
        )


class FaultInjector:
    """Schedules a :class:`FaultPlan` onto a simulation environment.

    Attach the targets first, then :meth:`start` (before ``env.run``)::

        injector = FaultInjector(env, plan, rng=rng)
        injector.attach_policy(client, restart=lambda: PolicyService.recover(d))
        injector.attach_gridftp(gridftp)
        injector.start()
    """

    def __init__(
        self,
        env: Environment,
        plan: FaultPlan,
        rng: Optional[random.Random] = None,
    ):
        self.env = env
        self.plan = plan
        self._rng = rng or random.Random(0)
        self._policy_client = None
        self._restart: Optional[Callable[[], object]] = None
        self._gridftp = None
        self._router = None
        self.service_down = False
        self._drop_rate = 0.0
        #: (time, description) trace of everything the injector did
        self.log: list[tuple[float, str]] = []

    def _trace(self, name: str, **args) -> None:
        """Mark a fault transition on the trace's ``fault`` track."""
        tracer = self.env.tracer
        if tracer is not None and tracer.enabled:
            tracer.instant("fault", name, track="fault", **args)

    # ------------------------------------------------------------------ wiring
    def attach_policy(self, client, restart: Optional[Callable[[], object]] = None) -> None:
        """Gate ``client``'s RPCs through this injector.

        ``restart`` (optional) is called when an outage ends; its return
        value replaces ``client.service`` — the recovery path.
        """
        from repro.policy.client import PolicyUnavailableError  # local: layering

        self._policy_client = client
        self._restart = restart

        def gate(method: str) -> None:
            if self.service_down:
                raise PolicyUnavailableError(
                    f"policy service is down (fault injection, call={method})"
                )
            if self._drop_rate > 0 and self._rng.random() < self._drop_rate:
                raise PolicyUnavailableError(
                    f"policy rpc dropped (fault injection, call={method})"
                )

        client.fault_gate = gate

    def attach_gridftp(self, gridftp) -> None:
        """Let storms drive ``gridftp.failure_rate``."""
        self._gridftp = gridftp

    def attach_router(self, router) -> None:
        """Let shard faults drive a :class:`ShardedPolicyService`.

        The router must expose ``crash_shard`` / ``recover_shard`` /
        ``slow_shard`` / ``partition_shard`` and a ``num_shards``
        attribute (shard indices in the plan are validated against it).
        """
        self._router = router

    # ------------------------------------------------------------------ running
    def start(self) -> None:
        """Spawn one DES process per scheduled fault."""
        if self.plan.outages and self._policy_client is None:
            raise RuntimeError("plan has outages but no policy client attached")
        if self.plan.rpc_drops and self._policy_client is None:
            raise RuntimeError("plan has rpc drops but no policy client attached")
        if self.plan.storms and self._gridftp is None:
            raise RuntimeError("plan has storms but no gridftp client attached")
        shard_faults = (
            self.plan.shard_crashes
            + self.plan.shard_slowdowns
            + self.plan.partitions
        )
        if shard_faults:
            if self._router is None:
                raise RuntimeError("plan has shard faults but no router attached")
            for fault in shard_faults:
                if fault.shard >= self._router.num_shards:
                    raise RuntimeError(
                        f"fault targets shard {fault.shard} but the router "
                        f"has only {self._router.num_shards} shards"
                    )
        for outage in self.plan.outages:
            self.env.process(self._run_outage(outage), name="fault-outage")
        for window in self.plan.rpc_drops:
            self.env.process(self._run_drop_window(window), name="fault-rpc-drop")
        for storm in self.plan.storms:
            self.env.process(self._run_storm(storm), name="fault-storm")
        for crash in self.plan.shard_crashes:
            self.env.process(self._run_shard_crash(crash), name="fault-shard-crash")
        for slowdown in self.plan.shard_slowdowns:
            self.env.process(
                self._run_shard_slowdown(slowdown), name="fault-shard-slowdown"
            )
        for partition in self.plan.partitions:
            self.env.process(
                self._run_partition(partition), name="fault-router-partition"
            )

    def _run_outage(self, outage: ServiceOutage):
        yield self.env.timeout(outage.at)
        self.service_down = True
        self.log.append((self.env.now, "service crashed"))
        self._trace("fault.outage.begin", duration=outage.duration)
        yield self.env.timeout(outage.duration)
        if self._restart is not None:
            self._policy_client.service = self._restart()
            self.log.append((self.env.now, "service recovered from journal"))
            self._trace("fault.outage.end", recovered="journal")
        else:
            self.log.append((self.env.now, "service back up"))
            self._trace("fault.outage.end", recovered="restart")
        self.service_down = False

    def _run_drop_window(self, window: RpcDropWindow):
        yield self.env.timeout(window.at)
        self._drop_rate = window.rate
        self.log.append((self.env.now, f"dropping rpcs at rate {window.rate:g}"))
        self._trace("fault.rpc_drop.begin", rate=window.rate, duration=window.duration)
        yield self.env.timeout(window.duration)
        self._drop_rate = 0.0
        self.log.append((self.env.now, "rpc drops ended"))
        self._trace("fault.rpc_drop.end")

    def _run_shard_crash(self, crash: ShardCrash):
        yield self.env.timeout(crash.at)
        self._router.crash_shard(crash.shard)
        self.log.append((self.env.now, f"shard {crash.shard} crashed"))
        self._trace(
            "fault.shard_crash.begin", shard=crash.shard, down_for=crash.down_for
        )
        yield self.env.timeout(crash.down_for)
        self._router.recover_shard(crash.shard)
        self.log.append(
            (self.env.now, f"shard {crash.shard} replayed from journal")
        )
        self._trace("fault.shard_crash.end", shard=crash.shard)

    def _run_shard_slowdown(self, slowdown: ShardSlowdown):
        yield self.env.timeout(slowdown.at)
        self._router.slow_shard(slowdown.shard, slowdown.timeout_rate)
        self.log.append(
            (
                self.env.now,
                f"shard {slowdown.shard} slow: timeout rate "
                f"{slowdown.timeout_rate:g}",
            )
        )
        self._trace(
            "fault.shard_slowdown.begin",
            shard=slowdown.shard, timeout_rate=slowdown.timeout_rate,
            duration=slowdown.duration,
        )
        yield self.env.timeout(slowdown.duration)
        self._router.slow_shard(slowdown.shard, 0.0)
        # The breaker may still be open from the timeouts; the next
        # successful call (or probe after reset_timeout) closes it.
        self.log.append((self.env.now, f"shard {slowdown.shard} back to speed"))
        self._trace("fault.shard_slowdown.end", shard=slowdown.shard)

    def _run_partition(self, partition: RouterPartition):
        yield self.env.timeout(partition.at)
        self._router.partition_shard(partition.shard, True)
        self.log.append(
            (self.env.now, f"shard {partition.shard} partitioned from router")
        )
        self._trace(
            "fault.partition.begin",
            shard=partition.shard, duration=partition.duration,
        )
        yield self.env.timeout(partition.duration)
        self._router.partition_shard(partition.shard, False)
        self.log.append((self.env.now, f"shard {partition.shard} reachable again"))
        self._trace("fault.partition.end", shard=partition.shard)

    def _run_storm(self, storm: GridFTPStorm):
        yield self.env.timeout(storm.at)
        previous = self._gridftp.failure_rate
        self._gridftp.failure_rate = storm.failure_rate
        self.log.append(
            (self.env.now, f"gridftp storm: failure rate {storm.failure_rate:g}")
        )
        self._trace(
            "fault.storm.begin",
            failure_rate=storm.failure_rate, duration=storm.duration,
        )
        yield self.env.timeout(storm.duration)
        self._gridftp.failure_rate = previous
        self.log.append((self.env.now, "gridftp storm ended"))
        self._trace("fault.storm.end")
