"""Deterministic named random substreams.

Every stochastic component of a simulation (task runtimes, bandwidth jitter,
failure injection, ...) draws from its own named substream derived from a
single root seed.  Two runs with the same root seed are identical; adding a
new consumer of randomness does not perturb existing streams (streams are
keyed by name, not by draw order).
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["RngRegistry"]


class RngRegistry:
    """Factory of named, reproducible ``numpy.random.Generator`` streams.

    Parameters
    ----------
    seed:
        Root seed.  Substream seeds are derived as
        ``blake2b(root_seed || name)`` so they are stable across runs and
        independent of creation order.
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the substream for ``name``."""
        if name not in self._streams:
            digest = hashlib.blake2b(
                f"{self.seed}:{name}".encode(), digest_size=8
            ).digest()
            sub_seed = int.from_bytes(digest, "little")
            self._streams[name] = np.random.default_rng(sub_seed)
        return self._streams[name]

    def spawn(self, name: str) -> "RngRegistry":
        """Derive a child registry (e.g. one per replicate run)."""
        digest = hashlib.blake2b(
            f"{self.seed}/spawn:{name}".encode(), digest_size=8
        ).digest()
        return RngRegistry(int.from_bytes(digest, "little"))

    def __repr__(self) -> str:  # pragma: no cover
        return f"RngRegistry(seed={self.seed}, streams={sorted(self._streams)})"
