"""Core discrete-event simulation primitives.

The kernel follows the classic event-list design: an :class:`Environment`
owns a binary heap of ``(time, priority, sequence, event)`` entries and pops
them in order.  A :class:`Process` wraps a generator; each value the
generator yields must be an :class:`Event`, and the process resumes when
that event fires.

Determinism
-----------
Two events scheduled for the same time fire in the order they were
scheduled (a monotonically increasing sequence number breaks ties), so a
simulation is a pure function of its inputs and seeds.
"""

from __future__ import annotations

import heapq
import math
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "SimulationError",
]

#: Event priority for ordinary events.
NORMAL = 1
#: Event priority used for urgent bookkeeping (fires before NORMAL at same t).
URGENT = 0


class SimulationError(RuntimeError):
    """Raised for kernel misuse (running a dead environment, bad yields...)."""


class Interrupt(Exception):
    """Thrown into a process generator by :meth:`Process.interrupt`.

    The interrupted process may catch it and continue; ``cause`` carries the
    interrupter's reason object.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence in simulated time.

    Lifecycle: *pending* -> *triggered* (scheduled on the heap) ->
    *processed* (callbacks ran).  An event succeeds with a ``value`` or fails
    with an exception; failures propagate into any process waiting on the
    event.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_triggered", "_processed", "_defused")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok: Optional[bool] = None
        self._triggered = False
        self._processed = False
        self._defused = False

    # -- state ------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._processed

    @property
    def ok(self) -> Optional[bool]:
        """True if succeeded, False if failed, None if still pending."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's payload (or the failure exception)."""
        return self._value

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None, priority: int = NORMAL) -> "Event":
        """Schedule this event to fire successfully at the current time."""
        if self._triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._triggered = True
        self._ok = True
        self._value = value
        self.env._schedule(self, priority)
        return self

    def fail(self, exception: BaseException, priority: int = NORMAL) -> "Event":
        """Schedule this event to fire as a failure at the current time."""
        if self._triggered:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._triggered = True
        self._ok = False
        self._value = exception
        self.env._schedule(self, priority)
        return self

    def trigger(self, event: "Event") -> None:
        """Mirror another event's outcome onto this one (callback helper)."""
        if event._ok:
            self.succeed(event._value)
        else:
            self._defused = True
            self.fail(event._value)

    def defuse(self) -> None:
        """Mark a failed event as handled so it does not crash the run."""
        self._defused = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self._processed else ("triggered" if self._triggered else "pending")
        return f"<{type(self).__name__} {state} at t={self.env.now:.6g}>"


class Timeout(Event):
    """An event that fires ``delay`` time units after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(env)
        self.delay = delay
        self._triggered = True
        self._ok = True
        self._value = value
        env._schedule(self, NORMAL, delay=delay)


class Initialize(Event):
    """Internal: kicks a freshly created process at the current time."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process"):
        super().__init__(env)
        self.callbacks.append(process._resume)
        self._triggered = True
        self._ok = True
        self._value = None
        env._schedule(self, URGENT)


class Process(Event):
    """Wraps a generator; the event fires when the generator finishes.

    The generator's ``return`` value becomes the event value; an uncaught
    exception becomes a failure (propagated to waiters, or raised out of
    :meth:`Environment.run` if nobody waits).
    """

    __slots__ = ("_generator", "_target", "name")

    def __init__(self, env: "Environment", generator: Generator, name: str = ""):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError(f"process() requires a generator, got {generator!r}")
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is an error; interrupting a process
        that is waiting on an event detaches it from that event first.
        """
        if self._triggered:
            raise SimulationError(f"cannot interrupt finished {self!r}")
        if self._target is self:
            raise SimulationError("a process cannot interrupt itself")

        env = self.env
        interrupt_event = Event(env)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event._defused = True
        interrupt_event.callbacks.append(self._resume)
        interrupt_event._triggered = True
        env._schedule(interrupt_event, URGENT)

    # -- engine -----------------------------------------------------------
    def _resume(self, event: Event) -> None:
        if self._triggered:
            return  # already finished (e.g. interrupt raced completion)
        env = self.env
        # Detach from a previously awaited event when resumed by interrupt.
        if self._target is not None and self._target is not event:
            if self._target.callbacks is not None:
                try:
                    self._target.callbacks.remove(self._resume)
                except ValueError:
                    pass
        self._target = None
        env._active_process = self
        try:
            if event._ok:
                result = self._generator.send(event._value)
            else:
                event._defused = True
                result = self._generator.throw(event._value)
        except StopIteration as stop:
            env._active_process = None
            self._triggered = True
            self._ok = True
            self._value = stop.value
            env._schedule(self, NORMAL)
            return
        except BaseException as exc:
            env._active_process = None
            self._triggered = True
            self._ok = False
            self._value = exc
            env._schedule(self, NORMAL)
            return
        env._active_process = None

        if not isinstance(result, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {result!r}; processes must yield Event objects"
            )
        if result._processed:
            # Already fired: resume immediately at the current time.
            follow = Event(env)
            follow._ok = result._ok
            follow._value = result._value
            if not result._ok:
                follow._defused = True
            follow.callbacks.append(self._resume)
            follow._triggered = True
            env._schedule(follow, URGENT)
            self._target = follow
        else:
            result.callbacks.append(self._resume)
            self._target = result


class Condition(Event):
    """Base for AllOf / AnyOf composite events."""

    __slots__ = ("events", "_count")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self.events = list(events)
        self._count = 0
        for ev in self.events:
            if ev.env is not env:
                raise SimulationError("cannot mix events from different environments")
        if not self.events:
            self.succeed(self._collect())
            return
        for ev in self.events:
            if ev._processed:
                self._check(ev)
            else:
                ev.callbacks.append(self._check)
        # A pre-fired child may have already satisfied the condition.

    def _collect(self) -> dict:
        return {ev: ev._value for ev in self.events if ev._processed and ev._ok}

    def _satisfied(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError

    def _check(self, event: Event) -> None:
        if self._triggered:
            if event._ok is False:
                event._defused = True
            return
        self._count += 1
        if event._ok is False:
            event._defused = True
            self.fail(event._value)
        elif self._satisfied():
            self.succeed(self._collect())


class AllOf(Condition):
    """Fires when every child event has fired (fails fast on any failure)."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._count >= len(self.events)


class AnyOf(Condition):
    """Fires when at least one child event has fired."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._count >= 1


class Environment:
    """The simulation clock and event loop.

    Parameters
    ----------
    initial_time:
        Starting value of :attr:`now` (seconds; the unit is by convention).
    tracer:
        Optional :class:`repro.obs.tracer.Tracer`.  The environment binds
        the tracer's clock to the simulation clock so every emitted event
        is stamped with :attr:`now`; components reach it via
        ``env.tracer`` and must guard emission with
        ``if env.tracer is not None and env.tracer.enabled:``.
    """

    def __init__(self, initial_time: float = 0.0, tracer: Optional[Any] = None):
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        self._seq = 0
        self._active_process: Optional[Process] = None
        self.tracer = tracer
        if tracer is not None and getattr(tracer, "clock", None) is None:
            tracer.clock = lambda: self._now

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed (None between events)."""
        return self._active_process

    # -- factories ----------------------------------------------------------
    def event(self) -> Event:
        """Create a new untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Start a new process from a generator; returns its Process event."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Composite event that fires when all ``events`` fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Composite event that fires when any of ``events`` fired."""
        return AnyOf(self, events)

    # -- scheduling ----------------------------------------------------------
    def _schedule(self, event: Event, priority: int, delay: float = 0.0) -> None:
        self._seq += 1
        heapq.heappush(self._queue, (self._now + delay, priority, self._seq, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or +inf if none."""
        return self._queue[0][0] if self._queue else math.inf

    def step(self) -> None:
        """Process exactly one event (advancing the clock to it)."""
        if not self._queue:
            raise SimulationError("step() on an empty schedule")
        t, _prio, _seq, event = heapq.heappop(self._queue)
        if t < self._now:  # pragma: no cover - defensive
            raise SimulationError("time went backwards")
        self._now = t
        callbacks, event.callbacks = event.callbacks, None
        event._processed = True
        for callback in callbacks:
            callback(event)
        if event._ok is False and not event._defused:
            # Nobody handled the failure: crash the simulation loudly.
            raise event._value

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run until the schedule drains, a time is reached, or an event fires.

        ``until`` may be a number (run to that time), an :class:`Event` (run
        until it fires; its value is returned, failures re-raise), or None
        (run until no events remain).
        """
        if isinstance(until, Event):
            stop = until
            if stop._processed:
                if stop._ok:
                    return stop._value
                raise stop._value
            sentinel: dict[str, Any] = {}

            def _mark(ev: Event) -> None:
                sentinel["done"] = True

            stop.callbacks.append(_mark)
            while "done" not in sentinel:
                if not self._queue:
                    raise SimulationError("schedule drained before `until` event fired")
                self.step()
            if stop._ok:
                return stop._value
            stop._defused = True
            raise stop._value

        if until is None:
            while self._queue:
                self.step()
            return None

        horizon = float(until)
        if horizon < self._now:
            raise ValueError(f"run(until={horizon}) is in the past (now={self._now})")
        while self._queue and self._queue[0][0] <= horizon:
            self.step()
        self._now = max(self._now, horizon)
        return None
