"""Queued capacity primitives for the DES kernel.

``Resource``
    A counted semaphore with a FIFO wait queue (cluster slots, job throttles).
``PriorityResource``
    Same, but waiters are served in (priority, FIFO) order.
``Store``
    A queue of arbitrary items (work queues, mailboxes).
``Container``
    A continuous level with put/get amounts (storage pools).

All requests are events: processes ``yield resource.request()`` and later
call ``resource.release(req)`` (or use the request as a context manager).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

from repro.des.core import Environment, Event, SimulationError

__all__ = ["Resource", "PriorityResource", "Store", "Container"]


class Request(Event):
    """A pending or granted claim on a :class:`Resource` slot."""

    __slots__ = ("resource", "priority", "key")

    def __init__(self, resource: "Resource", priority: int = 0):
        super().__init__(resource.env)
        self.resource = resource
        self.priority = priority
        self.key: Any = None

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.resource.release(self)

    def cancel(self) -> None:
        """Withdraw an ungranted request from the wait queue."""
        self.resource._cancel(self)


class Resource:
    """Counted capacity with FIFO granting.

    Parameters
    ----------
    env:
        Simulation environment.
    capacity:
        Number of simultaneous holders (>= 1).
    """

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self._capacity = int(capacity)
        self._users: set[Request] = set()
        self._queue: list[tuple[Any, int, Request]] = []
        self._seq = 0
        self._grant_pending = False

    # -- introspection ------------------------------------------------------
    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def count(self) -> int:
        """Number of currently granted requests."""
        return len(self._users)

    @property
    def queued(self) -> int:
        """Number of waiting (ungranted) requests."""
        return len(self._queue)

    # -- operations -----------------------------------------------------------
    def _order_key(self, request: Request) -> Any:
        self._seq += 1
        return (self._seq,)

    def request(self, priority: int = 0) -> Request:
        """Claim one slot; the returned event fires when granted.

        Granting is deferred to the end of the current event cascade so
        that all requests made at the same instant enter the queue before
        any is granted — this is what lets a :class:`PriorityResource`
        serve the highest-priority of simultaneously-arriving requests
        first.
        """
        req = Request(self, priority)
        req.key = self._order_key(req)
        heapq.heappush(self._queue, (req.key, id(req), req))
        self._schedule_grant()
        return req

    def release(self, request: Request) -> None:
        """Return a granted slot (no-op for cancelled requests)."""
        if request in self._users:
            self._users.remove(request)
            self._schedule_grant()
        elif not request.triggered:
            self._cancel(request)

    def _cancel(self, request: Request) -> None:
        if request.triggered:
            raise SimulationError("cannot cancel a granted request")
        self._queue = [entry for entry in self._queue if entry[2] is not request]
        heapq.heapify(self._queue)

    def _schedule_grant(self) -> None:
        if getattr(self, "_grant_pending", False):
            return
        self._grant_pending = True
        trigger = Event(self.env)
        trigger.callbacks.append(lambda _ev: self._grant())
        trigger.succeed()

    def _grant(self) -> None:
        self._grant_pending = False
        while self._queue and len(self._users) < self._capacity:
            _key, _tie, req = heapq.heappop(self._queue)
            self._users.add(req)
            req.succeed(req)

    def resize(self, capacity: int) -> None:
        """Change capacity; shrinking never revokes current holders."""
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._capacity = int(capacity)
        self._schedule_grant()


class PriorityResource(Resource):
    """A :class:`Resource` whose queue is served by (priority, FIFO).

    Lower ``priority`` values are served first, matching the convention of
    batch schedulers.
    """

    def _order_key(self, request: Request) -> Any:
        self._seq += 1
        return (request.priority, self._seq)


class StoreGet(Event):
    __slots__ = ("store", "filter")

    def __init__(self, store: "Store", filter: Optional[Callable[[Any], bool]] = None):
        super().__init__(store.env)
        self.store = store
        self.filter = filter


class StorePut(Event):
    __slots__ = ("store", "item")

    def __init__(self, store: "Store", item: Any):
        super().__init__(store.env)
        self.store = store
        self.item = item


class Store:
    """A FIFO queue of items with optional capacity.

    ``put(item)`` fires when the item is accepted; ``get()`` fires with the
    next item (optionally the first matching a filter predicate).
    """

    def __init__(self, env: Environment, capacity: float = float("inf")):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.items: list[Any] = []
        self._getters: list[StoreGet] = []
        self._putters: list[StorePut] = []

    def put(self, item: Any) -> StorePut:
        ev = StorePut(self, item)
        self._putters.append(ev)
        self._dispatch()
        return ev

    def get(self, filter: Optional[Callable[[Any], bool]] = None) -> StoreGet:
        ev = StoreGet(self, filter)
        self._getters.append(ev)
        self._dispatch()
        return ev

    def _dispatch(self) -> None:
        progress = True
        while progress:
            progress = False
            # Accept puts while there is room.
            while self._putters and len(self.items) < self.capacity:
                put = self._putters.pop(0)
                self.items.append(put.item)
                put.succeed()
                progress = True
            # Serve getters in FIFO order; a filtered getter may skip ahead
            # only over items, never over other getters' claims.
            for getter in list(self._getters):
                match_idx = None
                for idx, item in enumerate(self.items):
                    if getter.filter is None or getter.filter(item):
                        match_idx = idx
                        break
                if match_idx is not None:
                    item = self.items.pop(match_idx)
                    self._getters.remove(getter)
                    getter.succeed(item)
                    progress = True

    def __len__(self) -> int:
        return len(self.items)


class ContainerEvent(Event):
    __slots__ = ("amount",)

    def __init__(self, env: Environment, amount: float):
        super().__init__(env)
        self.amount = amount


class Container:
    """A continuous level between 0 and ``capacity``.

    ``put(x)`` blocks until the container has room; ``get(x)`` blocks until
    the level covers the request.  Used for storage pools and byte budgets.
    """

    def __init__(self, env: Environment, capacity: float = float("inf"), init: float = 0.0):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0 <= init <= capacity:
            raise ValueError("init must be within [0, capacity]")
        self.env = env
        self.capacity = capacity
        self._level = float(init)
        self._getters: list[ContainerEvent] = []
        self._putters: list[ContainerEvent] = []

    @property
    def level(self) -> float:
        return self._level

    def put(self, amount: float) -> ContainerEvent:
        if amount < 0:
            raise ValueError("amount must be non-negative")
        ev = ContainerEvent(self.env, amount)
        self._putters.append(ev)
        self._dispatch()
        return ev

    def get(self, amount: float) -> ContainerEvent:
        if amount < 0:
            raise ValueError("amount must be non-negative")
        ev = ContainerEvent(self.env, amount)
        self._getters.append(ev)
        self._dispatch()
        return ev

    def _dispatch(self) -> None:
        progress = True
        while progress:
            progress = False
            if self._putters and self._level + self._putters[0].amount <= self.capacity:
                put = self._putters.pop(0)
                self._level += put.amount
                put.succeed()
                progress = True
            if self._getters and self._level >= self._getters[0].amount:
                get = self._getters.pop(0)
                self._level -= get.amount
                get.succeed()
                progress = True
