"""Site catalog: execution sites and their storage endpoints."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["SiteEntry", "SiteCatalog"]


@dataclass
class SiteEntry:
    """One execution or storage site.

    Parameters
    ----------
    name:
        Site handle (e.g. ``"isi"``, ``"futuregrid"``, ``"local"``).
    storage_host:
        Host name (in the network topology) serving this site's storage.
    scratch_dir:
        Directory prefix for staged data on the shared filesystem.
    nodes, cores_per_node:
        Compute capacity (0 nodes for pure storage sites).
    """

    name: str
    storage_host: str
    scratch_dir: str = "/scratch"
    nodes: int = 0
    cores_per_node: int = 1
    attributes: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name or not self.storage_host:
            raise ValueError("site entry requires name and storage_host")
        if self.nodes < 0 or self.cores_per_node < 1:
            raise ValueError(f"site {self.name!r}: bad compute capacity")

    @property
    def slots(self) -> int:
        """Total compute slots (cores)."""
        return self.nodes * self.cores_per_node

    def url_for(self, lfn: str) -> str:
        """Physical URL a file takes when staged to this site's scratch."""
        return f"gsiftp://{self.storage_host}{self.scratch_dir}/{lfn}"


class SiteCatalog:
    """Registry of :class:`SiteEntry` objects."""

    def __init__(self) -> None:
        self._sites: dict[str, SiteEntry] = {}

    def add(self, entry: SiteEntry) -> SiteEntry:
        if entry.name in self._sites:
            raise ValueError(f"duplicate site {entry.name!r}")
        self._sites[entry.name] = entry
        return entry

    def get(self, name: str) -> SiteEntry:
        try:
            return self._sites[name]
        except KeyError:
            raise KeyError(f"unknown site {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._sites

    def __iter__(self):
        return iter(self._sites.values())

    def __len__(self) -> int:
        return len(self._sites)
