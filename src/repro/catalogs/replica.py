"""Replica catalog: logical file name -> physical replicas."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

__all__ = ["Replica", "ReplicaCatalog"]


@dataclass(frozen=True)
class Replica:
    """One physical copy of a logical file."""

    lfn: str
    site: str
    url: str

    def __post_init__(self) -> None:
        if not self.lfn or not self.site or not self.url:
            raise ValueError("replica requires lfn, site and url")


class ReplicaCatalog:
    """Mapping of logical file names to their physical replicas.

    Replicas at the same (site, url) are idempotent to register.  Lookups
    can be filtered by site, which the planner uses to prefer local data.
    """

    def __init__(self) -> None:
        self._by_lfn: dict[str, dict[tuple[str, str], Replica]] = {}

    def register(self, lfn: str, site: str, url: str) -> Replica:
        replica = Replica(lfn, site, url)
        self._by_lfn.setdefault(lfn, {})[(site, url)] = replica
        return replica

    def unregister(self, lfn: str, site: Optional[str] = None) -> int:
        """Remove replicas of ``lfn`` (optionally only at ``site``).

        Returns the number of replicas removed.
        """
        bucket = self._by_lfn.get(lfn)
        if not bucket:
            return 0
        if site is None:
            removed = len(bucket)
            del self._by_lfn[lfn]
            return removed
        victims = [key for key in bucket if key[0] == site]
        for key in victims:
            del bucket[key]
        if not bucket:
            del self._by_lfn[lfn]
        return len(victims)

    def lookup(self, lfn: str, site: Optional[str] = None) -> list[Replica]:
        """All replicas of ``lfn`` (optionally restricted to a site).

        Sorted by (site, url): callers pick sources from this list, so
        its order must not depend on insertion history or hash seeds.
        """
        bucket = self._by_lfn.get(lfn, {})
        replicas = sorted(bucket.values(), key=lambda r: (r.site, r.url))
        if site is not None:
            replicas = [r for r in replicas if r.site == site]
        return replicas

    def has(self, lfn: str, site: Optional[str] = None) -> bool:
        return bool(self.lookup(lfn, site))

    def lfns(self) -> Iterable[str]:
        return self._by_lfn.keys()

    def __len__(self) -> int:
        return sum(len(b) for b in self._by_lfn.values())
