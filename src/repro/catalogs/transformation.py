"""Transformation catalog: executables and runtime models.

Compute-job durations are sampled from per-transformation truncated normal
distributions (matching how published Montage profiles report mean/std-dev
runtimes).  Sampling is deterministic given the caller's RNG stream.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["RuntimeModel", "TransformationCatalog"]


@dataclass(frozen=True)
class RuntimeModel:
    """Runtime distribution of one transformation.

    ``sample`` draws a truncated-at-``min_runtime`` normal variate.
    """

    name: str
    mean: float
    std: float = 0.0
    min_runtime: float = 0.05

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("transformation requires a name")
        if self.mean < 0 or self.std < 0 or self.min_runtime < 0:
            raise ValueError(f"transformation {self.name!r}: negative parameter")

    def sample(self, rng: np.random.Generator) -> float:
        value = rng.normal(self.mean, self.std) if self.std > 0 else self.mean
        return max(self.min_runtime, float(value))


class TransformationCatalog:
    """Registry of :class:`RuntimeModel` keyed by transformation name."""

    def __init__(self) -> None:
        self._transforms: dict[str, RuntimeModel] = {}

    def add(self, name: str, mean: float, std: float = 0.0, min_runtime: float = 0.05) -> RuntimeModel:
        if name in self._transforms:
            raise ValueError(f"duplicate transformation {name!r}")
        model = RuntimeModel(name, mean, std, min_runtime)
        self._transforms[name] = model
        return model

    def get(self, name: str) -> RuntimeModel:
        try:
            return self._transforms[name]
        except KeyError:
            raise KeyError(f"unknown transformation {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._transforms

    def __len__(self) -> int:
        return len(self._transforms)
