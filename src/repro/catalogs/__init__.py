"""Pegasus-style catalogs.

Pegasus plans abstract workflows against three catalogs; we implement the
same trio:

* :class:`ReplicaCatalog` — where logical files physically live (LFN ->
  replica URLs).  The Policy Service also consults it to avoid restaging
  files another workflow already staged.
* :class:`SiteCatalog` — execution sites: compute slots, storage host,
  scratch directory, and which hosts serve data.
* :class:`TransformationCatalog` — executables and their runtime models
  (per-site mean/std-dev runtimes sampled deterministically per job).
"""

from repro.catalogs.replica import Replica, ReplicaCatalog
from repro.catalogs.site import SiteCatalog, SiteEntry
from repro.catalogs.transformation import RuntimeModel, TransformationCatalog

__all__ = [
    "Replica",
    "ReplicaCatalog",
    "RuntimeModel",
    "SiteCatalog",
    "SiteEntry",
    "TransformationCatalog",
]
