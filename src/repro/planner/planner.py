"""The planner: maps abstract workflows to executable workflows.

Mirrors the Pegasus planning phase as the paper exercises it:

* compute jobs are mapped onto the execution site;
* for every compute job with workflow-external inputs, a **stage-in job**
  is created ("one stage-in job per compute job", the paper's
  no-clustering configuration) containing one transfer per external input
  not already staged by an earlier stage-in job of this plan;
* source URLs are resolved through the replica catalog (preferring a
  replica at the execution site, in which case no transfer is needed);
* **stage-out jobs** move workflow outputs to the output site;
* with cleanup enabled, a **cleanup job** per scratch file fires once all
  its on-site consumers have finished (Pegasus' data-footprint reduction);
* optional structure-based priorities are computed on the abstract DAG
  and attached to jobs (staging jobs inherit their compute job's
  priority) for the policy service's priority-ordering rules.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Optional

from repro.catalogs.replica import ReplicaCatalog
from repro.catalogs.site import SiteCatalog
from repro.catalogs.transformation import TransformationCatalog
from repro.datacatalog.linkcost import LinkCostModel
from repro.planner.clustering import cluster_staging_jobs
from repro.planner.storage_aware import constrain_staging_footprint
from repro.planner.executable import (
    ExecutableJob,
    ExecutableWorkflow,
    JobKind,
    PlanningError,
    TransferSpec,
)
from repro.workflow.dag import Workflow
from repro.workflow.priorities import PRIORITY_ALGORITHMS

__all__ = ["Planner", "PlanOptions", "fresh_plan_ids"]

# Plans are numbered by a process-global sequence so concurrent workflows
# sharing one policy service never collide on workflow ids.
_plan_seq = 0


def _next_plan_seq() -> int:
    global _plan_seq
    _plan_seq += 1
    return _plan_seq


@contextmanager
def fresh_plan_ids():
    """Restart workflow-id numbering from 1 inside the block.

    Traced runs must emit the same event stream in every process, but
    workflow ids carry the process-global plan sequence.  A block under
    this manager numbers its plans 1, 2, ... regardless of planning
    history; on exit the outer sequence resumes past both numbering runs,
    so ids stay unique afterwards.  Only use for self-contained runs
    (fresh testbed and policy service) — ids inside the block may repeat
    ids of workflows planned before it.
    """
    global _plan_seq
    outer = _plan_seq
    _plan_seq = 0
    try:
        yield
    finally:
        _plan_seq = max(outer, _plan_seq)


@dataclass
class PlanOptions:
    """Knobs of one planning run (paper defaults).

    ``cluster_factor=None`` disables data-job clustering (the paper's
    evaluation config); an integer N groups the stage-in jobs of each
    workflow level into N clustered jobs.
    """

    cleanup: bool = True
    cluster_factor: Optional[int] = None
    priority_algorithm: Optional[str] = None
    output_site: Optional[str] = None
    max_staging_bytes: Optional[float] = None
    #: optional link-cost model for stage-in source selection; None keeps
    #: the historical deterministic (site, url) choice
    link_costs: Optional["LinkCostModel"] = None

    def __post_init__(self) -> None:
        if self.cluster_factor is not None and self.cluster_factor < 1:
            raise PlanningError("cluster_factor must be >= 1")
        if self.max_staging_bytes is not None:
            if self.max_staging_bytes <= 0:
                raise PlanningError("max_staging_bytes must be positive")
            if not self.cleanup:
                raise PlanningError("max_staging_bytes requires cleanup=True")
            if self.cluster_factor is not None:
                raise PlanningError(
                    "max_staging_bytes is incompatible with cluster_factor"
                )
        if (
            self.priority_algorithm is not None
            and self.priority_algorithm not in PRIORITY_ALGORITHMS
        ):
            raise PlanningError(
                f"unknown priority algorithm {self.priority_algorithm!r}; "
                f"available: {sorted(PRIORITY_ALGORITHMS)}"
            )


class Planner:
    """Plans abstract workflows against the catalog trio."""

    def __init__(
        self,
        sites: SiteCatalog,
        transformations: TransformationCatalog,
        replicas: ReplicaCatalog,
    ):
        self.sites = sites
        self.transformations = transformations
        self.replicas = replicas

    def plan(
        self,
        workflow: Workflow,
        execution_site: str,
        options: Optional[PlanOptions] = None,
    ) -> ExecutableWorkflow:
        """Produce an executable workflow for ``workflow`` on a site."""
        opts = options or PlanOptions()
        workflow.validate()
        site = self.sites.get(execution_site)
        if site.slots < 1:
            raise PlanningError(f"site {execution_site!r} has no compute slots")
        for transform in workflow.transform_counts():
            if transform not in self.transformations:
                raise PlanningError(f"no transformation catalog entry for {transform!r}")

        priorities: dict[str, int] = {}
        if opts.priority_algorithm:
            priorities = PRIORITY_ALGORITHMS[opts.priority_algorithm](workflow)

        wf_id = f"{workflow.name}#{_next_plan_seq()}"
        plan = ExecutableWorkflow(workflow.name, wf_id)
        plan.cluster_factor = opts.cluster_factor

        produced = {f.lfn for jid in workflow.jobs for f in workflow.jobs[jid].outputs}
        staged: dict[str, str] = {}  # lfn -> stage-in job id that fetches it

        # -- compute + stage-in jobs --------------------------------------
        for job_id in workflow.topological_order():
            job = workflow.jobs[job_id]
            # Inputs read from site scratch: everything except files a
            # pre-existing local replica satisfies without any staging.
            input_files = [
                (f.lfn, f.size)
                for f in job.inputs
                if f.lfn in produced
                or not self.replicas.has(f.lfn, site=execution_site)
            ]
            compute = ExecutableJob(
                id=job_id,
                kind=JobKind.COMPUTE,
                transform=job.transform,
                site=execution_site,
                priority=priorities.get(job_id, 0),
                source_jobs=(job_id,),
                output_files=[(f.lfn, f.size) for f in job.outputs],
                input_files=input_files,
            )
            plan.add_job(compute)

            transfers: list[TransferSpec] = []
            stage_deps: list[str] = []
            for f in job.inputs:
                if f.lfn in produced:
                    continue  # produced on-site by a parent job
                if f.lfn in staged:
                    stage_deps.append(staged[f.lfn])
                    continue  # an earlier stage-in of this plan fetches it
                if self.replicas.has(f.lfn, site=execution_site):
                    continue  # already local to the site
                candidates = self.replicas.lookup(f.lfn)
                if not candidates:
                    raise PlanningError(
                        f"no replica for input file {f.lfn!r} of job {job_id!r}"
                    )
                if opts.link_costs is not None:
                    # Cheapest link into the execution site wins, with the
                    # model's deterministic (cost, site, url) tie-break.
                    src = opts.link_costs.best(candidates, execution_site)
                else:
                    src = sorted(candidates, key=lambda r: (r.site, r.url))[0]
                transfers.append(
                    TransferSpec(
                        lfn=f.lfn,
                        src_url=src.url,
                        dst_url=site.url_for(f.lfn),
                        nbytes=f.size,
                    )
                )
            if transfers:
                si = ExecutableJob(
                    id=f"stage_in_{job_id}",
                    kind=JobKind.STAGE_IN,
                    site=execution_site,
                    transfers=transfers,
                    priority=priorities.get(job_id, 0),
                    source_jobs=(job_id,),
                )
                plan.add_job(si)
                plan.add_edge(si.id, job_id)
                for t in transfers:
                    staged[t.lfn] = si.id
            for dep in set(stage_deps):
                plan.add_edge(dep, job_id)
            for parent in workflow.parents(job_id):
                plan.add_edge(parent, job_id)

        # -- stage-out jobs -------------------------------------------------
        output_site_name = opts.output_site or execution_site
        output_site = self.sites.get(output_site_name)
        for f in workflow.output_files():
            producer = workflow.producer_of(f.lfn)
            if output_site_name == execution_site:
                continue  # outputs already live on the execution site
            so = ExecutableJob(
                id=f"stage_out_{f.lfn}",
                kind=JobKind.STAGE_OUT,
                site=execution_site,
                transfers=[
                    TransferSpec(
                        lfn=f.lfn,
                        src_url=site.url_for(f.lfn),
                        dst_url=output_site.url_for(f.lfn),
                        nbytes=f.size,
                    )
                ],
                priority=priorities.get(producer, 0) if producer else 0,
                source_jobs=(producer,) if producer else (),
            )
            plan.add_job(so)
            if producer:
                plan.add_edge(producer, so.id)

        # -- cleanup jobs ----------------------------------------------------
        if opts.cleanup:
            self._add_cleanup_jobs(workflow, plan, site, staged)

        if opts.cluster_factor is not None:
            plan = cluster_staging_jobs(plan, opts.cluster_factor)
        if opts.max_staging_bytes is not None:
            constrain_staging_footprint(plan, opts.max_staging_bytes)

        plan.validate()
        return plan

    def _add_cleanup_jobs(self, workflow, plan, site, staged) -> None:
        """One cleanup job per scratch file, gated on all its users."""
        outputs = {f.lfn for f in workflow.output_files()}
        for lfn, f in sorted(workflow._files.items()):
            waiters: list[str] = []
            consumers = workflow.consumers_of(lfn)
            waiters.extend(consumers)
            producer = workflow.producer_of(lfn)
            if producer and not consumers:
                waiters.append(producer)
            if lfn in outputs and f"stage_out_{lfn}" in plan.jobs:
                waiters.append(f"stage_out_{lfn}")
            if not waiters:
                continue
            cleanup = ExecutableJob(
                id=f"cleanup_{lfn}",
                kind=JobKind.CLEANUP,
                site=site.name,
                cleanup_files=[(lfn, site.url_for(lfn))],
            )
            plan.add_job(cleanup)
            for w in waiters:
                plan.add_edge(w, cleanup.id)
