"""Storage-constrained staging (the ref [15] problem, simplified).

The paper's group previously studied "scheduling data-intensive workflows
onto storage-constrained distributed resources" (Ramakrishnan et al.,
CCGrid'07): when the execution site's scratch cannot hold the whole input
set at once, staging must be serialized against cleanup so the plan stays
*feasible*.

:func:`constrain_staging_footprint` post-processes an executable plan
(cleanup must be enabled) so that the bytes of staged **external inputs**
resident on scratch never exceed a budget:

1. Each stage-in job is a *unit* (it already bundles all external inputs
   of one compute job, so a unit never straddles batches — this is what
   makes the added edges provably acyclic).
2. Files consumed by more than one compute job (e.g. a shared calibration
   header) are **long-lived**: they stay resident for most of the run, so
   their bytes are reserved off the budget and their cleanups are never
   used as gates.
3. Units are greedily packed, in topological order, into batches whose
   exclusive (non-shared) bytes fit the remaining budget.
4. Every unit of batch *k+1* is gated on the cleanup jobs of batch *k*'s
   exclusive files: batch *k*'s staged data is deleted before batch *k+1*
   starts staging, so at most one batch (plus the shared reserve) is ever
   resident.

The budget covers staged external inputs; intermediate files are governed
by the ordinary cleanup jobs the planner already emits.

Trade-off: feasibility costs staging parallelism — with a tight budget the
batches serialize and the makespan grows (benchmark A14 quantifies it).
"""

from __future__ import annotations

from repro.planner.executable import ExecutableWorkflow, JobKind, PlanningError

__all__ = ["constrain_staging_footprint"]


def constrain_staging_footprint(
    plan: ExecutableWorkflow, capacity: float
) -> ExecutableWorkflow:
    """Add gating edges so staged-input bytes on scratch never exceed
    ``capacity``.  Mutates and returns ``plan``.

    Raises :class:`PlanningError` when the plan has no cleanup jobs to
    gate on, or when any single stage-in unit (plus the shared-file
    reserve) cannot fit the budget.
    """
    if capacity <= 0:
        raise PlanningError("capacity must be positive")
    plan.validate()
    stage_ins = plan.by_kind(JobKind.STAGE_IN)
    if not stage_ins:
        return plan
    cleanup_by_lfn = {
        lfn: job.id
        for job in plan.by_kind(JobKind.CLEANUP)
        for lfn, _url in job.cleanup_files
    }

    # Classify staged files: shared (multiple consumer compute jobs) files
    # are long-lived residents; exclusive files die with their unit's batch.
    consumer_count: dict[str, int] = {}
    for si in stage_ins:
        for child in plan.children(si.id):
            for t in si.transfers:
                consumer_count[t.lfn] = consumer_count.get(t.lfn, 0)
    # Count actual consumers from the cleanup job's parents (the planner
    # gates each file's cleanup on every consumer).
    for si in stage_ins:
        for t in si.transfers:
            cleanup_id = cleanup_by_lfn.get(t.lfn)
            if cleanup_id is None:
                raise PlanningError(
                    f"storage-constrained staging requires cleanup jobs; "
                    f"no cleanup for staged file {t.lfn!r}"
                )
            consumer_count[t.lfn] = len(plan.parents(cleanup_id))

    shared_reserve = 0.0
    unit_bytes: dict[str, float] = {}
    seen_shared: set[str] = set()
    for si in stage_ins:
        exclusive = 0.0
        for t in si.transfers:
            if consumer_count[t.lfn] > 1:
                if t.lfn not in seen_shared:
                    shared_reserve += t.nbytes
                    seen_shared.add(t.lfn)
            else:
                exclusive += t.nbytes
        unit_bytes[si.id] = exclusive

    budget = capacity - shared_reserve
    worst = max(unit_bytes.values(), default=0.0)
    if budget <= 0 or worst > budget:
        raise PlanningError(
            f"infeasible staging budget: capacity {capacity:.3g} B, "
            f"shared-file reserve {shared_reserve:.3g} B, largest staging "
            f"unit {worst:.3g} B"
        )

    # Greedy batching in topological order.
    order = {jid: i for i, jid in enumerate(plan.topological_order())}
    units = sorted(stage_ins, key=lambda j: order[j.id])
    batches: list[list] = [[]]
    batch_load = 0.0
    for unit in units:
        need = unit_bytes[unit.id]
        if batches[-1] and batch_load + need > budget:
            batches.append([])
            batch_load = 0.0
        batches[-1].append(unit)
        batch_load += need

    # Gate batch k+1's units on batch k's exclusive-file cleanups.
    for prev, nxt in zip(batches, batches[1:]):
        gates = [
            cleanup_by_lfn[t.lfn]
            for unit in prev
            for t in unit.transfers
            if consumer_count[t.lfn] == 1
        ]
        for unit in nxt:
            for gate in gates:
                plan.add_edge(gate, unit.id)

    plan.validate()
    return plan
