"""Executable-workflow data model (the planner's output)."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

import networkx as nx

__all__ = [
    "JobKind",
    "TransferSpec",
    "ExecutableJob",
    "ExecutableWorkflow",
    "PlanningError",
]


class PlanningError(ValueError):
    """Raised when an abstract workflow cannot be planned."""


class JobKind(str, Enum):
    """Category of an executable job (used for engine throttles)."""

    COMPUTE = "compute"
    STAGE_IN = "stage-in"
    STAGE_OUT = "stage-out"
    CLEANUP = "cleanup"


@dataclass
class TransferSpec:
    """One file movement inside a staging job."""

    lfn: str
    src_url: str
    dst_url: str
    nbytes: float

    def __post_init__(self) -> None:
        if not self.lfn or not self.src_url or not self.dst_url:
            raise PlanningError("transfer spec requires lfn and both urls")
        if self.nbytes < 0:
            raise PlanningError(f"transfer {self.lfn!r}: negative size")


@dataclass
class ExecutableJob:
    """A planned job.

    ``transform`` is set for compute jobs (runtime model lookup);
    ``transfers`` for staging jobs; ``cleanup_files`` (lfn, url) pairs for
    cleanup jobs.  ``priority`` is filled when the plan options request a
    structure-based priority algorithm; staging jobs inherit the priority
    of the compute job they feed.

    ``input_files`` lists the (lfn, size) pairs a compute job reads from
    the execution site's scratch space — its workflow inputs minus those
    satisfied by a pre-existing local replica.  The planner fills it so
    plan-level data-flow analysis (:mod:`repro.analysis.planlint`) can
    match consumers to producers/stage-ins exactly.
    """

    id: str
    kind: JobKind
    transform: Optional[str] = None
    site: str = ""
    transfers: list[TransferSpec] = field(default_factory=list)
    cleanup_files: list[tuple[str, str]] = field(default_factory=list)
    output_files: list[tuple[str, float]] = field(default_factory=list)
    input_files: list[tuple[str, float]] = field(default_factory=list)
    priority: int = 0
    source_jobs: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.id:
            raise PlanningError("executable job requires an id")
        if self.kind == JobKind.COMPUTE and not self.transform:
            raise PlanningError(f"compute job {self.id!r} requires a transform")

    @property
    def total_bytes(self) -> float:
        return sum(t.nbytes for t in self.transfers)


class ExecutableWorkflow:
    """A DAG of :class:`ExecutableJob` with explicit edges."""

    def __init__(self, name: str, workflow_id: str):
        if not name or not workflow_id:
            raise PlanningError("executable workflow requires name and id")
        self.name = name
        self.workflow_id = workflow_id
        self.jobs: dict[str, ExecutableJob] = {}
        self._edges: set[tuple[str, str]] = set()
        self._graph_cache: Optional[nx.DiGraph] = None
        #: clustering factor used during planning (None = no clustering)
        self.cluster_factor: Optional[int] = None

    def add_job(self, job: ExecutableJob) -> ExecutableJob:
        if job.id in self.jobs:
            raise PlanningError(f"duplicate executable job {job.id!r}")
        self.jobs[job.id] = job
        self._graph_cache = None
        return job

    def add_edge(self, parent_id: str, child_id: str) -> None:
        if parent_id not in self.jobs or child_id not in self.jobs:
            raise PlanningError(f"edge references unknown job: {parent_id} -> {child_id}")
        if parent_id == child_id:
            raise PlanningError("self edge")
        self._edges.add((parent_id, child_id))
        self._graph_cache = None

    def remove_job(self, job_id: str) -> None:
        """Remove a job, splicing its parents to its children."""
        if job_id not in self.jobs:
            raise PlanningError(f"unknown job {job_id!r}")
        parents = [p for p, c in self._edges if c == job_id]
        children = [c for p, c in self._edges if p == job_id]
        self._edges = {(p, c) for p, c in self._edges if job_id not in (p, c)}
        for p in parents:
            for c in children:
                if p != c:
                    self._edges.add((p, c))
        del self.jobs[job_id]
        self._graph_cache = None

    # -- structure ------------------------------------------------------------
    def graph(self) -> nx.DiGraph:
        if self._graph_cache is None:
            g = nx.DiGraph()
            g.add_nodes_from(self.jobs)
            # Sorted so adjacency order (and thus successor iteration in
            # DAGMan) is independent of set-iteration / hash randomization:
            # a given seed must replay identically across processes.
            g.add_edges_from(sorted(self._edges))
            self._graph_cache = g
        return self._graph_cache

    def validate(self) -> None:
        if not nx.is_directed_acyclic_graph(self.graph()):
            raise PlanningError("executable workflow has a cycle")

    def parents(self, job_id: str) -> list[str]:
        return sorted(self.graph().predecessors(job_id))

    def children(self, job_id: str) -> list[str]:
        return sorted(self.graph().successors(job_id))

    def edges(self) -> set[tuple[str, str]]:
        return set(self._edges)

    def topological_order(self) -> list[str]:
        self.validate()
        return list(nx.lexicographical_topological_sort(self.graph()))

    def by_kind(self, kind: JobKind) -> list[ExecutableJob]:
        return [j for jid, j in sorted(self.jobs.items()) if j.kind == kind]

    def kind_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for job in self.jobs.values():
            counts[job.kind.value] = counts.get(job.kind.value, 0) + 1
        return counts

    def levels(self) -> dict[str, int]:
        self.validate()
        g = self.graph()
        level: dict[str, int] = {}
        for node in nx.topological_sort(g):
            preds = list(g.predecessors(node))
            level[node] = 1 + max((level[p] for p in preds), default=-1)
        return level

    def __len__(self) -> int:
        return len(self.jobs)

    def __repr__(self) -> str:  # pragma: no cover
        return f"ExecutableWorkflow({self.name!r}, {self.kind_counts()})"
