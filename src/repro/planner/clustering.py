"""Horizontal clustering of data staging jobs (paper Fig. 2).

Pegasus' task clustering groups jobs of the same horizontal workflow level
into a fixed number of clustered jobs (the *clustering factor*).  For data
staging this merges transfer lists: a clustered staging job performs its
transfers serially in one transfer-client session, eliminating the
per-transfer initialization overhead between jobs.

The clustering factor is the number of clusters per level, i.e. the
maximum number of staging jobs (hence concurrent transfer operations) at
one level — the quantity the balanced allocation policy keys on.
"""

from __future__ import annotations

from repro.planner.executable import (
    ExecutableJob,
    ExecutableWorkflow,
    JobKind,
    PlanningError,
)

__all__ = ["cluster_staging_jobs"]


def cluster_staging_jobs(plan: ExecutableWorkflow, factor: int) -> ExecutableWorkflow:
    """Return a new plan with stage-in jobs of each level merged into at
    most ``factor`` clustered jobs.

    Transfers are concatenated in job-id order; edges are the union of the
    members' edges.  Other job kinds are untouched.
    """
    if factor < 1:
        raise PlanningError("clustering factor must be >= 1")
    plan.validate()
    levels = plan.levels()

    # Group stage-in jobs by level.
    by_level: dict[int, list[str]] = {}
    for job_id, job in sorted(plan.jobs.items()):
        if job.kind == JobKind.STAGE_IN:
            by_level.setdefault(levels[job_id], []).append(job_id)

    member_to_cluster: dict[str, str] = {}
    clusters: dict[str, list[str]] = {}
    for level, members in sorted(by_level.items()):
        n_clusters = min(factor, len(members))
        for idx, job_id in enumerate(members):
            cluster_id = f"clustered_stage_in_l{level}_c{idx % n_clusters}"
            member_to_cluster[job_id] = cluster_id
            clusters.setdefault(cluster_id, []).append(job_id)

    out = ExecutableWorkflow(plan.name, plan.workflow_id)
    out.cluster_factor = factor

    # Non-staging jobs copy over unchanged.
    for job_id, job in plan.jobs.items():
        if job_id not in member_to_cluster:
            out.add_job(job)

    # Clustered staging jobs merge members' transfers/priorities.
    for cluster_id, members in sorted(clusters.items()):
        jobs = [plan.jobs[m] for m in sorted(members)]
        merged = ExecutableJob(
            id=cluster_id,
            kind=JobKind.STAGE_IN,
            site=jobs[0].site,
            transfers=[t for j in jobs for t in j.transfers],
            priority=max(j.priority for j in jobs),
            source_jobs=tuple(s for j in jobs for s in j.source_jobs),
        )
        out.add_job(merged)

    def rename(job_id: str) -> str:
        return member_to_cluster.get(job_id, job_id)

    for parent, child in plan.edges():
        new_parent, new_child = rename(parent), rename(child)
        if new_parent != new_child:
            out.add_edge(new_parent, new_child)

    out.validate()
    return out
