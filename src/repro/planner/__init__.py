"""Pegasus-like planner: abstract workflow -> executable workflow.

The planner maps compute jobs onto an execution site and inserts the
auxiliary jobs Pegasus adds during its planning phase:

* **stage-in** jobs that move external input files to the site's scratch
  (one stage-in job per compute job with remote inputs, matching the
  paper's "no clustering" configuration);
* **stage-out** jobs that move workflow outputs to an output site;
* **cleanup** jobs that delete files no longer needed by the remaining
  execution (enabled in the paper's runs);
* optional **horizontal clustering** of data staging jobs by level with a
  clustering factor (paper Fig. 2).

The executable workflow is a plain DAG of :class:`ExecutableJob` with
explicit edges and per-job categories used by the DAGMan-like engine for
throttling (the paper's "local job limit of 20" applies to data staging).
"""

from repro.planner.clustering import cluster_staging_jobs
from repro.planner.executable import (
    ExecutableJob,
    ExecutableWorkflow,
    JobKind,
    PlanningError,
    TransferSpec,
)
from repro.planner.planner import Planner, PlanOptions
from repro.planner.storage_aware import constrain_staging_footprint

__all__ = [
    "ExecutableJob",
    "ExecutableWorkflow",
    "JobKind",
    "PlanOptions",
    "Planner",
    "PlanningError",
    "TransferSpec",
    "cluster_staging_jobs",
    "constrain_staging_footprint",
]
