"""Plain-text reporting: tables and ASCII plots for experiment series.

The benchmark harness prints the same rows/series the paper's figures
show; these helpers render them readably in a terminal (no plotting
dependencies are available offline).
"""

from __future__ import annotations

from typing import Sequence

from repro.metrics.collectors import Series

__all__ = ["format_series_table", "ascii_series_plot"]


def format_series_table(title: str, x_label: str, series_list: Sequence[Series]) -> str:
    """A table with one row per x and mean±std columns per series."""
    if not series_list:
        raise ValueError("need at least one series")
    xs = series_list[0].xs
    for s in series_list:
        if s.xs != xs:
            raise ValueError(f"series {s.label!r} has mismatched x values")
    header = [x_label] + [s.label for s in series_list]
    widths = [max(len(h), 12) for h in header]
    lines = [title, ""]
    lines.append(" | ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for i, x in enumerate(xs):
        cells = [str(x).ljust(widths[0])]
        for s, w in zip(series_list, widths[1:]):
            mean, std = s.at(x)
            cells.append(f"{mean:10.1f} ±{std:6.1f}".ljust(w))
        lines.append(" | ".join(cells))
    return "\n".join(lines)


def ascii_series_plot(
    title: str, series_list: Sequence[Series], width: int = 60, height: int = 16
) -> str:
    """Rough terminal scatter/line plot of series means vs x index."""
    if not series_list:
        raise ValueError("need at least one series")
    marks = "ox+*#@%&"
    all_means = [m for s in series_list for m in s.means()]
    lo, hi = min(all_means), max(all_means)
    if hi == lo:
        hi = lo + 1.0
    grid = [[" "] * width for _ in range(height)]
    n = max(len(s.xs) for s in series_list)
    for si, s in enumerate(series_list):
        for xi, mean in enumerate(s.means()):
            col = int(xi / max(n - 1, 1) * (width - 1))
            row = height - 1 - int((mean - lo) / (hi - lo) * (height - 1))
            grid[row][col] = marks[si % len(marks)]
    lines = [title]
    lines.append(f"{hi:10.1f} +" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 10 + " |" + "".join(row))
    lines.append(f"{lo:10.1f} +" + "".join(grid[-1]))
    legend = "   ".join(
        f"{marks[i % len(marks)]} = {s.label}" for i, s in enumerate(series_list)
    )
    lines.append(" " * 12 + legend)
    return "\n".join(lines)
