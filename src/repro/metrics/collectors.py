"""Metric containers for experiment runs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

__all__ = ["RunMetrics", "Series", "mean_std", "summarize_records"]


@dataclass
class RunMetrics:
    """Everything measured about one workflow run."""

    workflow_id: str
    success: bool
    makespan: float
    staging_time: float = 0.0
    compute_time: float = 0.0
    bytes_staged: float = 0.0
    transfers_executed: int = 0
    transfers_skipped: int = 0
    transfers_waited: int = 0
    peak_streams: dict = field(default_factory=dict)
    stream_grants: list = field(default_factory=list)  # per-transfer, start order
    policy_calls: int = 0
    policy_overhead: float = 0.0
    policy_stats: dict = field(default_factory=dict)
    job_durations: dict = field(default_factory=dict)
    peak_footprint: float = 0.0
    final_footprint: float = 0.0
    over_capacity_time: float = 0.0


@dataclass
class Series:
    """One experiment series: y(x) with replicate statistics.

    ``ys[i]`` holds the replicate measurements at ``xs[i]``.
    """

    label: str
    xs: list = field(default_factory=list)
    ys: list = field(default_factory=list)

    def add(self, x, replicate_values: Sequence[float]) -> None:
        values = [float(v) for v in replicate_values]
        if not values:
            raise ValueError(f"series {self.label!r}: empty replicate set at x={x}")
        self.xs.append(x)
        self.ys.append(values)

    def means(self) -> list[float]:
        return [float(np.mean(v)) for v in self.ys]

    def stds(self) -> list[float]:
        return [float(np.std(v)) for v in self.ys]

    def at(self, x) -> tuple[float, float]:
        """(mean, std) at a given x."""
        idx = self.xs.index(x)
        return float(np.mean(self.ys[idx])), float(np.std(self.ys[idx]))

    def to_dict(self) -> dict:
        return {"label": self.label, "xs": list(self.xs), "ys": [list(v) for v in self.ys]}


def mean_std(values: Iterable[float]) -> tuple[float, float]:
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("mean_std of empty sequence")
    return float(arr.mean()), float(arr.std())


def summarize_records(durations: Iterable[float]) -> dict:
    """Summary statistics of a duration population."""
    arr = np.asarray(list(durations), dtype=float)
    if arr.size == 0:
        return {"count": 0}
    return {
        "count": int(arr.size),
        "mean": float(arr.mean()),
        "std": float(arr.std()),
        "min": float(arr.min()),
        "max": float(arr.max()),
        "p50": float(np.percentile(arr, 50)),
        "p95": float(np.percentile(arr, 95)),
    }
