"""Run metrics: aggregation and reporting helpers."""

from repro.metrics.collectors import RunMetrics, Series, mean_std, summarize_records
from repro.metrics.provenance import ascii_timeline, run_provenance
from repro.metrics.report import ascii_series_plot, format_series_table

__all__ = [
    "RunMetrics",
    "Series",
    "ascii_series_plot",
    "ascii_timeline",
    "run_provenance",
    "format_series_table",
    "mean_std",
    "summarize_records",
]
