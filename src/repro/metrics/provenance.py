"""Run reports: structured provenance export and terminal timelines.

Production workflow managers leave an execution record behind; these
helpers turn a :class:`~repro.metrics.collectors.RunMetrics` plus the
executor's :class:`~repro.engine.dagman.DAGManResult` into:

* a JSON-able provenance document (config, per-job timings, transfer
  stats, policy counters) for archival/comparison;
* an ASCII Gantt-style timeline of the run, grouped by job kind — handy
  for eyeballing where the staging phase sits relative to computation.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.engine.dagman import DAGManResult
from repro.metrics.collectors import RunMetrics, summarize_records
from repro.planner.executable import JobKind

__all__ = ["run_provenance", "ascii_timeline"]


def run_provenance(
    metrics: RunMetrics,
    result: Optional[DAGManResult] = None,
    config: Any = None,
    tracer: Any = None,
    frontend: Optional[str] = None,
) -> dict:
    """Build a JSON-able provenance record of one run.

    With ``tracer`` (a :class:`repro.obs.Tracer` that observed the run),
    the document gains a ``trace`` key summarizing the event stream —
    enough to tell whether/where the full trace artifacts exist without
    embedding them.  ``engine`` and ``shard_count`` are read off the
    experiment config; ``frontend`` names how the Policy Service was
    reached (``"in-process"``, ``"rest"``, ``"rest-async"``) when the
    caller knows it.
    """
    doc: dict = {
        "workflow_id": metrics.workflow_id,
        "success": metrics.success,
        "makespan_s": metrics.makespan,
        "engine": getattr(config, "engine", None),
        "shard_count": getattr(config, "shards", None),
        "frontend": frontend,
        "staging": {
            "time_s": metrics.staging_time,
            "bytes": metrics.bytes_staged,
            "transfers_executed": metrics.transfers_executed,
            "transfers_skipped": metrics.transfers_skipped,
            "transfers_waited": metrics.transfers_waited,
            "stream_grants": list(metrics.stream_grants),
            "peak_streams": dict(metrics.peak_streams),
        },
        "storage": {
            "peak_footprint_bytes": metrics.peak_footprint,
            "final_footprint_bytes": metrics.final_footprint,
            "over_capacity_s": metrics.over_capacity_time,
        },
        "policy": {
            "calls": metrics.policy_calls,
            "overhead_s": metrics.policy_overhead,
            "stats": dict(metrics.policy_stats),
        },
        "job_durations": {
            kind: summarize_records(durations)
            for kind, durations in metrics.job_durations.items()
        },
    }
    if config is not None:
        fields = getattr(config, "__dataclass_fields__", {})
        doc["config"] = {
            name: repr(getattr(config, name))
            for name in fields
            if name != "testbed"
        }
    if result is not None:
        doc["jobs"] = [
            {
                "id": record.job_id,
                "kind": record.kind,
                "t_ready": record.t_ready,
                "t_start": record.t_start,
                "t_end": record.t_end,
                "attempts": record.attempts,
                "state": record.state,
            }
            for record in sorted(result.records.values(), key=lambda r: r.t_start)
        ]
    if tracer is not None:
        doc["trace"] = tracer.summary()
    return doc


def ascii_timeline(result: DAGManResult, width: int = 72) -> str:
    """Gantt-style view: one bar per job kind, plus a few sample jobs.

    Each kind's bar shows when *any* job of that kind was running.
    """
    records = [r for r in result.records.values() if r.state == "done"]
    if not records:
        return "(no completed jobs)"
    t_end = max(r.t_end for r in records)
    if t_end <= 0:
        return "(zero-length run)"
    scale = (width - 1) / t_end

    def bar_for(intervals: list[tuple[float, float]]) -> str:
        cells = [" "] * width
        for start, end in intervals:
            lo = int(start * scale)
            hi = max(lo, int(end * scale))
            for i in range(lo, min(hi + 1, width)):
                cells[i] = "#"
        return "".join(cells)

    lines = [f"timeline of {result.workflow_id} (0 .. {t_end:.0f} s)"]
    for kind in JobKind:
        intervals = [
            (r.t_start, r.t_end) for r in records if r.kind == kind.value
        ]
        if not intervals:
            continue
        lines.append(f"{kind.value:>10s} |{bar_for(intervals)}|")
    return "\n".join(lines)
